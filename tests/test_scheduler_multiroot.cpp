// Concurrent top-level fork/join roots (DESIGN.md S10). PR 5's scheduler
// admitted one top-level parallel region at a time (a mutex-guarded
// become-worker-0 protocol); the root-slot scheduler lets N external
// threads each run nested parallel_for simultaneously over the shared
// pool. These tests drive exactly that from plain std::threads: result
// correctness per root, overlap-in-time evidence, uneven grains, nested
// forking from several roots at once, and a root-churn stress. All of it
// must be TSan-clean (the tsan CI job re-runs this binary) and must hold
// on a 1-worker pool too, where every root runs inline on its own thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"

using namespace parmatch;

namespace {

// N external threads, each a top-level root covering its own array with a
// different range length (uneven grain trees). Every index must be hit
// exactly once by its own root -- cross-root work stealing may execute a
// chunk on any thread, but never against the wrong array.
TEST(SchedulerMultiRoot, ConcurrentRootsCoverTheirOwnRanges) {
  constexpr int kRoots = 4;
  constexpr std::size_t kBase = 100'000;
  std::vector<std::vector<std::uint8_t>> hit(kRoots);
  std::vector<std::thread> roots;
  for (int r = 0; r < kRoots; ++r) {
    std::size_t n = kBase + static_cast<std::size_t>(r) * 33'331;
    hit[r].assign(n, 0);
    roots.emplace_back([&, r, n] {
      parallel::parallel_for(0, n, [&, r](std::size_t i) { ++hit[r][i]; });
    });
  }
  for (auto& t : roots) t.join();
  for (int r = 0; r < kRoots; ++r)
    for (std::size_t i = 0; i < hit[r].size(); ++i)
      ASSERT_EQ(hit[r][i], 1) << "root " << r << " index " << i;
  EXPECT_EQ(parallel::Scheduler::instance().active_roots(), 0);
}

// Two roots provably INSIDE their parallel regions at the same time: each
// root's loop body sets its own flag and then waits (bounded) to observe
// the other root's flag. Under the old top_mutex_ protocol root B could
// not enter its region until root A finished, so this rendezvous would
// time out. Works on a 1-worker pool too: each root runs inline on its
// own external thread, so the two bodies still overlap in time.
TEST(SchedulerMultiRoot, TwoRootsOverlapInTime) {
  std::atomic<bool> a_inside{false}, b_inside{false};
  std::atomic<int> overlaps{0};
  auto wait_for = [](std::atomic<bool>& flag) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!flag.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  std::thread a([&] {
    parallel::parallel_for(0, 1, [&](std::size_t) {
      a_inside.store(true, std::memory_order_release);
      if (wait_for(b_inside)) overlaps.fetch_add(1);
    });
  });
  std::thread b([&] {
    parallel::parallel_for(0, 1, [&](std::size_t) {
      b_inside.store(true, std::memory_order_release);
      if (wait_for(a_inside)) overlaps.fetch_add(1);
    });
  });
  a.join();
  b.join();
  EXPECT_EQ(overlaps.load(), 2) << "roots serialized: no overlap observed";
}

// Several roots forking three levels deep with grain 1 -- the heaviest
// deque traffic per root -- while sharing the pool. Checks both coverage
// and per-root sums (no cross-root bleed into the wrong accumulator).
TEST(SchedulerMultiRoot, NestedThreeLevelsFromConcurrentRoots) {
  constexpr int kRoots = 3;
  constexpr std::size_t kA = 8, kB = 8, kC = 8;
  std::vector<std::atomic<std::uint64_t>> sum(kRoots);
  for (auto& s : sum) s.store(0);
  std::vector<std::thread> roots;
  for (int r = 0; r < kRoots; ++r) {
    roots.emplace_back([&, r] {
      parallel::parallel_for(
          0, kA,
          [&, r](std::size_t i) {
            parallel::parallel_for(
                0, kB,
                [&, r, i](std::size_t j) {
                  parallel::parallel_for(
                      0, kC,
                      [&, r, i, j](std::size_t k) {
                        sum[r].fetch_add(i * kB * kC + j * kC + k + 1,
                                         std::memory_order_relaxed);
                      },
                      1);
                },
                1);
          },
          1);
    });
  }
  for (auto& t : roots) t.join();
  constexpr std::uint64_t kN = kA * kB * kC;
  for (int r = 0; r < kRoots; ++r)
    EXPECT_EQ(sum[r].load(), kN * (kN + 1) / 2) << "root " << r;
}

// Uneven grains across concurrent roots: one root floods the deques with
// grain-1 chunks while another uses coarse chunks and a third runs a size
// below every break-even (inline fast path). All must complete correctly.
TEST(SchedulerMultiRoot, MixedGrainsAndInlineFastPathCoexist) {
  std::vector<std::uint8_t> fine(20'000, 0), coarse(200'000, 0);
  std::vector<std::uint32_t> tiny(64, 0);
  std::thread t1([&] {
    parallel::parallel_for(0, fine.size(),
                           [&](std::size_t i) { ++fine[i]; }, 1);
  });
  std::thread t2([&] {
    parallel::parallel_for(0, coarse.size(),
                           [&](std::size_t i) { ++coarse[i]; }, 4096);
  });
  std::thread t3([&] {
    for (int rep = 0; rep < 1000; ++rep)
      parallel::parallel_for(0, tiny.size(), [&](std::size_t i) {
        ++tiny[i];
      });
  });
  t1.join();
  t2.join();
  t3.join();
  for (auto v : fine) ASSERT_EQ(v, 1);
  for (auto v : coarse) ASSERT_EQ(v, 1);
  for (auto v : tiny) ASSERT_EQ(v, 1000u);
}

// Root churn: more threads than kMaxRoots slots, each claiming and
// releasing a root in a tight loop. Slots must recycle cleanly (no claim
// ever lost, no double grant) and active_roots() must return to zero.
TEST(SchedulerMultiRoot, RootChurnStressRecyclesSlots) {
  const int kThreads = parallel::Scheduler::kMaxRoots + 4;
  constexpr int kReps = 200;
  constexpr std::size_t kN = 2'000;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        std::atomic<std::uint64_t> local{0};
        parallel::parallel_for(
            0, kN,
            [&](std::size_t i) {
              local.fetch_add(i + 1, std::memory_order_relaxed);
            },
            64);
        ASSERT_EQ(local.load(), kN * (kN + 1) / 2);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(total.load(),
            static_cast<std::uint64_t>(kThreads) * kReps);
  EXPECT_EQ(parallel::Scheduler::instance().active_roots(), 0);
}

// A root that is itself a pool worker context must NOT claim a slot: a
// nested parallel_for inside a running region forks in place. Meanwhile
// an external root runs concurrently. active_roots() stays <= 2 the whole
// time (one per external thread, never one per nested level).
TEST(SchedulerMultiRoot, NestedRegionsDoNotClaimExtraRoots) {
  std::atomic<int> max_roots{0};
  auto observe = [&] {
    int r = parallel::Scheduler::instance().active_roots();
    int m = max_roots.load(std::memory_order_relaxed);
    while (r > m &&
           !max_roots.compare_exchange_weak(m, r,
                                            std::memory_order_relaxed)) {
    }
  };
  std::thread a([&] {
    parallel::parallel_for(0, 64, [&](std::size_t) {
      observe();
      parallel::parallel_for(0, 64, [&](std::size_t) { observe(); }, 1);
    }, 1);
  });
  std::thread b([&] {
    parallel::parallel_for(0, 64, [&](std::size_t) {
      observe();
      parallel::parallel_for(0, 64, [&](std::size_t) { observe(); }, 1);
    }, 1);
  });
  a.join();
  b.join();
  EXPECT_LE(max_roots.load(), 2);
  EXPECT_EQ(parallel::Scheduler::instance().active_roots(), 0);
}

}  // namespace
