// Workload-script tests (DESIGN.md Section 4): scripts must be well-formed
// (inserts before deletes, no double-insert/double-delete of a live index)
// and deterministic in the seed -- the baselines comparison depends on
// replaying identical scripts.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/naive_dynamic.h"
#include "baseline/recompute.h"
#include "baseline/targeted.h"
#include "gen/generators.h"
#include "gen/workloads.h"

using namespace parmatch;

namespace {

void check_well_formed(const gen::Workload& w) {
  std::vector<std::uint8_t> live(w.master.size(), 0);
  for (const auto& step : w.steps) {
    for (std::size_t i : step.edges) {
      ASSERT_LT(i, w.master.size());
      if (step.is_insert) {
        ASSERT_FALSE(live[i]) << "index " << i << " inserted while live";
        live[i] = 1;
      } else {
        ASSERT_TRUE(live[i]) << "index " << i << " deleted while dead";
        live[i] = 0;
      }
    }
  }
}

TEST(Workloads, ChurnIsWellFormedAndSized) {
  auto w = gen::churn(gen::erdos_renyi(200, 1'000, 3), 64, 0.5, 7);
  check_well_formed(w);
  EXPECT_GE(w.total_updates(), 3u * 1'000);
  // Deterministic in the seed.
  auto w2 = gen::churn(gen::erdos_renyi(200, 1'000, 3), 64, 0.5, 7);
  ASSERT_EQ(w.steps.size(), w2.steps.size());
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    EXPECT_EQ(w.steps[i].is_insert, w2.steps[i].is_insert);
    EXPECT_EQ(w.steps[i].edges, w2.steps[i].edges);
  }
}

TEST(Workloads, ChurnRespectsInsertBias) {
  auto heavy = gen::churn(gen::erdos_renyi(200, 2'000, 5), 64, 0.3, 9);
  check_well_formed(heavy);
  std::size_t ins = 0, del = 0;
  for (const auto& s : heavy.steps)
    (s.is_insert ? ins : del) += s.edges.size();
  EXPECT_GT(del, ins / 2);  // deletion-heavy mix actually deletes a lot
}

TEST(Workloads, ChurnTerminatesWhenBatchExceedsMaster) {
  // Regression: batch > m used to force empty insert steps forever.
  auto w = gen::churn(gen::erdos_renyi(50, 100, 3), 128, 0.5, 7);
  check_well_formed(w);
  EXPECT_GE(w.total_updates(), 3u * 100);
  for (const auto& s : w.steps) EXPECT_FALSE(s.edges.empty());
}

TEST(Workloads, SlidingWindowZeroWindowIsClamped) {
  // Regression: window 0 used to delete batches before inserting them.
  auto w = gen::sliding_window(gen::hub_graph(1, 200), 64, 0);
  check_well_formed(w);
  EXPECT_EQ(w.total_updates(), 2 * w.master.size());
}

TEST(Workloads, SlidingWindowDrainsToEmpty) {
  auto w = gen::sliding_window(gen::hub_graph(4, 300), 100, 3);
  check_well_formed(w);
  std::vector<std::uint8_t> live(w.master.size(), 0);
  for (const auto& step : w.steps)
    for (std::size_t i : step.edges) live[i] = step.is_insert ? 1 : 0;
  for (auto l : live) EXPECT_EQ(l, 0);  // everything eventually deleted
  EXPECT_EQ(w.total_updates(), 2 * w.master.size());
}

TEST(Workloads, TargetedTeardownDeletesFolkloreMatchesFirst) {
  auto base = gen::hub_graph(1, 500);
  auto w = baseline::targeted_teardown(base);
  check_well_formed(w);
  ASSERT_GE(w.steps.size(), 2u);
  EXPECT_TRUE(w.steps.front().is_insert);
  EXPECT_EQ(w.steps.front().edges.size(), w.master.size());
  // For a single star, first-come matching matches exactly edge 0, so the
  // first deletion must be master index 0.
  ASSERT_FALSE(w.steps[1].is_insert);
  EXPECT_EQ(w.steps[1].edges.front(), 0u);
  EXPECT_EQ(w.total_updates(), 2 * w.master.size());
}

TEST(Baselines, NaiveMatcherStaysMaximalUnderTeardown) {
  auto w = baseline::targeted_teardown(gen::erdos_renyi(100, 400, 3));
  baseline::NaiveDynamicMatcher naive(2);
  std::vector<graph::EdgeId> live(w.master.size(), graph::kInvalidEdge);
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = naive.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      for (std::size_t i : step.edges) {
        ids.push_back(live[i]);
        live[i] = graph::kInvalidEdge;
      }
      naive.delete_edges(ids);
    }
  }
  EXPECT_EQ(naive.pool().live_count(), 0u);
  EXPECT_TRUE(naive.matching().empty());
  EXPECT_GT(naive.edges_scanned(), 0u);
}

TEST(Baselines, RecomputeMatcherTracksLiveSet) {
  baseline::RecomputeMatcher rec(2, 5);
  auto ids = rec.insert_edges(gen::erdos_renyi(100, 400, 7));
  EXPECT_GT(rec.matching().size(), 0u);
  rec.delete_edges(ids);
  EXPECT_TRUE(rec.matching().empty());
  EXPECT_EQ(rec.pool().live_count(), 0u);
}

}  // namespace
