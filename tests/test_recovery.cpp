// Durability and crash recovery (DESIGN.md S14): the CRC-framed record
// log's torn-tail/bit-flip tolerance, the matcher state export/import
// round trip, checkpoint write/load/prune, journal replay fidelity through
// MatchService, checkpoint-vs-pure-replay equivalence, recovery under the
// admission shed policies (sheds never enter the journal; PR 8
// conservation re-checked on the recovered service), and -- in
// -DPARMATCH_FAULT_INJECT=ON builds -- real SIGKILL crash points
// (mid-window, torn tail, header-torn) driven through child re-exec, with
// the recovered state checked bit-identical to an uncrashed run of the
// journaled prefix.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "serve/checkpoint.h"
#include "serve/journal.h"
#include "serve/service.h"
#include "shard/sharded_service.h"
#include "util/io/record_log.h"
#include "util/rng.h"

using namespace parmatch;
using graph::EdgeId;
using graph::VertexId;

namespace {

std::string temp_dir(const char* tag) {
  std::string d = (std::filesystem::temp_directory_path() /
                   ("parmatch_recovery_" + std::string(tag) + "_" +
                    std::to_string(::getpid())))
                      .string();
  std::error_code ec;
  std::filesystem::remove_all(d, ec);
  std::filesystem::create_directories(d, ec);
  return d;
}

struct DirGuard {
  std::string dir;
  explicit DirGuard(std::string d) : dir(std::move(d)) {}
  ~DirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

// ---- record log ----------------------------------------------------------

TEST(RecordLog, RoundTripAndCounters) {
  DirGuard g(temp_dir("log_roundtrip"));
  std::string path = g.dir + "/log";
  std::vector<std::vector<unsigned char>> recs;
  for (std::size_t i = 0; i < 17; ++i) {
    std::vector<unsigned char> r(i * 7 + 1);
    for (std::size_t j = 0; j < r.size(); ++j)
      r[j] = static_cast<unsigned char>(hash64(i, j));
    recs.push_back(std::move(r));
  }
  {
    util::io::RecordWriter w;
    ASSERT_TRUE(w.open(path));
    for (const auto& r : recs) ASSERT_TRUE(w.append(r.data(), r.size()));
    ASSERT_TRUE(w.sync());
    EXPECT_EQ(w.records(), recs.size());
    EXPECT_EQ(w.truncated_bytes(), 0u);
  }
  util::io::RecordReader rd;
  ASSERT_TRUE(rd.open(path));
  std::vector<unsigned char> out;
  for (const auto& r : recs) {
    ASSERT_TRUE(rd.next(out));
    EXPECT_EQ(out, r);
  }
  EXPECT_FALSE(rd.next(out));
  EXPECT_EQ(rd.records_read(), recs.size());
}

TEST(RecordLog, TornTailTruncatesOnOpenWithoutAborting) {
  DirGuard g(temp_dir("log_torn"));
  std::string path = g.dir + "/log";
  const char payload[] = "durable-window-record";
  {
    util::io::RecordWriter w;
    ASSERT_TRUE(w.open(path));
    ASSERT_TRUE(w.append(payload, sizeof payload));
    ASSERT_TRUE(w.append(payload, sizeof payload));
    // Torn third append: only 5 bytes of the frame (mid-header) hit disk.
    util::io::AppendFault fault;
    fault.torn_after = 5;
    ASSERT_TRUE(w.append(payload, sizeof payload, &fault));
  }
  // Reader: two records, then clean end-of-log -- never an abort.
  {
    util::io::RecordReader rd;
    ASSERT_TRUE(rd.open(path));
    std::vector<unsigned char> out;
    EXPECT_TRUE(rd.next(out));
    EXPECT_TRUE(rd.next(out));
    EXPECT_FALSE(rd.next(out));
  }
  // Re-open for append: the torn tail is healed by truncation.
  util::io::RecordWriter w2;
  ASSERT_TRUE(w2.open(path));
  EXPECT_EQ(w2.records(), 2u);
  EXPECT_EQ(w2.truncated_bytes(), 5u);
  ASSERT_TRUE(w2.append(payload, sizeof payload));
  util::io::RecordReader rd2;
  ASSERT_TRUE(rd2.open(path));
  std::vector<unsigned char> out;
  int n = 0;
  while (rd2.next(out)) ++n;
  EXPECT_EQ(n, 3);
}

TEST(RecordLog, FlippedByteStopsReplayAtTheCorruptRecord) {
  DirGuard g(temp_dir("log_flip"));
  std::string path = g.dir + "/log";
  const char payload[] = "bit-rot-target";
  {
    util::io::RecordWriter w;
    ASSERT_TRUE(w.open(path));
    ASSERT_TRUE(w.append(payload, sizeof payload));
    util::io::AppendFault fault;
    fault.flip_byte = 3;  // post-CRC corruption inside record 1
    ASSERT_TRUE(w.append(payload, sizeof payload, &fault));
    ASSERT_TRUE(w.append(payload, sizeof payload));
  }
  util::io::RecordReader rd;
  ASSERT_TRUE(rd.open(path));
  std::vector<unsigned char> out;
  EXPECT_TRUE(rd.next(out));   // record 0 intact
  EXPECT_FALSE(rd.next(out));  // record 1 fails its checksum: replay stops
  EXPECT_EQ(rd.records_read(), 1u);
  // The writer's open-time scan truncates the corrupt suffix (record 2 is
  // unreachable behind the bad frame, so it goes too -- standard WAL
  // prefix semantics).
  util::io::RecordWriter w2;
  ASSERT_TRUE(w2.open(path));
  EXPECT_EQ(w2.records(), 1u);
  EXPECT_GT(w2.truncated_bytes(), 0u);
}

// ---- matcher state serialization -----------------------------------------

TEST(MatcherState, ExportImportPreservesTrajectory) {
  gen::Workload w = gen::churn(gen::erdos_renyi(600, 2'400, 17), 48, 0.5, 23);
  dyn::Config cfg;
  cfg.seed = 9;
  dyn::DynamicMatcher a(cfg);
  std::vector<EdgeId> live(w.master.size(), graph::kInvalidEdge);
  // Split the workload: first half builds the state to serialize, second
  // half must replay bit-identically on the imported copy.
  std::size_t half = w.steps.size() / 2;
  auto apply_step = [&](dyn::DynamicMatcher& m, const gen::Step& s) {
    if (s.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : s.edges) chunk.add(w.master.edge(i));
      auto ids = m.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j) live[s.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : s.edges) ids.push_back(live[i]);
      m.delete_edges(ids);
    }
  };
  for (std::size_t i = 0; i < half; ++i) apply_step(a, w.steps[i]);

  std::vector<std::uint64_t> words;
  a.export_state(words);
  dyn::DynamicMatcher b(cfg);
  ASSERT_TRUE(b.import_state(words));
  EXPECT_EQ(a.state_fingerprint(), b.state_fingerprint());

  // The future trajectory must agree bit-for-bit: same edge ids, same
  // matching after every subsequent batch.
  std::vector<EdgeId> live_a = live;
  for (std::size_t i = half; i < w.steps.size(); ++i) {
    const auto& s = w.steps[i];
    live = live_a;
    apply_step(a, s);
    std::vector<EdgeId> after_a = live;
    live = live_a;
    apply_step(b, s);
    live_a = live;
    EXPECT_EQ(after_a, live_a) << "edge-id divergence at step " << i;
    ASSERT_EQ(a.state_fingerprint(), b.state_fingerprint())
        << "state divergence at step " << i;
  }
  EXPECT_EQ(a.matching(), b.matching());
}

TEST(MatcherState, ImportRejectsConfigMismatchAndGarbage) {
  dyn::Config cfg;
  cfg.seed = 4;
  dyn::DynamicMatcher a(cfg);
  graph::EdgeBatch batch;
  batch.add({1, 2});
  batch.add({2, 3});
  a.insert_edges(batch);
  std::vector<std::uint64_t> words;
  a.export_state(words);

  dyn::Config other = cfg;
  other.seed = 5;
  dyn::DynamicMatcher wrong_seed(other);
  EXPECT_FALSE(wrong_seed.import_state(words));

  std::vector<std::uint64_t> truncated(words.begin(), words.end() - 1);
  dyn::DynamicMatcher fresh(cfg);
  EXPECT_FALSE(fresh.import_state(truncated));
}

// ---- checkpoint files ----------------------------------------------------

TEST(Checkpoint, WriteLoadFallbackAndPrune) {
  DirGuard g(temp_dir("ckpt"));
  for (std::uint64_t seq : {5ull, 9ull, 12ull}) {
    serve::CheckpointData d;
    d.seqno = seq;
    d.next_ticket = seq * 100;
    d.matcher_words = {seq, seq + 1, seq + 2};
    d.tickets = {{1, 10}, {2, 20}};
    ASSERT_TRUE(serve::write_checkpoint(g.dir, d));
  }
  serve::CheckpointData out;
  ASSERT_TRUE(serve::load_newest_checkpoint(g.dir, out));
  EXPECT_EQ(out.seqno, 12u);
  EXPECT_EQ(out.next_ticket, 1200u);

  // Corrupt the newest file: load must fall back to seqno 9, not abort.
  {
    FILE* f = std::fopen(serve::checkpoint_path(g.dir, 12).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  ASSERT_TRUE(serve::load_newest_checkpoint(g.dir, out));
  EXPECT_EQ(out.seqno, 9u);

  serve::prune_checkpoints(g.dir, 2);
  EXPECT_EQ(serve::list_checkpoints(g.dir).size(), 2u);
  EXPECT_FALSE(
      std::filesystem::exists(serve::checkpoint_path(g.dir, 5)));
}

// ---- service-level recovery ----------------------------------------------

// Pinned window partition (flushes on max_batch only): the journaled
// sequence of windows is reproducible, so fingerprints compare runs, not
// timing accidents.
serve::ServiceConfig pinned_cfg(const std::string& dir,
                                serve::JournalPolicy policy,
                                std::uint64_t ckpt_every = 0) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 5;
  cfg.max_vertices = 700;
  cfg.record_latencies = false;
  cfg.former.max_batch = 64;
  cfg.former.cost_flush = 1u << 20;
  cfg.former.max_delay_us = 1u << 30;
  cfg.journal.policy = policy;
  cfg.journal.dir = dir;
  cfg.journal.ckpt_every = ckpt_every;
  return cfg;
}

// Drives the flattened churn stream through a service; returns its idle
// fingerprint after stop().
std::uint64_t run_serve_stream(const serve::ServiceConfig& cfg,
                               const gen::Workload& w,
                               const std::vector<gen::Update>& stream) {
  serve::MatchService svc(cfg);
  svc.start();
  std::vector<std::uint64_t> ticket(w.master.size(), 0);
  for (const gen::Update& u : stream) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  }
  // stop(), not drain_until_idle(): under the pinned partition a partial
  // final window only ever flushes via stop()'s kDrain.
  svc.stop();
  return svc.recovery_fingerprint();
}

TEST(ServiceRecovery, CleanRunReplaysBitIdentically) {
  DirGuard g(temp_dir("svc_replay"));
  gen::Workload w = gen::churn(gen::erdos_renyi(700, 2'800, 13), 1, 0.5, 31);
  auto stream = gen::flatten(w);
  std::uint64_t fp =
      run_serve_stream(pinned_cfg(g.dir, serve::JournalPolicy::kCommit), w,
                       stream);

  // A fresh service on the same directory recovers by replaying the whole
  // log through the normal batch path -- bit-identical state, zero epoch
  // mismatches.
  serve::MatchService recovered(
      pinned_cfg(g.dir, serve::JournalPolicy::kCommit));
  EXPECT_TRUE(recovered.recovery_info().ran);
  EXPECT_FALSE(recovered.recovery_info().import_failed);
  EXPECT_EQ(recovered.recovery_info().epoch_mismatches, 0u);
  EXPECT_GT(recovered.recovery_info().replayed_windows, 0u);
  EXPECT_EQ(recovered.recovery_fingerprint(), fp);
  // The published snapshot was rebuilt too.
  std::size_t snap = 0;
  for (VertexId v = 0; v < 700; ++v)
    if (recovered.is_matched(v)) ++snap;
  EXPECT_EQ(recovered.matched_count(), recovered.matcher().matched_count());
  EXPECT_GT(snap, 0u);
}

TEST(ServiceRecovery, CheckpointPlusSuffixEqualsPureReplay) {
  DirGuard ga(temp_dir("svc_ckpt"));
  DirGuard gb(temp_dir("svc_pure"));
  gen::Workload w = gen::churn(gen::erdos_renyi(700, 2'800, 13), 1, 0.5, 31);
  auto stream = gen::flatten(w);
  std::uint64_t fp = run_serve_stream(
      pinned_cfg(ga.dir, serve::JournalPolicy::kAsync, /*ckpt_every=*/4), w,
      stream);

  // Route 1: checkpoint + journal suffix.
  serve::MatchService from_ckpt(
      pinned_cfg(ga.dir, serve::JournalPolicy::kAsync, 4));
  EXPECT_GT(from_ckpt.recovery_info().checkpoint_seqno, 0u)
      << "checkpoint was never taken; the equivalence below is vacuous";
  EXPECT_EQ(from_ckpt.recovery_info().epoch_mismatches, 0u);
  EXPECT_EQ(from_ckpt.recovery_fingerprint(), fp);

  // Route 2: the same wal.log alone, no checkpoint -- full replay.
  std::error_code ec;
  std::filesystem::copy_file(serve::journal_path(ga.dir),
                             serve::journal_path(gb.dir),
                             std::filesystem::copy_options::overwrite_existing,
                             ec);
  ASSERT_FALSE(ec);
  serve::MatchService pure(pinned_cfg(gb.dir, serve::JournalPolicy::kAsync));
  EXPECT_EQ(pure.recovery_info().checkpoint_seqno, 0u);
  EXPECT_EQ(pure.recovery_fingerprint(), fp);
}

TEST(ServiceRecovery, TornJournalTailHealsAndRecoversThePrefix) {
  DirGuard g(temp_dir("svc_torn"));
  gen::Workload w = gen::churn(gen::erdos_renyi(700, 2'800, 13), 1, 0.5, 31);
  auto stream = gen::flatten(w);
  run_serve_stream(pinned_cfg(g.dir, serve::JournalPolicy::kCommit), w,
                   stream);

  // Tear the log's tail mid-frame, as a crash inside an append would.
  std::string wal = serve::journal_path(g.dir);
  auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 11);

  serve::MatchService recovered(
      pinned_cfg(g.dir, serve::JournalPolicy::kCommit));
  EXPECT_TRUE(recovered.recovery_info().ran);
  EXPECT_EQ(recovered.recovery_info().epoch_mismatches, 0u);
  // The torn final record is gone; everything before it replayed, and the
  // writer healed the file on open.
  EXPECT_GT(recovered.recovery_info().replayed_windows, 0u);
  EXPECT_GT(recovered.journal().truncated_bytes(), 0u);
}

// Sheds never enter the journal: under each shed policy with 4 priority
// lanes, the journal replays to exactly the committed state, and PR 8's
// shed conservation holds again on the recovered service's fresh traffic.
TEST(ServiceRecovery, ShedPoliciesJournalOnlyCommittedOps) {
  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::kRejectNew, serve::ShedPolicy::kDropOldest}) {
    DirGuard g(temp_dir(policy == serve::ShedPolicy::kRejectNew
                            ? "svc_shed_reject"
                            : "svc_shed_drop"));
    gen::Workload w =
        gen::churn(gen::erdos_renyi(700, 2'800, 13), 1, 0.6, 31);
    auto stream = gen::flatten(w);

    serve::ServiceConfig cfg = pinned_cfg(g.dir, serve::JournalPolicy::kCommit);
    cfg.admission.policy = policy;
    cfg.admission.lanes = 4;
    cfg.queue_capacity = 64;  // tiny lanes: overload is reachable
    // Deadline flushes allowed here -- shedding needs real backlog, and
    // the bit-identity claim is fingerprint-vs-replay, not run-vs-run.
    cfg.former.max_delay_us = 200;

    std::uint64_t fp_stop = 0, offered = 0, committed = 0, shed = 0;
    std::uint64_t journaled_updates = 0;
    {
      serve::MatchService svc(cfg);
      svc.start();
      std::vector<std::uint64_t> ticket(w.master.size(),
                                        serve::MatchService::kShedTicket);
      for (const gen::Update& u : stream) {
        // Lane keyed on the edge, not submit order: a delete must ride the
        // SAME lane as its insert (per-lane FIFO is the API contract).
        std::uint8_t lane = static_cast<std::uint8_t>(u.edge % 4);
        if (u.is_insert) {
          ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge), lane);
        } else {
          if (ticket[u.edge] == serve::MatchService::kShedTicket) continue;
          svc.submit_delete(ticket[u.edge], lane);
        }
      }
      svc.drain_until_idle();
      svc.stop();
      fp_stop = svc.recovery_fingerprint();
      for (std::size_t l = 0; l < 4; ++l) {
        auto lr = svc.lane_report(l);
        offered += lr.offered;
        committed += lr.committed;
        shed += lr.shed_reject + lr.shed_evict + lr.shed_stale;
        EXPECT_EQ(lr.offered,
                  lr.committed + lr.shed_reject + lr.shed_evict +
                      lr.shed_stale)
            << "lane " << l;
      }
      EXPECT_EQ(offered, committed + shed);
    }

    // Count the updates the journal actually carries: they must be
    // exactly the committed-to-matcher ops -- never a shed request.
    serve::JournalReplay rp(g.dir);
    serve::JournalRecord rec;
    while (rp.next(rec))
      journaled_updates += rec.inserts.size() + rec.delete_tickets.size();
    EXPECT_LE(journaled_updates, committed);

    // Replay lands on the stopped service's exact state...
    serve::MatchService recovered(cfg);
    EXPECT_EQ(recovered.recovery_info().epoch_mismatches, 0u);
    EXPECT_EQ(recovered.recovery_fingerprint(), fp_stop);

    // ...and the recovered service still keeps PR 8 conservation on fresh
    // traffic (counters restart at zero; the invariant must hold anew).
    recovered.start();
    std::vector<std::uint64_t> t2;
    for (std::size_t i = 0; i < 2'000; ++i) {
      VertexId a = static_cast<VertexId>(hash64(77, i) % 700);
      VertexId b = static_cast<VertexId>(hash64(78, i) % 700);
      if (a == b) b = (b + 1) % 700;
      VertexId vs[2] = {a, b};
      t2.push_back(recovered.submit_insert(
          std::span<const VertexId>(vs, 2),
          static_cast<std::uint8_t>(i % 4)));
    }
    recovered.drain_until_idle();
    recovered.stop();
    std::uint64_t off2 = 0, com2 = 0, shed2 = 0;
    for (std::size_t l = 0; l < 4; ++l) {
      auto lr = recovered.lane_report(l);
      off2 += lr.offered;
      com2 += lr.committed;
      shed2 += lr.shed_reject + lr.shed_evict + lr.shed_stale;
    }
    EXPECT_EQ(off2, com2 + shed2) << "post-recovery conservation";
  }
}

// Sharded service recovery (ISSUE 15): the journal carries window
// contents, not matcher internals, so the SAME log must replay
// bit-identically through the ownership protocol at any shard count --
// and the recovered sharded service must keep PR 8's per-lane shed
// conservation on fresh traffic, exactly like the single-matcher one.
TEST(ServiceRecovery, ShardedServiceReplaysAndKeepsShedConservation) {
  DirGuard g(temp_dir("svc_shard"));
  gen::Workload w = gen::churn(gen::erdos_renyi(700, 2'800, 13), 1, 0.5, 31);
  auto stream = gen::flatten(w);

  serve::ServiceConfig cfg = pinned_cfg(g.dir, serve::JournalPolicy::kCommit,
                                        /*ckpt_every=*/4);
  cfg.shards = 4;
  cfg.admission.lanes = 4;
  std::uint64_t fp_stop = 0;
  {
    shard::ShardedMatchService svc(cfg);
    svc.start();
    std::vector<std::uint64_t> ticket(w.master.size(), 0);
    for (const gen::Update& u : stream) {
      std::uint8_t lane = static_cast<std::uint8_t>(u.edge % 4);
      if (u.is_insert)
        ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge), lane);
      else
        svc.submit_delete(ticket[u.edge], lane);
    }
    svc.stop();
    fp_stop = svc.recovery_fingerprint();
    ASSERT_TRUE(svc.matcher().check_consistent());
  }

  // Checkpoint + suffix route.
  shard::ShardedMatchService recovered(cfg);
  EXPECT_TRUE(recovered.recovery_info().ran);
  EXPECT_FALSE(recovered.recovery_info().import_failed);
  EXPECT_EQ(recovered.recovery_info().epoch_mismatches, 0u);
  EXPECT_GT(recovered.recovery_info().checkpoint_seqno, 0u)
      << "no checkpoint taken; the import path went unexercised";
  EXPECT_EQ(recovered.recovery_fingerprint(), fp_stop);
  EXPECT_TRUE(recovered.matcher().check_consistent());

  // Pure-replay route on a copy of the log, no checkpoint.
  {
    DirGuard gp(temp_dir("svc_shard_pure"));
    std::error_code ec;
    std::filesystem::copy_file(
        serve::journal_path(g.dir), serve::journal_path(gp.dir),
        std::filesystem::copy_options::overwrite_existing, ec);
    ASSERT_FALSE(ec);
    serve::ServiceConfig pcfg =
        pinned_cfg(gp.dir, serve::JournalPolicy::kCommit);
    pcfg.shards = 4;
    pcfg.admission.lanes = 4;
    shard::ShardedMatchService pure(pcfg);
    EXPECT_EQ(pure.recovery_info().checkpoint_seqno, 0u);
    EXPECT_EQ(pure.recovery_fingerprint(), fp_stop);
  }

  // PR 8 conservation on the recovered service's fresh traffic: per-lane
  // offered == committed + shed_reject + shed_evict + shed_stale.
  recovered.start();
  // 2048 = 32 full pinned windows: drain_until_idle never waits on a
  // partial window the pinned partition would hold back until stop().
  for (std::size_t i = 0; i < 2'048; ++i) {
    VertexId a = static_cast<VertexId>(hash64(81, i) % 700);
    VertexId b = static_cast<VertexId>(hash64(82, i) % 700);
    if (a == b) b = (b + 1) % 700;
    VertexId vs[2] = {a, b};
    recovered.submit_insert(std::span<const VertexId>(vs, 2),
                            static_cast<std::uint8_t>(i % 4));
  }
  recovered.drain_until_idle();
  recovered.stop();
  std::uint64_t off = 0, com = 0, shed = 0;
  for (std::size_t l = 0; l < 4; ++l) {
    auto lr = recovered.lane_report(l);
    off += lr.offered;
    com += lr.committed;
    shed += lr.shed_reject + lr.shed_evict + lr.shed_stale;
    EXPECT_EQ(lr.offered, lr.committed + lr.shed_reject + lr.shed_evict +
                              lr.shed_stale)
        << "lane " << l << " post-recovery conservation";
  }
  EXPECT_EQ(off, com + shed);
  EXPECT_TRUE(recovered.matcher().check_consistent());
}

#if defined(PARMATCH_FAULT_INJECT)

// ---- real SIGKILL crash points (fault-injection builds only) -------------

constexpr std::size_t kCrashBatch = 16;
constexpr std::size_t kCrashUpdates = 600;
constexpr VertexId kCrashN = 512;

// Insert-only pinned-partition stream: journal seqno S covers exactly the
// first S*kCrashBatch submits, so the parent can reproduce the journaled
// prefix uncrashed.
void crash_child_body(const std::string& dir) {
  graph::EdgeBatch edges = gen::erdos_renyi(kCrashN, 2'000, 99);
  serve::ServiceConfig cfg = pinned_cfg(dir, serve::JournalPolicy::kCommit,
                                        /*ckpt_every=*/8);
  cfg.matcher.seed = 7;
  cfg.max_vertices = kCrashN;
  cfg.former.max_batch = kCrashBatch;
  serve::MatchService svc(cfg);
  svc.start();
  for (std::size_t i = 0; i < kCrashUpdates; ++i)
    svc.submit_insert(edges.edge(i % edges.size()));
  svc.stop();  // unreachable when a crash knob is armed
}

TEST(RecoveryCrash, Child) {
  const char* dir = std::getenv("PARMATCH_RECOVERY_CHILD_DIR");
  if (dir == nullptr) GTEST_SKIP();
  crash_child_body(dir);
}

std::string self_path() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

// Runs the crash child with `fi_env` (e.g. "PARMATCH_FI_CRASH_AT=3")
// prepended; returns the raw wait status.
int run_crash_child(const std::string& dir, const std::string& fi_env) {
  std::string self = self_path();
  if (self.empty()) return -1;
  std::string cmd = fi_env + " PARMATCH_RECOVERY_CHILD_DIR=" + dir + " '" +
                    self + "' --gtest_filter=RecoveryCrash.Child " +
                    ">/dev/null 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  if (!p) return -1;
  char buf[128];
  while (std::fgets(buf, sizeof buf, p)) {
  }
  return pclose(p);
}

struct CrashScenario {
  const char* name;
  const char* fi_env;
  bool expect_truncation;
};

TEST(RecoveryCrash, BitIdenticalAfterEveryInjectedCrashPoint) {
  if (std::getenv("PARMATCH_RECOVERY_CHILD_DIR") != nullptr) GTEST_SKIP();
#ifndef __linux__
  GTEST_SKIP() << "re-exec via /proc/self/exe is linux-only";
#endif
  const CrashScenario scenarios[] = {
      // Clean kill after a fully written record (mid-stream window).
      {"mid_window", "PARMATCH_FI_CRASH_AT=3", false},
      // Crash past the first checkpoint, so recovery exercises
      // checkpoint-import + suffix replay, not just replay.
      {"post_ckpt", "PARMATCH_FI_CRASH_AT=13", false},
      // Torn tail: 11 bytes of the dying append reach the file.
      {"torn_tail", "PARMATCH_FI_CRASH_AT=5 PARMATCH_FI_TORN_TAIL=11", true},
      // Header-torn: not even the frame header survives.
      {"torn_header", "PARMATCH_FI_CRASH_AT=4 PARMATCH_FI_TORN_TAIL=3", true},
      // Nothing of the final frame written (crash between windows).
      {"torn_empty", "PARMATCH_FI_CRASH_AT=6 PARMATCH_FI_TORN_TAIL=0", false},
  };
  for (const CrashScenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    DirGuard g(temp_dir((std::string("crash_") + sc.name).c_str()));
    int status = run_crash_child(g.dir, sc.fi_env);
    ASSERT_NE(status, -1);
    // The injected crash is a real SIGKILL, not an exit path. Depending on
    // whether the popen shell exec'd the test binary directly, the kill
    // surfaces as a signal status or as the shell's 128+SIGKILL exit code.
    bool killed = (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ||
                  (WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL);
    ASSERT_TRUE(killed) << "child exited cleanly instead of crashing; "
                        << "raw wait status " << status;

    // Recover.
    graph::EdgeBatch edges = gen::erdos_renyi(kCrashN, 2'000, 99);
    serve::ServiceConfig cfg = pinned_cfg(
        g.dir, serve::JournalPolicy::kCommit, /*ckpt_every=*/8);
    cfg.matcher.seed = 7;
    cfg.max_vertices = kCrashN;
    cfg.former.max_batch = kCrashBatch;
    serve::MatchService recovered(cfg);
    const auto& info = recovered.recovery_info();
    EXPECT_TRUE(info.ran);
    EXPECT_FALSE(info.import_failed);
    EXPECT_EQ(info.epoch_mismatches, 0u);
    if (sc.expect_truncation)
      EXPECT_GT(recovered.journal().truncated_bytes(), 0u);

    // Uncrashed reference over exactly the journaled prefix.
    std::uint64_t last_seq =
        info.checkpoint_seqno + info.replayed_windows;
    ASSERT_GT(last_seq, 0u);
    std::size_t prefix = static_cast<std::size_t>(last_seq) * kCrashBatch;
    ASSERT_LE(prefix, kCrashUpdates);
    serve::ServiceConfig ref_cfg =
        pinned_cfg("", serve::JournalPolicy::kOff);
    ref_cfg.matcher.seed = 7;
    ref_cfg.max_vertices = kCrashN;
    ref_cfg.former.max_batch = kCrashBatch;
    serve::MatchService reference(ref_cfg);
    reference.start();
    for (std::size_t i = 0; i < prefix; ++i)
      reference.submit_insert(edges.edge(i % edges.size()));
    reference.stop();  // kDrain flush covers a trailing partial window
    EXPECT_EQ(recovered.recovery_fingerprint(),
              reference.recovery_fingerprint())
        << "recovered state diverges from the uncrashed run";
  }
}

// ---- sharded crash arm (ISSUE 15) ----------------------------------------
// The same SIGKILL crash points, but the dying AND recovering service run
// the 4-shard ownership protocol: recovery must land bit-identical to an
// uncrashed sharded run of the journaled prefix, and PR 8 shed
// conservation must hold on the recovered service's fresh traffic.

serve::ServiceConfig sharded_crash_cfg(const std::string& dir) {
  serve::ServiceConfig cfg =
      pinned_cfg(dir, serve::JournalPolicy::kCommit, /*ckpt_every=*/8);
  cfg.matcher.seed = 7;
  cfg.max_vertices = kCrashN;
  cfg.former.max_batch = kCrashBatch;
  cfg.shards = 4;
  cfg.admission.lanes = 4;
  return cfg;
}

// The crash stream rides lane 0 only: with several active lanes, window
// composition depends on lane-drain interleaving (run-vs-run identity is
// NOT claimed there -- see ShedPoliciesJournalOnlyCommittedOps), and this
// arm compares against a separately-run uncrashed reference. The
// multi-lane conservation identity is checked on post-recovery traffic,
// where no run-vs-run claim is needed.
void sharded_crash_child_body(const std::string& dir) {
  graph::EdgeBatch edges = gen::erdos_renyi(kCrashN, 2'000, 99);
  shard::ShardedMatchService svc(sharded_crash_cfg(dir));
  svc.start();
  for (std::size_t i = 0; i < kCrashUpdates; ++i)
    svc.submit_insert(edges.edge(i % edges.size()));
  svc.stop();  // unreachable when a crash knob is armed
}

TEST(RecoveryCrash, ShardedChild) {
  const char* dir = std::getenv("PARMATCH_RECOVERY_SHARD_DIR");
  if (dir == nullptr) GTEST_SKIP();
  sharded_crash_child_body(dir);
}

int run_sharded_crash_child(const std::string& dir,
                            const std::string& fi_env) {
  std::string self = self_path();
  if (self.empty()) return -1;
  std::string cmd = fi_env + " PARMATCH_RECOVERY_SHARD_DIR=" + dir + " '" +
                    self + "' --gtest_filter=RecoveryCrash.ShardedChild " +
                    ">/dev/null 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  if (!p) return -1;
  char buf[128];
  while (std::fgets(buf, sizeof buf, p)) {
  }
  return pclose(p);
}

TEST(RecoveryCrash, ShardedServiceRecoversBitIdenticallyAndConserves) {
  if (std::getenv("PARMATCH_RECOVERY_CHILD_DIR") != nullptr ||
      std::getenv("PARMATCH_RECOVERY_SHARD_DIR") != nullptr)
    GTEST_SKIP();
#ifndef __linux__
  GTEST_SKIP() << "re-exec via /proc/self/exe is linux-only";
#endif
  const CrashScenario scenarios[] = {
      {"shard_mid_window", "PARMATCH_FI_CRASH_AT=3", false},
      {"shard_post_ckpt", "PARMATCH_FI_CRASH_AT=13", false},
      {"shard_torn_tail", "PARMATCH_FI_CRASH_AT=5 PARMATCH_FI_TORN_TAIL=11",
       true},
  };
  for (const CrashScenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    DirGuard g(temp_dir((std::string("crash_") + sc.name).c_str()));
    int status = run_sharded_crash_child(g.dir, sc.fi_env);
    ASSERT_NE(status, -1);
    bool killed = (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ||
                  (WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL);
    ASSERT_TRUE(killed) << "sharded child exited cleanly instead of "
                        << "crashing; raw wait status " << status;

    shard::ShardedMatchService recovered(sharded_crash_cfg(g.dir));
    const auto& info = recovered.recovery_info();
    EXPECT_TRUE(info.ran);
    EXPECT_FALSE(info.import_failed);
    EXPECT_EQ(info.epoch_mismatches, 0u);
    if (sc.expect_truncation)
      EXPECT_GT(recovered.journal().truncated_bytes(), 0u);
    EXPECT_TRUE(recovered.matcher().check_consistent());

    // Uncrashed sharded reference over exactly the journaled prefix.
    std::uint64_t last_seq = info.checkpoint_seqno + info.replayed_windows;
    ASSERT_GT(last_seq, 0u);
    std::size_t prefix = static_cast<std::size_t>(last_seq) * kCrashBatch;
    ASSERT_LE(prefix, kCrashUpdates);
    graph::EdgeBatch edges = gen::erdos_renyi(kCrashN, 2'000, 99);
    serve::ServiceConfig ref_cfg = sharded_crash_cfg("");
    ref_cfg.journal.policy = serve::JournalPolicy::kOff;
    shard::ShardedMatchService reference(ref_cfg);
    reference.start();
    for (std::size_t i = 0; i < prefix; ++i)
      reference.submit_insert(edges.edge(i % edges.size()));
    reference.stop();
    EXPECT_EQ(recovered.recovery_fingerprint(),
              reference.recovery_fingerprint())
        << "recovered sharded state diverges from the uncrashed run";

    // PR 8 conservation identity on fresh post-recovery traffic.
    recovered.start();
    for (std::size_t i = 0; i < 32 * kCrashBatch; ++i) {
      VertexId a = static_cast<VertexId>(hash64(91, i) % kCrashN);
      VertexId b = static_cast<VertexId>(hash64(92, i) % kCrashN);
      if (a == b) b = (b + 1) % kCrashN;
      VertexId vs[2] = {a, b};
      recovered.submit_insert(std::span<const VertexId>(vs, 2),
                              static_cast<std::uint8_t>(i % 4));
    }
    recovered.drain_until_idle();
    recovered.stop();
    std::uint64_t off = 0, com = 0, shed = 0;
    for (std::size_t l = 0; l < 4; ++l) {
      auto lr = recovered.lane_report(l);
      off += lr.offered;
      com += lr.committed;
      shed += lr.shed_reject + lr.shed_evict + lr.shed_stale;
      EXPECT_EQ(lr.offered, lr.committed + lr.shed_reject + lr.shed_evict +
                                lr.shed_stale)
          << "lane " << l << " post-recovery conservation";
    }
    EXPECT_EQ(off, com + shed);
    EXPECT_TRUE(recovered.matcher().check_consistent());
  }
}

#endif  // PARMATCH_FAULT_INJECT

}  // namespace
