// Price-audit tests (paper Lemmas 3.3, 3.4, 5.8): every full teardown pays
// exactly m regardless of order, and payment is positive exactly on early
// deletes (edge removed while its eliminator is still alive).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "matching/price_audit.h"
#include "prims/permutation.h"

using namespace parmatch;
using graph::EdgeId;

namespace {

struct Instance {
  graph::EdgePool pool;
  std::vector<EdgeId> ids;
  matching::MatchResult match;
};

Instance make(std::uint64_t seed) {
  Instance inst{graph::EdgePool(2), {}, {}};
  inst.ids = inst.pool.add_edges(gen::erdos_renyi(700, 3'000, seed));
  inst.match = matching::parallel_greedy_match(inst.pool, inst.ids, seed + 50);
  return inst;
}

TEST(PriceAudit, FullTeardownPaysExactlyM_AnyOrder) {
  auto inst = make(1);
  // Ascending, descending, and shuffled id orders.
  std::vector<std::vector<EdgeId>> orders;
  auto asc = inst.ids;
  std::sort(asc.begin(), asc.end());
  orders.push_back(asc);
  auto desc = asc;
  std::reverse(desc.begin(), desc.end());
  orders.push_back(desc);
  auto perm = prims::random_permutation(inst.ids.size(), 99);
  std::vector<EdgeId> shuffled(inst.ids.size());
  for (std::size_t i = 0; i < perm.size(); ++i) shuffled[i] = inst.ids[perm[i]];
  orders.push_back(shuffled);
  // Adaptive matched-first order: Lemma 3.4 is an every-run identity, so it
  // must hold even for an adversary that reads the matching.
  std::vector<EdgeId> matched_first = inst.match.matched;
  for (EdgeId e : asc)
    if (inst.match.eliminator[e] != e) matched_first.push_back(e);
  orders.push_back(matched_first);

  for (const auto& order : orders) {
    matching::PriceAuditor audit(inst.match);
    for (EdgeId e : order) audit.on_delete(e);
    EXPECT_EQ(audit.total_payment(),
              static_cast<std::int64_t>(inst.ids.size()));
  }
}

TEST(PriceAudit, PaymentPositiveIffEarly) {
  auto inst = make(2);
  auto perm = prims::random_permutation(inst.ids.size(), 7);
  matching::PriceAuditor audit(inst.match);
  std::vector<std::uint8_t> deleted(inst.pool.id_bound(), 0);
  for (std::size_t t = 0; t < perm.size(); ++t) {
    EdgeId e = inst.ids[perm[t]];
    bool early = !deleted[inst.match.eliminator[e]];
    auto pay = audit.on_delete(e);
    EXPECT_EQ(pay > 0, early) << "step " << t;
    deleted[e] = 1;
  }
}

TEST(PriceAudit, MatchedDeleteCollectsItsStar) {
  auto inst = make(3);
  // Deleting a matched edge first collects one coin per edge it eliminates
  // (still live and unpaid) plus its own.
  EdgeId root = inst.match.matched.front();
  std::int64_t star = 1;
  for (EdgeId e : inst.ids)
    if (e != root && inst.match.eliminator[e] == root) ++star;
  matching::PriceAuditor audit(inst.match);
  EXPECT_EQ(audit.on_delete(root), star);
  // Every edge of that star is now paid: late deletes are free.
  for (EdgeId e : inst.ids)
    if (e != root && inst.match.eliminator[e] == root) {
      EXPECT_EQ(audit.on_delete(e), 0);
    }
}

}  // namespace
