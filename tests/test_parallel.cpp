// Scheduler / parallel_for tests (DESIGN.md S2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"

using namespace parmatch;

namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::size_t n = 1'000'003;  // deliberately not a multiple of any grain
  std::vector<std::uint8_t> hit(n, 0);
  parallel::parallel_for(0, n, [&](std::size_t i) { ++hit[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST(Parallel, RespectsLoAndHi) {
  std::atomic<std::uint64_t> sum{0};
  parallel::parallel_for(100, 200, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100ull + 199) * 100 / 2);  // sum of 100..199
}

TEST(Parallel, EmptyAndSingletonRanges) {
  int count = 0;
  parallel::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel::parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Parallel, NestedLoopsCoverEveryIndex) {
  std::size_t n = 64;
  std::vector<std::uint32_t> out(n * n, 0);
  parallel::parallel_for(0, n, [&](std::size_t i) {
    parallel::parallel_for(0, n, [&](std::size_t j) { out[i * n + j] = 1; });
  });
  for (auto v : out) ASSERT_EQ(v, 1u);
}

// Nested stress with forced forking: grain 1 everywhere, three levels deep,
// every leaf increments its cell exactly once. Exercises the deque push /
// pop / steal paths (the old shared-cursor pool ran nested levels
// sequentially; the work-stealing pool forks them for real).
TEST(Parallel, NestedStressThreeLevelsGrainOne) {
  constexpr std::size_t kA = 16, kB = 16, kC = 16;
  std::vector<std::uint8_t> hit(kA * kB * kC, 0);
  for (int rep = 0; rep < 8; ++rep) {
    std::fill(hit.begin(), hit.end(), 0);
    parallel::parallel_for(
        0, kA,
        [&](std::size_t a) {
          parallel::parallel_for(
              0, kB,
              [&](std::size_t b) {
                parallel::parallel_for(
                    0, kC,
                    [&](std::size_t c) { ++hit[(a * kB + b) * kC + c]; }, 1);
              },
              1);
        },
        1);
    for (std::size_t i = 0; i < hit.size(); ++i) ASSERT_EQ(hit[i], 1) << i;
  }
}

// Uneven grains: iteration i does ~i units of work, grain 1, so chunk
// runtimes span three orders of magnitude. The range must still be covered
// exactly once and the slow tail must not lose updates to stealing races.
TEST(Parallel, UnevenGrainWorkDistribution) {
  std::size_t n = 1024;
  std::vector<std::uint64_t> out(n, 0);
  std::atomic<std::uint64_t> sum{0};
  parallel::parallel_for(
      0, n,
      [&](std::size_t i) {
        std::uint64_t acc = 0;
        for (std::size_t k = 0; k < i; ++k) acc += k * 2654435761u + i;
        out[i] = acc + 1;  // +1 so untouched cells are detectable
        sum.fetch_add(i, std::memory_order_relaxed);
      },
      1);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NE(out[i], 0u) << i;
}

// Two top-level regions back to back plus a nested one in between must not
// leak job state across launches (deques drain fully before run returns).
TEST(Parallel, BackToBackLaunchesAreIsolated) {
  std::size_t n = 50'000;
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<std::uint64_t> count{0};
    parallel::parallel_for(0, n, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), n) << "rep " << rep;
  }
}

TEST(Parallel, BlockedVariantSeesContiguousChunks) {
  std::size_t n = 100'000;
  std::vector<std::uint8_t> hit(n, 0);
  parallel::parallel_for_blocked(0, n, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    for (std::size_t i = b; i < e; ++i) ++hit[i];
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST(Parallel, NumWorkersIsPositiveAndStable) {
  int w = parallel::num_workers();
  EXPECT_GE(w, 1);
  EXPECT_EQ(parallel::num_workers(), w);
}

}  // namespace
