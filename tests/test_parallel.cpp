// Scheduler / parallel_for tests (DESIGN.md S2).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"

using namespace parmatch;

namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::size_t n = 1'000'003;  // deliberately not a multiple of any grain
  std::vector<std::uint8_t> hit(n, 0);
  parallel::parallel_for(0, n, [&](std::size_t i) { ++hit[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST(Parallel, RespectsLoAndHi) {
  std::atomic<std::uint64_t> sum{0};
  parallel::parallel_for(100, 200, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100ull + 199) * 100 / 2);  // sum of 100..199
}

TEST(Parallel, EmptyAndSingletonRanges) {
  int count = 0;
  parallel::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel::parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Parallel, NestedLoopsRunSequentiallyAndCorrectly) {
  std::size_t n = 64;
  std::vector<std::uint32_t> out(n * n, 0);
  parallel::parallel_for(0, n, [&](std::size_t i) {
    parallel::parallel_for(0, n, [&](std::size_t j) { out[i * n + j] = 1; });
  });
  for (auto v : out) ASSERT_EQ(v, 1u);
}

TEST(Parallel, BlockedVariantSeesContiguousChunks) {
  std::size_t n = 100'000;
  std::vector<std::uint8_t> hit(n, 0);
  parallel::parallel_for_blocked(0, n, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    for (std::size_t i = b; i < e; ++i) ++hit[i];
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST(Parallel, NumWorkersIsPositiveAndStable) {
  int w = parallel::num_workers();
  EXPECT_GE(w, 1);
  EXPECT_EQ(parallel::num_workers(), w);
}

}  // namespace
