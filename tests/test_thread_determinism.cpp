// Thread-count AND execution-mode determinism (DESIGN.md S7/S11): the
// batch pipeline keys every random draw by data (batch epoch, vertex,
// settle round), never by worker, and the adaptive engine's per-phase
// strategy choice (fused sequential vs work-stealing) never changes
// results -- so for a fixed seed the dynamic matching after EVERY batch,
// plus the work/sample/depth counters, must be bit-identical for
// PARMATCH_NUM_THREADS=1, 2, and hardware concurrency, crossed with
// PARMATCH_EXEC_MODE=adaptive/sequential/parallel and a mid-range pinned
// PARMATCH_CUTOVER (which makes adaptive mode mix both strategies inside
// single batches). The reservation-engine knobs (PARMATCH_SPEC_GRAIN,
// PARMATCH_STEAL_FIXPOINT) each pin their own reference trajectory and the
// whole grid must agree within each setting.
//
// The worker count is frozen at first scheduler use, so one process cannot
// observe two counts: the parent test re-executes this binary (filtered to
// the Child test below) once per (threads, mode) combination and compares
// the per-batch fingerprint lines the children print.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <thread>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "serve/service.h"
#include "shard/sharded_service.h"
#include "util/rng.h"

using namespace parmatch;
using graph::EdgeId;
using graph::kInvalidEdge;

namespace {

struct Scenario {
  const char* name;
  double p_insert;
};

// The ISSUE-mandated coverage: mixed and delete-heavy churn.
const Scenario kScenarios[] = {{"mixed", 0.5}, {"delete_heavy", 0.35}};

gen::Workload scenario_workload(const Scenario& s) {
  return gen::churn(gen::erdos_renyi(700, 2'800, 13), 128, s.p_insert, 31);
}

// Replays a workload, folding the sorted matching after every batch (plus
// the cumulative counters) into one hash line per batch.
void print_fingerprints(const Scenario& s) {
  auto w = scenario_workload(s);
  dyn::Config cfg;
  cfg.seed = 5;
  dyn::DynamicMatcher dm(cfg);
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::size_t step_no = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    std::uint64_t h = 0;
    for (EdgeId e : dm.matching()) h = hash64(h, e);
    h = hash64(h, dm.cumulative_stats().work_units);
    h = hash64(h, dm.cumulative_stats().samples_created);
    h = hash64(h, dm.last_batch_stats().measured_depth);
    std::printf("FP %s %zu %llu\n", s.name, step_no,
                static_cast<unsigned long long>(h));
    ++step_no;
  }
}

// Serving-layer fingerprint: the same stream through MatchService with the
// window partition PINNED (flushes on max_batch only, tail on stop()), so
// the served trajectory must be bit-identical too -- across thread counts,
// exec modes, AND the pipelined/serial drain toggle (PARMATCH_PIPELINE,
// honored via ServiceConfig::from_env in the parent's mode strings).
void print_serve_fingerprint(const Scenario& s) {
  auto w = scenario_workload(s);
  auto stream = gen::flatten(w);
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = 5;
  cfg.max_vertices = 700;
  cfg.record_latencies = false;
  cfg.former.max_batch = 64;
  cfg.former.cost_flush = 1u << 20;    // unreachable: partition is exact
  cfg.former.max_delay_us = 1u << 30;  // consecutive groups of max_batch
  serve::MatchService svc(cfg);
  svc.start();
  constexpr std::uint64_t kNoTicket = ~0ull;
  std::vector<std::uint64_t> ticket(w.master.size(), kNoTicket);
  for (const gen::Update& u : stream) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  }
  svc.stop();
  std::uint64_t h = 0;
  for (EdgeId e : svc.matcher().matching()) h = hash64(h, e);
  for (graph::VertexId v = 0; v < 700; ++v) h = hash64(h, svc.match_of(v));
  h = hash64(h, svc.matched_count());
  h = hash64(h, svc.stats().batches);
  h = hash64(h, svc.stats().applied_inserts);
  h = hash64(h, svc.stats().applied_deletes);
  std::printf("FP serve_%s 0 %llu\n", s.name,
              static_cast<unsigned long long>(h));
}

// Sharded-matcher fingerprint: the shard count comes from PARMATCH_SHARDS
// (shard::Config::from_env), so the SAME child binary covers every S row
// of the grid. Level-3 determinism demands these lines be identical across
// thread counts, exec modes, AND shard counts.
void print_shard_fingerprints(const Scenario& s) {
  auto w = gen::churn(gen::erdos_renyi(500, 2'000, 17), 96, s.p_insert, 23);
  shard::Config cfg = shard::Config::from_env();
  cfg.base.seed = 5;
  shard::ShardedMatcher sm(cfg);
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::size_t step_no = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = sm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      sm.delete_edges(ids);
    }
    std::uint64_t h = 0;
    for (EdgeId e : sm.matching()) h = hash64(h, e);
    h = hash64(h, sm.settle_epochs());
    h = hash64(h, sm.insert_epochs());
    std::printf("FP shard_%s %zu %llu\n", s.name, step_no,
                static_cast<unsigned long long>(h));
    ++step_no;
  }
}

// Sharded SERVICE fingerprint: same pinned window partition as the plain
// serve fingerprint, but through ShardedMatchService -- the full pipeline
// (former/matcher/publisher, admission, journal surface) on top of the
// ownership protocol must serve a bit-identical trajectory at every S.
void print_shard_serve_fingerprint(const Scenario& s) {
  auto w = scenario_workload(s);
  auto stream = gen::flatten(w);
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = 5;
  cfg.max_vertices = 700;
  cfg.record_latencies = false;
  cfg.former.max_batch = 64;
  cfg.former.cost_flush = 1u << 20;
  cfg.former.max_delay_us = 1u << 30;
  shard::ShardedMatchService svc(cfg);
  svc.start();
  constexpr std::uint64_t kNoTicket = ~0ull;
  std::vector<std::uint64_t> ticket(w.master.size(), kNoTicket);
  for (const gen::Update& u : stream) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  }
  svc.stop();
  std::uint64_t h = 0;
  for (EdgeId e : svc.matcher().matching()) h = hash64(h, e);
  for (graph::VertexId v = 0; v < 700; ++v) h = hash64(h, svc.match_of(v));
  h = hash64(h, svc.matched_count());
  h = hash64(h, svc.stats().batches);
  h = hash64(h, svc.stats().applied_inserts);
  h = hash64(h, svc.stats().applied_deletes);
  std::printf("FP shard_serve_%s 0 %llu\n", s.name,
              static_cast<unsigned long long>(h));
}

// Child mode: emits fingerprint lines when spawned by the parent test; a
// plain `ctest` run (env unset) passes through trivially.
// PARMATCH_DET_SHARD=1 selects the sharded rows only, so the (larger)
// plain-matcher knob grid doesn't pay for shard fingerprints and vice
// versa.
TEST(ThreadDeterminism, Child) {
  if (std::getenv("PARMATCH_DET_CHILD") == nullptr) GTEST_SKIP();
  if (std::getenv("PARMATCH_DET_SHARD") != nullptr) {
    for (const Scenario& s : kScenarios) print_shard_fingerprints(s);
    for (const Scenario& s : kScenarios) print_shard_serve_fingerprint(s);
    return;
  }
  for (const Scenario& s : kScenarios) print_fingerprints(s);
  for (const Scenario& s : kScenarios) print_serve_fingerprint(s);
}

// Resolved in the parent: /proc/self/exe inside popen's shell would name
// the shell, not this binary.
std::string self_path() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

// `mode_env` is prepended verbatim: "" for defaults, or e.g.
// "PARMATCH_EXEC_MODE=sequential" / "... PARMATCH_CUTOVER=8".
std::vector<std::string> run_child(int threads, const std::string& mode_env) {
  std::string self = self_path();
  if (self.empty()) return {};
  char cmd[4500];
  std::snprintf(cmd, sizeof(cmd),
                "%s PARMATCH_DET_CHILD=1 PARMATCH_NUM_THREADS=%d "
                "'%s' --gtest_filter=ThreadDeterminism.Child "
                "2>/dev/null",
                mode_env.c_str(), threads, self.c_str());
  FILE* p = popen(cmd, "r");
  if (!p) return {};
  std::vector<std::string> lines;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), p))
    if (std::strncmp(buf, "FP ", 3) == 0) lines.emplace_back(buf);
  pclose(p);
  return lines;
}

TEST(ThreadDeterminism, MatchingIdenticalAcrossThreadCountsAndExecModes) {
  if (std::getenv("PARMATCH_DET_CHILD") != nullptr) GTEST_SKIP();
#ifndef __linux__
  GTEST_SKIP() << "re-exec via /proc/self/exe is linux-only";
#endif
  unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> counts{1, 2};
  if (hw > 2) counts.push_back(static_cast<int>(hw));
  // Every execution policy the engine can take, including an adaptive run
  // with a pinned mid-range cutover so single batches mix the fused and
  // forked strategies phase by phase.
  // The PARMATCH_PIPELINE rows pin the serve-layer drain topology: the
  // serve_* fingerprint lines must agree between the three-stage pipeline
  // (default) and the serial drain, per thread count and exec mode.
  const std::vector<std::string> modes{
      "PARMATCH_EXEC_MODE=adaptive",
      "PARMATCH_EXEC_MODE=sequential",
      "PARMATCH_EXEC_MODE=parallel",
      "PARMATCH_EXEC_MODE=adaptive PARMATCH_CUTOVER=8",
      "PARMATCH_EXEC_MODE=adaptive PARMATCH_PIPELINE=0",
      "PARMATCH_EXEC_MODE=parallel PARMATCH_PIPELINE=0",
  };
  // Reservation-engine knobs (ISSUE 7): each setting defines its OWN
  // trajectory (grain shapes the round-keyed draws; the fixpoint toggle is
  // an algorithm switch), so each gets its own reference, compared across
  // the full threads x exec-mode grid. The env string is prepended verbatim
  // to every child invocation of its grid.
  const std::vector<std::string> knobs{
      "",
      "PARMATCH_SPEC_GRAIN=4",
      "PARMATCH_STEAL_FIXPOINT=0",
  };
  for (const std::string& knob : knobs) {
    auto with_knob = [&](const std::string& mode) {
      return knob.empty() ? mode : knob + " " + mode;
    };
    auto reference = run_child(counts[0], with_knob(modes[0]));
    ASSERT_FALSE(reference.empty())
        << "child produced no fingerprints for knob '" << knob << "'";
    // Both scenarios fingerprint every batch.
    ASSERT_GT(reference.size(), 100u);
    for (int threads : counts) {
      for (const std::string& mode : modes) {
        if (threads == counts[0] && mode == modes[0]) continue;
        auto got = run_child(threads, with_knob(mode));
        ASSERT_EQ(got.size(), reference.size())
            << "threads=" << threads << " " << with_knob(mode);
        for (std::size_t i = 0; i < reference.size(); ++i)
          EXPECT_EQ(got[i], reference[i])
              << "first divergence at line " << i << " for threads=" << threads
              << " " << with_knob(mode);
      }
    }
  }
}

// The ISSUE-15 shard rows: threads x exec modes x PARMATCH_SHARDS in
// {1, 2, 4}. ONE reference trajectory (S=1, one thread, adaptive) -- every
// other cell must match it line for line, which is the level-3 contract:
// the final matching is bit-identical across thread counts AND shard
// counts, and so is the served trajectory for a fixed window partition.
TEST(ThreadDeterminism, ShardCountRowsAgree) {
  if (std::getenv("PARMATCH_DET_CHILD") != nullptr) GTEST_SKIP();
#ifndef __linux__
  GTEST_SKIP() << "re-exec via /proc/self/exe is linux-only";
#endif
  unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> counts{1, 2};
  if (hw > 2) counts.push_back(static_cast<int>(hw));
  const std::vector<std::string> modes{
      "PARMATCH_EXEC_MODE=adaptive",
      "PARMATCH_EXEC_MODE=sequential",
      "PARMATCH_EXEC_MODE=parallel",
  };
  const std::vector<int> shard_counts{1, 2, 4};
  auto cell_env = [](int shards, const std::string& mode) {
    return "PARMATCH_DET_SHARD=1 PARMATCH_SHARDS=" + std::to_string(shards) +
           " " + mode;
  };
  auto reference = run_child(counts[0], cell_env(shard_counts[0], modes[0]));
  ASSERT_FALSE(reference.empty()) << "shard child produced no fingerprints";
  ASSERT_GT(reference.size(), 50u);
  for (int shards : shard_counts) {
    for (int threads : counts) {
      for (const std::string& mode : modes) {
        if (shards == shard_counts[0] && threads == counts[0] &&
            mode == modes[0])
          continue;
        auto got = run_child(threads, cell_env(shards, mode));
        ASSERT_EQ(got.size(), reference.size())
            << "S=" << shards << " threads=" << threads << " " << mode;
        for (std::size_t i = 0; i < reference.size(); ++i)
          EXPECT_EQ(got[i], reference[i])
              << "first divergence at line " << i << " for S=" << shards
              << " threads=" << threads << " " << mode;
      }
    }
  }
}

}  // namespace
