// Substrate primitive tests (DESIGN.md S3): results must match their
// sequential STL references exactly, independent of worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "prims/filter.h"
#include "prims/group_by.h"
#include "prims/permutation.h"
#include "prims/radix_sort.h"
#include "prims/reduce.h"
#include "prims/sort.h"
#include "util/rng.h"

using namespace parmatch;

namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t bound,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

TEST(Prims, ReduceMatchesAccumulate) {
  auto v = random_values(10'000, 1'000, 1);
  auto expect = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  EXPECT_EQ(prims::reduce(std::span<const std::uint64_t>(v)), expect);
  EXPECT_EQ(prims::reduce(std::span<const std::uint64_t>(v.data(), 0)), 0u);
}

TEST(Prims, ScanExclusiveInPlace) {
  auto v = random_values(9'999, 50, 2);
  auto ref = v;
  std::uint64_t run = 0;
  for (auto& x : ref) {
    std::uint64_t next = run + x;
    x = run;
    run = next;
  }
  auto total = prims::scan_exclusive(std::span<std::uint64_t>(v));
  EXPECT_EQ(total, run);
  EXPECT_EQ(v, ref);
}

TEST(Prims, FilterKeepsOrder) {
  auto v = random_values(20'000, 1'000, 3);
  auto pred = [](std::uint64_t x) { return x % 7 == 0; };
  std::vector<std::uint64_t> ref;
  for (auto x : v)
    if (pred(x)) ref.push_back(x);
  EXPECT_EQ(prims::filter(std::span<const std::uint64_t>(v), pred), ref);
}

TEST(Prims, RadixSortMatchesStdSort) {
  auto v = random_values(30'000, ~0ull, 4);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  prims::radix_sort(v, [](std::uint64_t x) { return x; }, 64);
  EXPECT_EQ(v, ref);
}

TEST(Prims, RadixSortIsStableOnLowBits) {
  // Sort pairs by low 8 bits only; equal keys must keep input order.
  struct P {
    std::uint64_t key;
    std::uint32_t tag;
  };
  Rng rng(5);
  std::vector<P> v(5'000);
  for (std::uint32_t i = 0; i < v.size(); ++i)
    v[i] = P{rng.next_below(16), i};
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const P& a, const P& b) { return a.key < b.key; });
  prims::radix_sort(v, [](const P& p) { return p.key; }, 8);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].key, ref[i].key);
    EXPECT_EQ(v[i].tag, ref[i].tag);
  }
}

TEST(Prims, ParallelSortMatchesStdSort) {
  auto v = random_values(50'000, ~0ull, 6);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  prims::parallel_sort(v);
  EXPECT_EQ(v, ref);
}

TEST(Prims, GroupByBucketsEverything) {
  std::size_t n = 20'000;
  auto keys64 = random_values(n, 500, 7);
  std::vector<std::uint32_t> keys(keys64.begin(), keys64.end());
  auto vals = prims::iota<std::uint32_t>(n);
  auto g = prims::group_by(std::span<const std::uint32_t>(keys),
                           std::span<const std::uint32_t>(vals));
  EXPECT_EQ(g.values.size(), n);
  EXPECT_EQ(g.offsets.size(), g.keys.size() + 1);
  EXPECT_TRUE(std::is_sorted(g.keys.begin(), g.keys.end()));
  std::size_t seen = 0;
  for (std::size_t gi = 0; gi < g.num_groups(); ++gi) {
    for (std::uint32_t val : g.group(gi)) {
      EXPECT_EQ(keys[val], g.keys[gi]);  // value landed in its key's bucket
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TEST(Prims, RandomPermutationIsAPermutation) {
  auto p = prims::random_permutation(10'000, 11);
  std::vector<std::uint8_t> seen(p.size(), 0);
  for (auto i : p) {
    ASSERT_LT(i, p.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = 1;
  }
  // Deterministic in the seed, different across seeds.
  EXPECT_EQ(p, prims::random_permutation(10'000, 11));
  EXPECT_NE(p, prims::random_permutation(10'000, 12));
}

}  // namespace
