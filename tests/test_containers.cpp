// Phase-concurrent dictionary tests (DESIGN.md S5): semantics are checked
// against std::unordered_* references through mixed batch/pointwise use.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "containers/flat_hash_map.h"
#include "containers/flat_hash_set.h"
#include "util/rng.h"

using namespace parmatch;

namespace {

TEST(FlatHashSet, PointwiseInsertEraseContains) {
  ct::flat_hash_set<std::uint64_t> s;
  std::unordered_set<std::uint64_t> ref;
  Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    std::uint64_t k = rng.next_below(4'096);
    if (rng.next_below(3) == 0) {
      EXPECT_EQ(s.erase(k), ref.erase(k) > 0);
    } else {
      EXPECT_EQ(s.insert(k), ref.insert(k).second);
    }
    ASSERT_EQ(s.size(), ref.size());
  }
  for (std::uint64_t k = 0; k < 4'096; ++k)
    EXPECT_EQ(s.contains(k), ref.count(k) > 0);
}

TEST(FlatHashSet, BatchInsertEraseElements) {
  Rng rng(2);
  std::vector<std::uint64_t> keys(50'000);
  for (auto& k : keys) k = rng.next();  // effectively distinct
  ct::flat_hash_set<std::uint64_t> s;
  s.batch_insert(keys);
  EXPECT_EQ(s.size(), keys.size());
  for (auto k : keys) ASSERT_TRUE(s.contains(k));

  auto everything = s.elements();
  std::sort(everything.begin(), everything.end());
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(everything, ref);

  std::vector<std::uint64_t> first_half(keys.begin(),
                                        keys.begin() + keys.size() / 2);
  s.batch_erase(first_half);
  EXPECT_EQ(s.size(), keys.size() - first_half.size());
  for (auto k : first_half) ASSERT_FALSE(s.contains(k));
  for (std::size_t i = keys.size() / 2; i < keys.size(); ++i)
    ASSERT_TRUE(s.contains(keys[i]));
}

TEST(FlatHashSet, BatchInsertDeduplicates) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    keys.push_back(i);
    keys.push_back(i);  // duplicate inside the batch
  }
  ct::flat_hash_set<std::uint64_t> s;
  s.batch_insert(keys);
  EXPECT_EQ(s.size(), 1'000u);
  s.batch_insert(keys);  // duplicates against the table
  EXPECT_EQ(s.size(), 1'000u);
}

TEST(FlatHashSet, CopyIsIndependent) {
  ct::flat_hash_set<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 100; ++i) a.insert(i);
  auto b = a;
  b.erase(7);
  EXPECT_TRUE(a.contains(7));
  EXPECT_FALSE(b.contains(7));
}

TEST(FlatHashSet, SurvivesTombstoneChurn) {
  // Insert/erase the same small key set many times: tombstones must not
  // break probing or leak capacity unboundedly.
  ct::flat_hash_set<std::uint64_t> s;
  for (int round = 0; round < 200; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) s.insert(k);
    for (std::uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(s.erase(k));
  }
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(13));
}

TEST(FlatHashMap, InsertFindEraseOverwrite) {
  ct::flat_hash_map<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(3);
  for (int i = 0; i < 30'000; ++i) {
    std::uint64_t k = rng.next_below(2'048), v = rng.next();
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(m.erase(k), ref.erase(k) > 0);
        break;
      default:
        m.insert(k, v);
        ref[k] = v;
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  for (std::uint64_t k = 0; k < 2'048; ++k) {
    auto* p = m.find(k);
    auto it = ref.find(k);
    ASSERT_EQ(p != nullptr, it != ref.end());
    if (p) {
      EXPECT_EQ(*p, it->second);
    }
  }
}

TEST(FlatHashMap, ForEachVisitsEveryEntryOnce) {
  ct::flat_hash_map<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t i = 0; i < 500; ++i) m.insert(i, i * 3);
  std::size_t count = 0;
  std::uint64_t key_sum = 0;
  m.for_each([&](std::uint32_t k, std::uint32_t v) {
    EXPECT_EQ(v, k * 3);
    ++count;
    key_sum += k;
  });
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(key_sum, 499ull * 500 / 2);
}

}  // namespace
