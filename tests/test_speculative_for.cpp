// Deterministic-reservations engine unit tests (prims/speculative_for.h).
// The pinned contract: the engine's final state equals a sequential loop
// over the items in index order -- regardless of thread count, execution
// mode, or prefix granularity -- and rounds/retries/commit order are
// bit-identical across execution modes for a fixed grain. The test names
// carry "SpeculativeFor" so CI's TSan repeat pass picks them up by regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/cost_model.h"
#include "prims/speculative_for.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

using namespace parmatch;
using prims::kEmptySpecSlot;
using prims::SpecStats;
using prims::SpecStatus;

namespace {

// A slot-claiming step: item i wants two slots and commits (owner[w] = i)
// iff it holds both reservations -- the greedy-matching shape distilled to
// its conflict structure. Finalize records commit order.
struct ClaimStep {
  const std::array<std::uint32_t, 2>* wants;
  std::vector<std::uint32_t>* slot;   // reservation cells, kEmptySpecSlot free
  std::vector<std::uint32_t>* owner;  // committed owner, kEmptySpecSlot free
  std::vector<std::uint32_t>* won;    // finalize order (ascending per round)
  bool seq = true;

  void begin_round(std::uint64_t, bool s) { seq = s; }

  SpecStatus reserve(std::size_t i, bool) {
    for (std::uint32_t w : wants[i])
      if ((*owner)[w] != kEmptySpecSlot) return SpecStatus::kDone;
    for (std::uint32_t w : wants[i])
      prims::reserve_slot((*slot)[w], static_cast<std::uint32_t>(i), seq);
    return SpecStatus::kTryCommit;
  }

  bool commit(std::size_t i) {
    auto idx = static_cast<std::uint32_t>(i);
    bool owns = true;
    for (std::uint32_t w : wants[i])
      owns = owns && prims::slot_holds((*slot)[w], idx, seq);
    for (std::uint32_t w : wants[i])
      if (owns || prims::slot_holds((*slot)[w], idx, seq))
        prims::release_slot((*slot)[w], seq);
    if (!owns) return false;
    // Winners hold ALL their slots, so they are slot-disjoint and these
    // writes never race even in a forked commit phase.
    for (std::uint32_t w : wants[i]) (*owner)[w] = idx;
    return true;
  }

  void finalize(std::size_t i) {
    won->push_back(static_cast<std::uint32_t>(i));
  }
};

// The engine's promised semantics, spelled out as the obvious loop.
void sequential_reference(const std::vector<std::array<std::uint32_t, 2>>& w,
                          std::size_t nslots,
                          std::vector<std::uint32_t>* owner,
                          std::vector<std::uint32_t>* won) {
  owner->assign(nslots, kEmptySpecSlot);
  won->clear();
  for (std::size_t i = 0; i < w.size(); ++i) {
    bool free = true;
    for (std::uint32_t s : w[i]) free = free && (*owner)[s] == kEmptySpecSlot;
    if (!free) continue;
    for (std::uint32_t s : w[i]) (*owner)[s] = static_cast<std::uint32_t>(i);
    won->push_back(static_cast<std::uint32_t>(i));
  }
}

struct RunResult {
  std::vector<std::uint32_t> owner, won;
  SpecStats st;

  bool operator==(const RunResult& o) const {
    return owner == o.owner && won == o.won && st.rounds == o.st.rounds &&
           st.retries == o.st.retries && st.committed == o.st.committed;
  }
};

RunResult run_engine(const std::vector<std::array<std::uint32_t, 2>>& wants,
                     std::size_t nslots, std::size_t grain = 0) {
  RunResult r;
  std::vector<std::uint32_t> slot(nslots, kEmptySpecSlot);
  r.owner.assign(nslots, kEmptySpecSlot);
  ClaimStep step{wants.data(), &slot, &r.owner, &r.won};
  ScratchArena arena;
  r.st = prims::speculative_for(step, 0, wants.size(), arena, grain);
  // Every reservation was released by its round's holder.
  for (std::uint32_t s : slot) EXPECT_EQ(s, kEmptySpecSlot);
  return r;
}

std::vector<std::array<std::uint32_t, 2>> random_wants(std::size_t n,
                                                       std::size_t nslots,
                                                       std::uint64_t seed) {
  std::vector<std::array<std::uint32_t, 2>> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto a = static_cast<std::uint32_t>(hash64(seed, 2 * i) % nslots);
    auto b = static_cast<std::uint32_t>(hash64(seed, 2 * i + 1) % nslots);
    if (b == a) b = (a + 1) % static_cast<std::uint32_t>(nslots);
    w[i] = {a, b};
  }
  return w;
}

TEST(SpeculativeFor, EmptyRangeIsANoOp) {
  std::vector<std::array<std::uint32_t, 2>> wants;
  RunResult r = run_engine(wants, 4);
  EXPECT_EQ(r.st.rounds, 0u);
  EXPECT_EQ(r.st.retries, 0u);
  EXPECT_EQ(r.st.committed, 0u);
}

TEST(SpeculativeFor, MatchesSequentialReference) {
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    auto wants = random_wants(500, 120, seed);
    std::vector<std::uint32_t> ref_owner, ref_won;
    sequential_reference(wants, 120, &ref_owner, &ref_won);
    RunResult r = run_engine(wants, 120);
    EXPECT_EQ(r.owner, ref_owner) << "seed " << seed;
    // Finalize order is ascending WITHIN a round (a retried low index may
    // commit after a fresh higher one), so the winner SET is what equals
    // the sequential loop's.
    std::vector<std::uint32_t> won_sorted = r.won;
    std::sort(won_sorted.begin(), won_sorted.end());
    EXPECT_EQ(won_sorted, ref_won) << "seed " << seed;
    EXPECT_EQ(r.st.committed, ref_won.size()) << "seed " << seed;
  }
}

// The strategy switch (fused plain-memory rounds vs forked CAS-min rounds)
// must not change ANY observable: state, commit order, rounds, or retries.
TEST(SpeculativeFor, ExecModesBitIdentical) {
  auto wants = random_wants(2'000, 300, 7);
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(parallel::ExecMode::kSequential);
  RunResult seq = run_engine(wants, 300);
  parallel::set_exec_mode(parallel::ExecMode::kParallel);
  RunResult par = run_engine(wants, 300);
  parallel::set_exec_mode(parallel::ExecMode::kAdaptive);
  RunResult ad = run_engine(wants, 300);
  parallel::set_exec_mode(saved);
  EXPECT_TRUE(seq == par) << "sequential vs parallel diverged";
  EXPECT_TRUE(seq == ad) << "sequential vs adaptive diverged";
  EXPECT_GT(seq.st.retries, 0u) << "conflict graph too easy to mean much";
}

// Adversarial star: every item wants slot 0, so a whole prefix competes for
// one cell every round. Exactly item 0 wins; everyone else must observe the
// committed owner and drop.
TEST(SpeculativeFor, StarConflictSingleWinner) {
  constexpr std::size_t kN = 400;
  std::vector<std::array<std::uint32_t, 2>> wants(kN);
  for (std::size_t i = 0; i < kN; ++i)
    wants[i] = {0u, static_cast<std::uint32_t>(1 + i)};
  std::vector<std::uint32_t> ref_owner, ref_won;
  sequential_reference(wants, kN + 1, &ref_owner, &ref_won);
  ASSERT_EQ(ref_won, std::vector<std::uint32_t>{0u});
  RunResult r = run_engine(wants, kN + 1);
  EXPECT_EQ(r.won, ref_won);
  EXPECT_EQ(r.owner, ref_owner);
  EXPECT_GT(r.st.retries, 0u);
}

// Adversarial chain: item i wants {i, i+1}, so neighbors always conflict in
// a shared prefix. The sequential answer is the even items; losers must
// retry (the winner beside them committed) and then drop.
TEST(SpeculativeFor, ChainConflictEvenItemsWin) {
  constexpr std::size_t kN = 513;
  std::vector<std::array<std::uint32_t, 2>> wants(kN);
  for (std::size_t i = 0; i < kN; ++i)
    wants[i] = {static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(i + 1)};
  std::vector<std::uint32_t> ref_owner, ref_won;
  sequential_reference(wants, kN + 1, &ref_owner, &ref_won);
  RunResult r = run_engine(wants, kN + 1);
  EXPECT_EQ(r.won, ref_won);
  EXPECT_EQ(r.owner, ref_owner);
  for (std::uint32_t i : r.won) EXPECT_EQ(i % 2, 0u);
  EXPECT_EQ(r.won.size(), (kN + 1) / 2);
  EXPECT_GT(r.st.retries, 0u);
}

// The granularity knob changes the round structure, never the answer:
// conflicts resolve by index, so any prefix cap converges to the same
// sequential-equivalent state.
TEST(SpeculativeFor, GrainChangesRoundsNotResult) {
  auto wants = random_wants(1'000, 150, 29);
  std::vector<std::uint32_t> ref_owner, ref_won;
  sequential_reference(wants, 150, &ref_owner, &ref_won);
  std::size_t prev_rounds = 0;
  for (std::size_t grain : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    RunResult r = run_engine(wants, 150, grain);
    EXPECT_EQ(r.owner, ref_owner) << "grain " << grain;
    std::vector<std::uint32_t> won_sorted = r.won;
    std::sort(won_sorted.begin(), won_sorted.end());
    EXPECT_EQ(won_sorted, ref_won) << "grain " << grain;
    EXPECT_GE(r.st.rounds, prev_rounds) << "grain " << grain;
    prev_rounds = r.st.rounds;
  }
  EXPECT_GT(prev_rounds, 1u);  // narrow prefixes really do take more rounds
}

// A step that retries until it reaches the frontier (the steal consumer's
// "blocked until provably blocked" shape): termination and the frontier
// flag itself. Exactly one item retires per round, in index order.
struct FrontierOnlyStep {
  std::vector<std::uint32_t>* done_order;
  void begin_round(std::uint64_t, bool) {}
  SpecStatus reserve(std::size_t i, bool frontier) {
    if (!frontier) return SpecStatus::kRetry;
    done_order->push_back(static_cast<std::uint32_t>(i));
    return SpecStatus::kDone;
  }
  bool commit(std::size_t) { return true; }
  void finalize(std::size_t) {}
};

TEST(SpeculativeFor, FrontierFlagRetiresInIndexOrder) {
  constexpr std::size_t kN = 97;
  std::vector<std::uint32_t> done;
  FrontierOnlyStep step{&done};
  ScratchArena arena;
  SpecStats st = prims::speculative_for(step, 0, kN, arena);
  ASSERT_EQ(done.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(done[i], i);
  EXPECT_EQ(st.rounds, kN);  // one frontier retirement per round
  EXPECT_EQ(st.committed, 0u);
}

// Depth accounting: kSpecRoundPhases * model_depth(prefix) per round,
// identical across execution modes (it is measured structure, not timing).
TEST(SpeculativeFor, DepthChargesPerRound) {
  auto wants = random_wants(300, 80, 5);
  parallel::ExecMode saved = parallel::exec_mode();
  std::array<std::size_t, 2> depths{};
  std::array<parallel::ExecMode, 2> modes{parallel::ExecMode::kSequential,
                                          parallel::ExecMode::kParallel};
  for (std::size_t m = 0; m < 2; ++m) {
    parallel::set_exec_mode(modes[m]);
    std::vector<std::uint32_t> slot(80, kEmptySpecSlot);
    std::vector<std::uint32_t> owner(80, kEmptySpecSlot), won;
    ClaimStep step{wants.data(), &slot, &owner, &won};
    ScratchArena arena;
    SpecStats st = prims::speculative_for(step, 0, wants.size(), arena, 0,
                                          &depths[m]);
    EXPECT_GE(depths[m], st.rounds * prims::kSpecRoundPhases);
  }
  parallel::set_exec_mode(saved);
  EXPECT_EQ(depths[0], depths[1]);
}

// Warm-arena contract: after the first invocation establishes the
// high-water mark, identical re-runs must not grow the arena (the
// heap-level guarantee is pinned by parmatch_alloc_test; this checks the
// engine's own footprint is reset-stable).
TEST(SpeculativeFor, WarmArenaFootprintIsStable) {
  auto wants = random_wants(800, 200, 13);
  ScratchArena arena;
  std::vector<std::uint32_t> won0;
  for (int pass = 0; pass < 3; ++pass) {
    arena.reset();
    std::vector<std::uint32_t> slot(200, kEmptySpecSlot);
    std::vector<std::uint32_t> owner(200, kEmptySpecSlot), won;
    ClaimStep step{wants.data(), &slot, &owner, &won};
    prims::speculative_for(step, 0, wants.size(), arena);
    if (pass == 0)
      won0 = won;
    else
      EXPECT_EQ(won, won0) << "replay diverged on pass " << pass;
  }
  std::size_t high_water = arena.capacity();
  arena.reset();
  std::vector<std::uint32_t> slot(200, kEmptySpecSlot);
  std::vector<std::uint32_t> owner(200, kEmptySpecSlot), won;
  ClaimStep step{wants.data(), &slot, &owner, &won};
  prims::speculative_for(step, 0, wants.size(), arena);
  EXPECT_EQ(arena.capacity(), high_water);
}

// The spec-grain knob plumbing: env-defaulted, programmatically overridable,
// 0 restores the default, and the prefix cap follows
// max(n / grain + 1, kMinSpecPrefix).
TEST(SpeculativeFor, GrainKnobAndPrefixCap) {
  std::size_t saved = prims::spec_grain();
  prims::set_spec_grain(4);
  EXPECT_EQ(prims::spec_grain(), 4u);
  EXPECT_EQ(prims::spec_prefix_cap(100, 0), prims::kMinSpecPrefix);
  EXPECT_EQ(prims::spec_prefix_cap(100, 4), prims::kMinSpecPrefix);
  EXPECT_EQ(prims::spec_prefix_cap(4'000, 4), 1'001u);
  EXPECT_EQ(prims::spec_prefix_cap(4'000, 0),
            4'000 / prims::kDefaultSpecGrain + 1);
  prims::set_spec_grain(0);
  EXPECT_EQ(prims::spec_grain(), prims::kDefaultSpecGrain);
  prims::set_spec_grain(saved);
}

}  // namespace
