// Execution-path equivalence (DESIGN.md S11): the adaptive batch engine
// picks, per phase, between the fused sequential fast path and the
// work-stealing path. The pick is an execution strategy, NOT an algorithm:
// for a fixed seed the structure's entire trajectory -- the matching after
// every batch, the cumulative counters, the per-batch depth counters --
// must be bit-identical under PARMATCH_EXEC_MODE=sequential, =parallel,
// and =adaptive, at every batch size. This suite drives small-batch churn
// (k = 1..64, mixed and delete-heavy) through all three modes via the
// programmatic override (parallel::set_exec_mode) and compares
// everything except CumulativeStats::fused_batches, the one counter that
// intentionally records which strategy ran.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "parallel/cost_model.h"
#include "prims/speculative_for.h"

using namespace parmatch;
using graph::EdgeId;
using graph::kInvalidEdge;

namespace {

// Everything trajectory-visible about one batch.
struct BatchRecord {
  std::vector<EdgeId> matching;
  std::size_t work_units, samples_created, settle_rounds_cum, steal_rounds_cum,
      spec_retries_cum, stolen, bloated;
  std::size_t batch_settle_rounds, batch_steal_rounds, batch_spec_retries,
      max_greedy_rounds, parallel_phases, measured_depth;

  bool operator==(const BatchRecord&) const = default;
};

std::vector<BatchRecord> run_workload(const gen::Workload& w,
                                      parallel::ExecMode mode,
                                      bool light_only = false) {
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(mode);
  dyn::Config cfg;
  cfg.seed = 17;
  cfg.light_only = light_only;
  dyn::DynamicMatcher dm(cfg);
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::vector<BatchRecord> out;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j) live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    const auto& cs = dm.cumulative_stats();
    const auto& bs = dm.last_batch_stats();
    out.push_back(BatchRecord{
        dm.matching(), cs.work_units, cs.samples_created, cs.settle_rounds,
        cs.steal_rounds, cs.spec_retries, cs.stolen, cs.bloated,
        bs.settle_rounds, bs.steal_rounds, bs.spec_retries,
        bs.max_greedy_rounds, bs.parallel_phases, bs.measured_depth});
  }
  parallel::set_exec_mode(saved);
  return out;
}

void expect_identical(const std::vector<BatchRecord>& a,
                      const std::vector<BatchRecord>& b, const char* what,
                      std::size_t k) {
  ASSERT_EQ(a.size(), b.size()) << what << " k=" << k;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(a[i] == b[i]) << what << " diverges at batch " << i
                              << " for k=" << k;
}

struct Scenario {
  const char* name;
  double p_insert;
};

const Scenario kScenarios[] = {{"mixed", 0.5}, {"delete_heavy", 0.35}};

TEST(ExecModes, SmallBatchChurnBitIdenticalAcrossModes) {
  for (const Scenario& s : kScenarios) {
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{5}, std::size_t{8}, std::size_t{16},
                          std::size_t{33}, std::size_t{64}}) {
      auto w = gen::churn(gen::erdos_renyi(400, 1'600, 23), k, s.p_insert,
                          101 + k);
      auto seq = run_workload(w, parallel::ExecMode::kSequential);
      auto par = run_workload(w, parallel::ExecMode::kParallel);
      auto ad = run_workload(w, parallel::ExecMode::kAdaptive);
      expect_identical(seq, par, s.name, k);
      expect_identical(seq, ad, s.name, k);
    }
  }
}

// The light_only ablation exercises different P2/P5 branches (no growth
// tracking, deterministic settle picks); the equivalence must hold there
// too.
TEST(ExecModes, LightOnlyAblationBitIdenticalAcrossModes) {
  auto w = gen::churn(gen::erdos_renyi(300, 1'200, 29), 7, 0.5, 131);
  auto seq = run_workload(w, parallel::ExecMode::kSequential, true);
  auto par = run_workload(w, parallel::ExecMode::kParallel, true);
  auto ad = run_workload(w, parallel::ExecMode::kAdaptive, true);
  expect_identical(seq, par, "light_only", 7);
  expect_identical(seq, ad, "light_only", 7);
}

// The reservation-engine knobs cross the mode equivalence: every
// PARMATCH_SPEC_GRAIN setting and both PARMATCH_STEAL_FIXPOINT settings
// define their OWN deterministic trajectory, and within each setting the
// three execution modes must still agree bit for bit. (Grain changes
// round-keyed draws; the fixpoint toggle changes the steal algorithm -- so
// records are only compared within a knob setting, never across.)
TEST(ExecModes, EngineKnobsPreserveModeEquivalence) {
  std::size_t saved_grain = prims::spec_grain();
  bool saved_fix = dyn::steal_fixpoint();
  auto w = gen::churn(gen::erdos_renyi(350, 1'400, 41), 24, 0.45, 211);
  for (std::size_t grain : {std::size_t{0}, std::size_t{2}, std::size_t{16}}) {
    for (bool fix : {true, false}) {
      prims::set_spec_grain(grain);
      dyn::set_steal_fixpoint(fix);
      auto seq = run_workload(w, parallel::ExecMode::kSequential);
      auto par = run_workload(w, parallel::ExecMode::kParallel);
      auto ad = run_workload(w, parallel::ExecMode::kAdaptive);
      std::string tag = "grain=" + std::to_string(grain) +
                        " fixpoint=" + std::to_string(fix);
      expect_identical(seq, par, tag.c_str(), 24);
      expect_identical(seq, ad, tag.c_str(), 24);
    }
  }
  prims::set_spec_grain(saved_grain);
  dyn::set_steal_fixpoint(saved_fix);
}

// The legacy one-round steal path must be observably different machinery:
// it counts exactly one steal round per non-empty stealer set, while the
// fixed-point engine iterates (and can retry). Matchings may legitimately
// differ -- that is the point of the toggle -- but both must stay maximal
// trajectories with the same insert/delete ledger.
TEST(ExecModes, StealFixpointToggleChangesRoundAccounting) {
  bool saved_fix = dyn::steal_fixpoint();
  auto w = gen::churn(gen::erdos_renyi(350, 1'400, 43), 32, 0.6, 97);
  dyn::set_steal_fixpoint(true);
  auto fix = run_workload(w, parallel::ExecMode::kAdaptive);
  dyn::set_steal_fixpoint(false);
  auto legacy = run_workload(w, parallel::ExecMode::kAdaptive);
  dyn::set_steal_fixpoint(saved_fix);
  ASSERT_EQ(fix.size(), legacy.size());
  // Both paths engaged the steal machinery at least once.
  EXPECT_GT(fix.back().steal_rounds_cum, 0u);
  EXPECT_GT(legacy.back().steal_rounds_cum, 0u);
}

// The fused_batches diagnostic must actually engage: forced-sequential
// counts every non-empty batch, forced-parallel none (on a multi-worker
// pool) -- on a 1-worker pool every phase is inline regardless, so only
// the sequential-mode lower bound is meaningful there.
TEST(ExecModes, FusedDiagnosticReflectsMode) {
  auto w = gen::churn(gen::erdos_renyi(200, 800, 31), 4, 0.5, 7);
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(parallel::ExecMode::kSequential);
  dyn::DynamicMatcher dm;
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::size_t batches = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j) live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    ++batches;
  }
  parallel::set_exec_mode(saved);
  EXPECT_EQ(dm.cumulative_stats().fused_batches, batches);
}

// PARMATCH_EXEC_MODE parsing (the env override the serving deployment
// uses; the cross-process path is exercised by test_thread_determinism).
TEST(ExecModes, EnvParsing) {
  using parallel::ExecMode;
  using parallel::detail::parse_exec_mode;
  EXPECT_EQ(parse_exec_mode(nullptr), ExecMode::kAdaptive);
  EXPECT_EQ(parse_exec_mode("adaptive"), ExecMode::kAdaptive);
  EXPECT_EQ(parse_exec_mode("seq"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("sequential"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("par"), ExecMode::kParallel);
  EXPECT_EQ(parse_exec_mode("parallel"), ExecMode::kParallel);
  EXPECT_EQ(parse_exec_mode("garbage"), ExecMode::kAdaptive);
}

}  // namespace
