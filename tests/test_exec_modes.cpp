// Execution-path equivalence (DESIGN.md S11): the adaptive batch engine
// picks, per phase, between the fused sequential fast path and the
// work-stealing path. The pick is an execution strategy, NOT an algorithm:
// for a fixed seed the structure's entire trajectory -- the matching after
// every batch, the cumulative counters, the per-batch depth counters --
// must be bit-identical under PARMATCH_EXEC_MODE=sequential, =parallel,
// and =adaptive, at every batch size. This suite drives small-batch churn
// (k = 1..64, mixed and delete-heavy) through all three modes via the
// programmatic override (parallel::set_exec_mode) and compares
// everything except CumulativeStats::fused_batches, the one counter that
// intentionally records which strategy ran.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "parallel/cost_model.h"

using namespace parmatch;
using graph::EdgeId;
using graph::kInvalidEdge;

namespace {

// Everything trajectory-visible about one batch.
struct BatchRecord {
  std::vector<EdgeId> matching;
  std::size_t work_units, samples_created, settle_rounds_cum, stolen, bloated;
  std::size_t batch_settle_rounds, max_greedy_rounds, parallel_phases,
      measured_depth;

  bool operator==(const BatchRecord&) const = default;
};

std::vector<BatchRecord> run_workload(const gen::Workload& w,
                                      parallel::ExecMode mode,
                                      bool light_only = false) {
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(mode);
  dyn::Config cfg;
  cfg.seed = 17;
  cfg.light_only = light_only;
  dyn::DynamicMatcher dm(cfg);
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::vector<BatchRecord> out;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j) live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    const auto& cs = dm.cumulative_stats();
    const auto& bs = dm.last_batch_stats();
    out.push_back(BatchRecord{dm.matching(), cs.work_units,
                              cs.samples_created, cs.settle_rounds, cs.stolen,
                              cs.bloated, bs.settle_rounds,
                              bs.max_greedy_rounds, bs.parallel_phases,
                              bs.measured_depth});
  }
  parallel::set_exec_mode(saved);
  return out;
}

void expect_identical(const std::vector<BatchRecord>& a,
                      const std::vector<BatchRecord>& b, const char* what,
                      std::size_t k) {
  ASSERT_EQ(a.size(), b.size()) << what << " k=" << k;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_TRUE(a[i] == b[i]) << what << " diverges at batch " << i
                              << " for k=" << k;
}

struct Scenario {
  const char* name;
  double p_insert;
};

const Scenario kScenarios[] = {{"mixed", 0.5}, {"delete_heavy", 0.35}};

TEST(ExecModes, SmallBatchChurnBitIdenticalAcrossModes) {
  for (const Scenario& s : kScenarios) {
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{5}, std::size_t{8}, std::size_t{16},
                          std::size_t{33}, std::size_t{64}}) {
      auto w = gen::churn(gen::erdos_renyi(400, 1'600, 23), k, s.p_insert,
                          101 + k);
      auto seq = run_workload(w, parallel::ExecMode::kSequential);
      auto par = run_workload(w, parallel::ExecMode::kParallel);
      auto ad = run_workload(w, parallel::ExecMode::kAdaptive);
      expect_identical(seq, par, s.name, k);
      expect_identical(seq, ad, s.name, k);
    }
  }
}

// The light_only ablation exercises different P2/P5 branches (no growth
// tracking, deterministic settle picks); the equivalence must hold there
// too.
TEST(ExecModes, LightOnlyAblationBitIdenticalAcrossModes) {
  auto w = gen::churn(gen::erdos_renyi(300, 1'200, 29), 7, 0.5, 131);
  auto seq = run_workload(w, parallel::ExecMode::kSequential, true);
  auto par = run_workload(w, parallel::ExecMode::kParallel, true);
  auto ad = run_workload(w, parallel::ExecMode::kAdaptive, true);
  expect_identical(seq, par, "light_only", 7);
  expect_identical(seq, ad, "light_only", 7);
}

// The fused_batches diagnostic must actually engage: forced-sequential
// counts every non-empty batch, forced-parallel none (on a multi-worker
// pool) -- on a 1-worker pool every phase is inline regardless, so only
// the sequential-mode lower bound is meaningful there.
TEST(ExecModes, FusedDiagnosticReflectsMode) {
  auto w = gen::churn(gen::erdos_renyi(200, 800, 31), 4, 0.5, 7);
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(parallel::ExecMode::kSequential);
  dyn::DynamicMatcher dm;
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  std::size_t batches = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j) live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    ++batches;
  }
  parallel::set_exec_mode(saved);
  EXPECT_EQ(dm.cumulative_stats().fused_batches, batches);
}

// PARMATCH_EXEC_MODE parsing (the env override the serving deployment
// uses; the cross-process path is exercised by test_thread_determinism).
TEST(ExecModes, EnvParsing) {
  using parallel::ExecMode;
  using parallel::detail::parse_exec_mode;
  EXPECT_EQ(parse_exec_mode(nullptr), ExecMode::kAdaptive);
  EXPECT_EQ(parse_exec_mode("adaptive"), ExecMode::kAdaptive);
  EXPECT_EQ(parse_exec_mode("seq"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("sequential"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("par"), ExecMode::kParallel);
  EXPECT_EQ(parse_exec_mode("parallel"), ExecMode::kParallel);
  EXPECT_EQ(parse_exec_mode("garbage"), ExecMode::kAdaptive);
}

}  // namespace
