// Fault-injection suite (built only with -DPARMATCH_FAULT_INJECT=ON; CI's
// ASan job runs it). The injector forces the overload paths that normal
// traffic on a fast machine never exercises -- spurious ring-full at the
// admission site, a drain stage that stalls -- and these tests assert the
// S13 contract: injected faults may change WHICH requests are shed and how
// batches partition, but every accounting invariant (exact shed
// conservation, completed == submitted, committed == applied) and the
// final-graph invariants must still hold.
//
// The injector reads its env knobs once per MatchService construction, so
// each test sets knobs, builds the service, then clears the knobs before
// asserting -- no re-exec needed between scenarios.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "serve/service.h"

namespace {

using namespace parmatch;
using serve::MatchService;
using serve::ServiceConfig;
using serve::ShedPolicy;

struct EnvKnob {
  const char* name;
  EnvKnob(const char* n, const char* v) : name(n) { setenv(n, v, 1); }
  ~EnvKnob() { unsetenv(name); }
};

void check_conservation(MatchService& svc) {
  std::uint64_t committed_total = 0;
  for (std::size_t l = 0; l < svc.config().admission.lanes; ++l) {
    auto lr = svc.lane_report(l);
    EXPECT_EQ(lr.offered,
              lr.committed + lr.shed_reject + lr.shed_evict + lr.shed_stale)
        << "lane " << l;
    committed_total += lr.committed;
  }
  const serve::ServiceStats& st = svc.stats();
  std::uint64_t applied = st.applied_inserts + st.applied_deletes +
                          st.dropped_deletes + 2 * st.annihilated +
                          st.deduped_deletes;
  EXPECT_EQ(committed_total, applied);
  EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
}

// Spurious ring-full every 3rd admission attempt with reject-new: inserts
// shed even though the ring has space; deletes retry and land. All
// accounting must balance and the structure must stay consistent.
TEST(FaultInject, ForcedRingFullWithRejectNewConserves) {
  ServiceConfig cfg;
  cfg.matcher.seed = 5;
  cfg.max_vertices = 4096;
  cfg.admission.policy = ShedPolicy::kRejectNew;
  EnvKnob knob("PARMATCH_FI_RING_FULL_EVERY", "3");
  MatchService svc(cfg);
  unsetenv("PARMATCH_FI_RING_FULL_EVERY");
  svc.start();

  std::vector<std::uint64_t> tickets;
  std::size_t sheds = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    std::uint64_t t = svc.submit_insert(
        static_cast<graph::VertexId>(2 * i),
        static_cast<graph::VertexId>(2 * i + 1));
    if (t == MatchService::kShedTicket)
      ++sheds;
    else
      tickets.push_back(t);
  }
  EXPECT_GT(sheds, 0u);  // the injector really fired
  svc.drain_until_idle();
  // Deletes share the faulted admission site but must never shed.
  for (std::uint64_t t : tickets) svc.submit_delete(t);
  svc.drain_until_idle();
  svc.stop();

  check_conservation(svc);
  auto lr = svc.lane_report(0);
  EXPECT_EQ(lr.shed_reject, sheds);
  const serve::ServiceStats& st = svc.stats();
  EXPECT_EQ(st.applied_inserts, tickets.size());
  EXPECT_EQ(st.applied_deletes, tickets.size());
  EXPECT_EQ(svc.matched_count(), 0u);  // everything admitted was revoked
}

// Spurious ring-full with the default blocking policy: nothing may shed --
// the producer just retries past the injected full and every request
// lands. (Exercises the backoff path with space actually available.)
TEST(FaultInject, ForcedRingFullWithBlockingPolicyLosesNothing) {
  ServiceConfig cfg;
  cfg.matcher.seed = 9;
  cfg.max_vertices = 4096;
  EnvKnob knob("PARMATCH_FI_RING_FULL_EVERY", "2");
  MatchService svc(cfg);
  unsetenv("PARMATCH_FI_RING_FULL_EVERY");
  svc.start();
  for (std::size_t i = 0; i < 200; ++i)
    ASSERT_NE(svc.submit_insert(static_cast<graph::VertexId>(2 * i),
                                static_cast<graph::VertexId>(2 * i + 1)),
              MatchService::kShedTicket);
  svc.drain_until_idle();
  svc.stop();
  check_conservation(svc);
  EXPECT_EQ(svc.stats().applied_inserts, 200u);
  EXPECT_EQ(svc.admission().total_shed(), 0u);
  EXPECT_EQ(svc.matched_count(), 200u);  // disjoint edges all match
}

// A drain stage that stalls every window: backlog and deadline flushes
// build upstream, batches re-partition, but the applied result is the
// same graph a fault-free run produces.
TEST(FaultInject, DrainStallRepartitionsButStaysConsistent) {
  auto run = [](bool faulty) {
    ServiceConfig cfg;
    cfg.matcher.seed = 13;
    cfg.max_vertices = 4096;
    cfg.former.max_batch = 32;  // many windows, many stall opportunities
    if (faulty) {
      setenv("PARMATCH_FI_STALL_EVERY", "2", 1);
      setenv("PARMATCH_FI_STALL_US", "500", 1);
    }
    MatchService svc(cfg);
    unsetenv("PARMATCH_FI_STALL_EVERY");
    unsetenv("PARMATCH_FI_STALL_US");
    svc.start();
    std::vector<std::uint64_t> tickets;
    for (std::size_t i = 0; i < 400; ++i)
      tickets.push_back(
          svc.submit_insert(static_cast<graph::VertexId>(i % 80),
                            static_cast<graph::VertexId>(80 + i % 160)));
    for (std::size_t i = 0; i < tickets.size(); i += 3)
      svc.submit_delete(tickets[i]);
    svc.drain_until_idle();
    svc.stop();
    check_conservation(svc);
    return svc.matched_count();
  };
  std::size_t faulty = run(true);
  std::size_t clean = run(false);
  // The stall re-partitions the stream into different windows, and the
  // matching the algorithm converges to is partition-dependent -- only the
  // maximality/consistency invariants (checked inside run via
  // check_conservation, plus the matcher's own debug validation) are
  // partition-invariant. Both runs must at least produce a live matching.
  EXPECT_GT(faulty, 0u);
  EXPECT_GT(clean, 0u);
}

}  // namespace
