// EdgeBatch / EdgePool storage tests (DESIGN.md S3): free-list recycling
// and generation tagging are what the dynamic matcher's lazy adjacency
// relies on, so they get their own coverage.
#include <gtest/gtest.h>

#include <vector>

#include "graph/edge_batch.h"
#include "graph/edge_pool.h"

using namespace parmatch;
using graph::EdgeBatch;
using graph::EdgeId;
using graph::EdgePool;
using graph::VertexId;

namespace {

TEST(EdgeBatch, StoresHyperedgesInOrder) {
  EdgeBatch b;
  b.add({1, 2});
  std::vector<VertexId> tri{5, 6, 7};
  b.add(std::span<const VertexId>(tri));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.total_cardinality(), 5u);
  EXPECT_EQ(b.max_rank(), 3u);
  EXPECT_EQ(b.vertex_bound(), 8u);
  ASSERT_EQ(b.edge(0).size(), 2u);
  EXPECT_EQ(b.edge(0)[0], 1u);
  EXPECT_EQ(b.edge(1)[2], 7u);
}

TEST(EdgePool, AddRemoveRecyclesIds) {
  EdgePool pool(2);
  EdgeId a = pool.add_edge(std::vector<VertexId>{0, 1});
  EdgeId b = pool.add_edge(std::vector<VertexId>{2, 3});
  EXPECT_TRUE(pool.live(a));
  EXPECT_EQ(pool.live_count(), 2u);
  EXPECT_EQ(pool.vertex_bound(), 4u);

  pool.remove_edge(a);
  EXPECT_FALSE(pool.live(a));
  EXPECT_EQ(pool.live_count(), 1u);

  EdgeId c = pool.add_edge(std::vector<VertexId>{4, 5});
  EXPECT_EQ(c, a);  // the freed slot is reused...
  EXPECT_EQ(pool.id_bound(), 2u);  // ...so the id space does not grow
  EXPECT_EQ(pool.vertices(c)[0], 4u);
  EXPECT_TRUE(pool.live(b));
}

TEST(EdgePool, GenerationDetectsStaleReferences) {
  EdgePool pool(2);
  EdgeId a = pool.add_edge(std::vector<VertexId>{0, 1});
  auto gen_before = pool.generation(a);
  pool.remove_edge(a);
  EdgeId reused = pool.add_edge(std::vector<VertexId>{2, 3});
  ASSERT_EQ(reused, a);
  EXPECT_NE(pool.generation(a), gen_before);  // stale (id, gen) rejectable
}

TEST(EdgePool, AddEdgesMirrorsBatch) {
  EdgeBatch b;
  for (VertexId i = 0; i < 100; ++i) b.add({i, static_cast<VertexId>(i + 1)});
  EdgePool pool(2);
  auto ids = pool.add_edges(b);
  ASSERT_EQ(ids.size(), 100u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto vs = pool.vertices(ids[i]);
    EXPECT_EQ(vs[0], b.edge(i)[0]);
    EXPECT_EQ(vs[1], b.edge(i)[1]);
  }
}

}  // namespace
