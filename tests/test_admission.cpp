// Overload-protection tests (DESIGN.md S13): the admission layer's shed
// policies and priority lanes (serve/admission.h), the former's
// admit-budget staleness shedding, the bounded latency histogram's
// documented error, the overload state machine, and -- the load-bearing
// invariant -- EXACT shed-accounting conservation: every offered request
// terminates in exactly one of {committed, shed at admission, shed by
// eviction, shed stale}, in both drain topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/batch_former.h"
#include "serve/service.h"
#include "serve/update_queue.h"
#include "util/latency_hist.h"

namespace {

using namespace parmatch;
using serve::AdmissionConfig;
using serve::AdmissionQueue;
using serve::MatchService;
using serve::PushResult;
using serve::ServiceConfig;
using serve::ShedPolicy;
using serve::UpdateRequest;

UpdateRequest insert_req(std::uint64_t ticket, graph::VertexId u,
                         graph::VertexId v, std::uint8_t lane = 0) {
  UpdateRequest r;
  r.ticket = ticket;
  r.rank = 2;
  r.v[0] = u;
  r.v[1] = v;
  r.lane = lane;
  return r;
}

UpdateRequest delete_req(std::uint64_t ticket, std::uint8_t lane = 0) {
  UpdateRequest r;
  r.ticket = ticket;
  r.rank = 0;
  r.lane = lane;
  return r;
}

// ---- push_with_backoff ----------------------------------------------------

TEST(PushWithBackoff, AcceptsWhenSpaceExists) {
  serve::UpdateQueue q(64);
  EXPECT_EQ(serve::push_with_backoff(q, insert_req(1, 0, 1)),
            PushResult::kAccepted);
  UpdateRequest out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.ticket, 1u);
}

TEST(PushWithBackoff, DeadlineTimesOutOnFullRing) {
  serve::UpdateQueue q(64);
  while (q.try_push(insert_req(0, 0, 1))) {
  }
  std::uint64_t deadline = serve::now_ns() + 5'000'000;  // 5 ms
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(serve::push_with_backoff(q, insert_req(1, 2, 3), deadline),
            PushResult::kTimedOut);
  auto waited = std::chrono::steady_clock::now() - t0;
  // Must have honored the deadline (with backoff-sleep slop), not spun
  // forever and not returned instantly.
  EXPECT_LT(waited, std::chrono::milliseconds(1000));
}

TEST(PushWithBackoff, BlocksUntilConsumerFreesSpace) {
  serve::UpdateQueue q(64);
  while (q.try_push(insert_req(0, 0, 1))) {
  }
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    UpdateRequest out;
    ASSERT_TRUE(q.try_pop(out));
  });
  EXPECT_EQ(serve::push_with_backoff(q, insert_req(7, 2, 3)),
            PushResult::kAccepted);
  consumer.join();
}

// ---- latency histogram ----------------------------------------------------

TEST(LatencyHistogram, QuantileWithinDocumentedError) {
  // Log-uniform samples over ~6 decades; the histogram's quantile must be
  // within one bucket width (2^(1/8) ~ 9.05%) of the exact order
  // statistic -- the documented contract the serving stats rely on.
  util::LatencyHistogram h;
  std::vector<double> exact;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    double u = static_cast<double>(x >> 11) * 0x1p-53;
    double v = std::pow(10.0, u * 6.0 - 1.0);  // 0.1us .. 1e5us
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double p : {0.5, 0.9, 0.99}) {
    double want = exact[static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(exact.size()))) - 1];
    double got = h.quantile(p);
    EXPECT_NEAR(got / want, 1.0, 0.0905) << "p=" << p;
  }
  EXPECT_EQ(h.count(), 20000u);
  EXPECT_DOUBLE_EQ(h.min(), exact.front());
  EXPECT_DOUBLE_EQ(h.max(), exact.back());
}

TEST(LatencyHistogram, MergeAndClampAndEmpty) {
  util::LatencyHistogram a, b;
  EXPECT_EQ(a.quantile(0.99), 0.0);
  a.record(10.0);
  b.record(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  // Quantiles clamp into [min, max] of the observed samples.
  EXPECT_GE(a.quantile(0.0), 10.0 * 0.9);
  EXPECT_LE(a.quantile(1.0), 1000.0 * 1.1);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
}

// ---- admission queue: lanes, drain order, policies ------------------------

TEST(AdmissionQueue, RoutesByLaneAndDrainsHighFirst) {
  AdmissionConfig cfg;
  cfg.lanes = 2;
  cfg.drain_weight = 4;  // every 4th pop offers the low lane first
  AdmissionQueue q(cfg, 64);
  // 8 low-lane requests, then 4 high-lane ones.
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(q.admit(insert_req(100 + i, 0, 1, 1)), PushResult::kAccepted);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(q.admit(insert_req(i, 0, 1, 0)), PushResult::kAccepted);

  std::vector<std::uint64_t> order;
  UpdateRequest out;
  while (q.try_pop(out)) order.push_back(out.ticket);
  ASSERT_EQ(order.size(), 12u);
  // High-priority lane drains ahead of the backlog EXCEPT at the weighted
  // slots: pops 0..2 high, pop 3 low-first, then the remaining high.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 100u);  // the weighted low-lane slot
  EXPECT_EQ(order[4], 3u);
  // All high-lane requests landed within the first 5 pops; low lane kept
  // its FIFO order.
  std::vector<std::uint64_t> low(order.begin() + 3, order.end());
  low.erase(std::remove(low.begin(), low.end(), 3u), low.end());
  for (std::size_t i = 0; i < low.size(); ++i)
    EXPECT_EQ(low[i], 100 + i);
}

TEST(AdmissionQueue, RejectNewShedsInsertsNeverDeletes) {
  AdmissionConfig cfg;
  cfg.policy = ShedPolicy::kRejectNew;
  cfg.lanes = 1;
  AdmissionQueue q(cfg, 64);
  std::size_t cap = 0;
  while (q.admit(insert_req(cap, 0, 1)) == PushResult::kAccepted) ++cap;
  EXPECT_EQ(cap, 64u);  // ring capacity, then the first shed
  EXPECT_EQ(q.shed_reject(0), 1u);
  EXPECT_EQ(q.admit(insert_req(999, 2, 3)), PushResult::kShed);
  EXPECT_EQ(q.shed_reject(0), 2u);
  // A delete must block, not shed: free one slot from a helper thread
  // while the delete is waiting.
  std::thread helper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    UpdateRequest out;
    ASSERT_TRUE(q.try_pop(out));
  });
  EXPECT_EQ(q.admit(delete_req(0)), PushResult::kAccepted);
  helper.join();
  EXPECT_EQ(q.shed_reject(0), 2u);  // unchanged: the delete was admitted
  EXPECT_EQ(q.offered(0), cap + 2 + 1);
}

TEST(AdmissionQueue, DropOldestEvictsHeadInsertExactly) {
  AdmissionConfig cfg;
  cfg.policy = ShedPolicy::kDropOldest;
  cfg.lanes = 1;
  AdmissionQueue q(cfg, 64);
  for (std::uint64_t i = 0; i < 64; ++i)
    ASSERT_EQ(q.admit(insert_req(i, 0, 1)), PushResult::kAccepted);
  // The 65th insert grants an eviction credit and blocks until the
  // consumer redeems it.
  std::thread producer(
      [&] { EXPECT_EQ(q.admit(insert_req(64, 2, 3)), PushResult::kAccepted); });
  // Wait for the credit grant BEFORE popping: if the consumer outran the
  // producer and drained the lane first, the (documented, benign) skip
  // path would clear the credit and no eviction would happen -- valid at
  // runtime, but not the path under test here.
  while (q.evict_credit(0) == 0) std::this_thread::yield();
  std::vector<std::uint64_t> survivors;
  std::uint64_t popped = 0, shed = 0;
  // Consume until the producer has landed and the rings are dry.
  for (;;) {
    UpdateRequest out;
    if (q.try_pop(out, &popped, &shed)) {
      survivors.push_back(out.ticket);
      continue;
    }
    if (survivors.size() + shed >= 65) break;
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(shed, 1u);
  EXPECT_EQ(q.shed_evict(0), 1u);
  EXPECT_EQ(popped, 65u);  // every consumed request counted, shed or not
  ASSERT_EQ(survivors.size(), 64u);
  // The OLDEST insert (ticket 0) was the one shed; order preserved after.
  EXPECT_EQ(survivors.front(), 1u);
  EXPECT_EQ(survivors.back(), 64u);
}

// ---- former: admit-budget staleness ---------------------------------------

TEST(BatchFormer, AdmitBudgetShedsStaleInsertsOnly) {
  serve::FormerConfig fc;
  fc.max_batch = 64;
  fc.admit_budget_us = 1000;  // 1 ms
  serve::BatchFormer former(fc);
  std::uint64_t now = 10'000'000'000ull;

  auto stamped = [&](UpdateRequest r, std::uint64_t age_us) {
    r.t_enqueue_ns = now - age_us * 1000;
    return r;
  };
  former.add(stamped(insert_req(1, 0, 1, 0), 5000));   // stale -> shed
  former.add(stamped(insert_req(2, 2, 3, 1), 10));     // fresh -> survives
  former.add(stamped(insert_req(3, 4, 5, 1), 5000));   // stale, but...
  former.add(stamped(delete_req(3, 1), 4000));         // ...annihilates
  former.add(stamped(delete_req(99, 0), 5000));        // prior-window ticket:
                                                       // deletes never stale

  serve::FormedBatch out;
  former.form(out, now);
  EXPECT_EQ(out.raw_requests, 5u);
  EXPECT_EQ(out.shed_stale, 1u);       // only ticket 1's insert
  EXPECT_EQ(out.annihilated, 1u);      // ticket 3: annihilation wins
  EXPECT_EQ(out.inserts.size(), 1u);   // ticket 2 survives
  ASSERT_EQ(out.delete_tickets.size(), 1u);
  EXPECT_EQ(out.delete_tickets[0], 99u);  // flows on despite its age
  EXPECT_EQ(out.lane_stale[0], 1u);
  EXPECT_EQ(out.lane_stale[1], 0u);
  EXPECT_EQ(out.lane_requests[0], 2u);
  EXPECT_EQ(out.lane_requests[1], 3u);
  // Budget disabled (now = 0 or budget 0): nothing is ever stale.
  former.add(stamped(insert_req(9, 6, 7), 5000));
  former.form(out, 0);
  EXPECT_EQ(out.shed_stale, 0u);
  EXPECT_EQ(out.inserts.size(), 1u);
}

// ---- service-level: conservation, shutdown, state machine -----------------

// Fills the (not yet started) service past its ring capacity so reject-new
// sheds deterministically, then starts, drains, and checks that every
// offered request is accounted for exactly once -- in both drain modes,
// with identical accounting.
TEST(Overload, ShedConservationRejectNewPipelineOnOff) {
  constexpr std::size_t kOffered = 300;
  struct Outcome {
    std::uint64_t offered, committed, shed, applied;
  };
  auto run = [&](bool pipeline) {
    ServiceConfig cfg;
    cfg.matcher.seed = 42;
    cfg.max_vertices = 4096;
    cfg.queue_capacity = 64;
    cfg.admission.policy = ShedPolicy::kRejectNew;
    cfg.pipeline = pipeline;
    MatchService svc(cfg);
    std::size_t shed_submits = 0;
    std::vector<std::uint64_t> tickets;
    for (std::size_t i = 0; i < kOffered; ++i) {
      std::uint64_t t = svc.submit_insert(
          static_cast<graph::VertexId>(2 * i),
          static_cast<graph::VertexId>(2 * i + 1));
      if (t == MatchService::kShedTicket)
        ++shed_submits;
      else
        tickets.push_back(t);
    }
    EXPECT_EQ(tickets.size(), 64u);  // exactly the ring capacity landed
    svc.start();
    svc.drain_until_idle();
    // Revoke half of what landed, through the same accounting.
    for (std::size_t i = 0; i < tickets.size(); i += 2)
      svc.submit_delete(tickets[i]);
    svc.drain_until_idle();
    svc.stop();

    auto lr = svc.lane_report(0);
    EXPECT_EQ(lr.offered, lr.committed + lr.shed_reject + lr.shed_evict +
                              lr.shed_stale);
    EXPECT_EQ(lr.shed_reject, shed_submits);
    EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
    const serve::ServiceStats& st = svc.stats();
    std::uint64_t applied = st.applied_inserts + st.applied_deletes +
                            st.dropped_deletes + 2 * st.annihilated +
                            st.deduped_deletes;
    EXPECT_EQ(lr.committed, applied);
    EXPECT_EQ(st.applied_inserts, 64u);
    EXPECT_EQ(st.applied_deletes, 32u);
    return Outcome{lr.offered, lr.committed, lr.shed_reject, applied};
  };
  Outcome on = run(true);
  Outcome off = run(false);
  // Same deterministic pre-start fill -> identical accounting either way.
  EXPECT_EQ(on.offered, off.offered);
  EXPECT_EQ(on.committed, off.committed);
  EXPECT_EQ(on.shed, off.shed);
  EXPECT_EQ(on.applied, off.applied);
}

// Drop-oldest through the full service: overfill pre-start, then let the
// drain redeem the eviction credits. The blocked producer needs the drain
// running, so the overflow submits happen from a helper thread.
TEST(Overload, DropOldestConservationThroughService) {
  ServiceConfig cfg;
  cfg.matcher.seed = 7;
  cfg.max_vertices = 4096;
  cfg.queue_capacity = 64;
  cfg.admission.policy = ShedPolicy::kDropOldest;
  MatchService svc(cfg);
  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_NE(svc.submit_insert(static_cast<graph::VertexId>(2 * i),
                                static_cast<graph::VertexId>(2 * i + 1)),
              MatchService::kShedTicket);
  std::thread overflow([&] {
    for (std::size_t i = 64; i < 96; ++i)
      EXPECT_NE(svc.submit_insert(static_cast<graph::VertexId>(2 * i),
                                  static_cast<graph::VertexId>(2 * i + 1)),
                MatchService::kShedTicket);
  });
  svc.start();
  overflow.join();
  svc.drain_until_idle();
  svc.stop();

  auto lr = svc.lane_report(0);
  EXPECT_EQ(lr.offered, 96u);
  EXPECT_EQ(lr.offered,
            lr.committed + lr.shed_reject + lr.shed_evict + lr.shed_stale);
  EXPECT_EQ(lr.shed_reject, 0u);  // drop-oldest never rejects at the door
  EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
}

TEST(Overload, StaleShedUnderBudgetAndAnnihilationWins) {
  ServiceConfig cfg;
  cfg.matcher.seed = 3;
  cfg.max_vertices = 256;
  cfg.former.admit_budget_us = 1000;  // 1 ms
  cfg.former.max_delay_us = 0;        // flush immediately once started
  MatchService svc(cfg);
  // Backlog ages past the budget before the drain ever runs.
  std::uint64_t t_dead = svc.submit_insert(0, 1);
  std::uint64_t t_pair = svc.submit_insert(2, 3);
  svc.submit_delete(t_pair);  // same-window pair: annihilates, not stale
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.start();
  svc.drain_until_idle();
  // The stale insert's late delete lands on a dead ticket -- dropped.
  svc.submit_delete(t_dead);
  svc.drain_until_idle();
  svc.stop();

  const serve::ServiceStats& st = svc.stats();
  EXPECT_EQ(st.shed_stale, 1u);
  EXPECT_EQ(st.annihilated, 1u);
  EXPECT_EQ(st.applied_inserts, 0u);
  EXPECT_EQ(st.dropped_deletes, 1u);
  EXPECT_EQ(svc.matched_count(), 0u);
  auto lr = svc.lane_report(0);
  EXPECT_EQ(lr.offered,
            lr.committed + lr.shed_reject + lr.shed_evict + lr.shed_stale);
  EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
}

// Priority lanes end-to-end: per-lane accounting matches the per-lane
// submissions, and an insert+delete pair on a non-zero lane works.
TEST(Overload, PriorityLanesAccountPerLane) {
  ServiceConfig cfg;
  cfg.matcher.seed = 11;
  cfg.max_vertices = 4096;
  cfg.admission.lanes = 2;
  MatchService svc(cfg);
  svc.start();
  std::vector<std::uint64_t> lane1;
  for (std::size_t i = 0; i < 40; ++i) {
    std::uint8_t lane = i % 4 == 0 ? 0 : 1;
    std::uint64_t t = svc.submit_insert(
        static_cast<graph::VertexId>(2 * i),
        static_cast<graph::VertexId>(2 * i + 1), lane);
    if (lane == 1) lane1.push_back(t);
  }
  svc.drain_until_idle();
  for (std::uint64_t t : lane1) svc.submit_delete(t, 1);
  svc.drain_until_idle();
  svc.stop();

  auto l0 = svc.lane_report(0);
  auto l1 = svc.lane_report(1);
  EXPECT_EQ(l0.offered, 10u);
  EXPECT_EQ(l1.offered, 30u + 30u);  // inserts + their deletes
  EXPECT_EQ(l0.offered, l0.committed);
  EXPECT_EQ(l1.offered, l1.committed);
  EXPECT_EQ(l0.latency->count() + l1.latency->count(),
            svc.stats().latency.count());
  // Out-of-range lane ids clamp to the lowest-priority lane.
  svc.submit_insert(100, 101, 9);
}

// Shutdown while saturated: many producers hammer a tiny ring with
// shedding active; stop() must terminate cleanly with every submitted
// request accounted for. (Race-stressed: in the TSan 5x repeat list.)
TEST(Overload, StopUnderSaturation) {
  ServiceConfig cfg;
  cfg.matcher.seed = 17;
  cfg.max_vertices = 1u << 16;
  cfg.queue_capacity = 128;
  cfg.admission.policy = ShedPolicy::kRejectNew;
  cfg.record_latencies = false;
  MatchService svc(cfg);
  svc.start();
  constexpr int kProducers = 4;
  constexpr std::size_t kPer = 5000;
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> sheds{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPer; ++i) {
        graph::VertexId base = static_cast<graph::VertexId>(
            (p * kPer + i) * 2);
        std::uint64_t t = svc.submit_insert(base, base + 1);
        if (t == MatchService::kShedTicket) {
          sheds.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (i % 3 == 0) svc.submit_delete(t);
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.stop();  // drains everything still queued; must not hang
  EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
  auto lr = svc.lane_report(0);
  EXPECT_EQ(lr.offered,
            lr.committed + lr.shed_reject + lr.shed_evict + lr.shed_stale);
  EXPECT_EQ(lr.shed_reject, sheds.load());
}

// Deadline flush keeps firing under a sustained trickle backlog: with a
// short max_delay and arrivals far apart, every request still commits
// within a bounded wait instead of waiting for a full window.
TEST(Overload, DeadlineFlushUnderSustainedBacklog) {
  ServiceConfig cfg;
  cfg.matcher.seed = 23;
  cfg.max_vertices = 256;
  cfg.former.max_batch = 1u << 14;  // never fills from this trickle
  cfg.former.max_delay_us = 200;
  cfg.former.cost_flush = 1u << 20;  // cost-model flush disabled
  MatchService svc(cfg);
  svc.start();
  for (int i = 0; i < 8; ++i) {
    svc.submit_insert(static_cast<graph::VertexId>(2 * i),
                      static_cast<graph::VertexId>(2 * i + 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.drain_until_idle();
  svc.stop();
  const serve::ServiceStats& st = svc.stats();
  EXPECT_EQ(st.applied_inserts, 8u);
  // The trickle must have flushed on deadlines (possibly plus one final
  // drain flush), never on window-full.
  EXPECT_GE(st.flush_deadline, 1u);
  EXPECT_EQ(st.flush_full, 0u);
  // Every commit waited at most max_delay + drain slack, far under the
  // 1ms inter-arrival gap times the backlog length.
  EXPECT_GT(st.latency.count(), 0u);
}

// The degradation state machine: healthy -> shedding on a shed event,
// decay back after the hold once the overload clears.
TEST(Overload, StateMachineShedsThenRecovers) {
  ServiceConfig cfg;
  cfg.matcher.seed = 29;
  cfg.max_vertices = 4096;
  cfg.queue_capacity = 64;
  cfg.admission.policy = ShedPolicy::kRejectNew;
  MatchService svc(cfg);
  EXPECT_EQ(svc.overload_state(), serve::OverloadState::kHealthy);
  // Overfill pre-start so sheds deterministically occur at the door.
  for (std::size_t i = 0; i < 128; ++i)
    svc.submit_insert(static_cast<graph::VertexId>(2 * i),
                      static_cast<graph::VertexId>(2 * i + 1));
  svc.start();
  // The drain notices the shed within its first iterations.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (svc.overload_state() != serve::OverloadState::kShedding &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(svc.overload_state(), serve::OverloadState::kShedding);
  svc.drain_until_idle();
  // After the hold expires with no new sheds and an empty queue, the
  // state decays. Keep the drain iterating by submitting a slow trickle.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (svc.overload_state() != serve::OverloadState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    svc.submit_insert(1, 2);
    svc.drain_until_idle();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(svc.overload_state(), serve::OverloadState::kHealthy);
  EXPECT_GE(svc.overload_transitions(), 2u);
  svc.stop();
}

}  // namespace
