// Set-cover-via-matching tests (paper Corollaries 1.4 / 1.5): the cover
// must cover every live element and its size must be within a factor r of
// the matching lower bound, statically and under element churn.
#include <gtest/gtest.h>

#include <vector>

#include "setcover/set_cover.h"
#include "util/rng.h"

using namespace parmatch;
using setcover::ElementBatch;
using setcover::ElementId;
using setcover::SetId;

namespace {

ElementBatch random_system(SetId sets, std::size_t elements, std::size_t r,
                           std::uint64_t seed) {
  Rng rng(seed);
  ElementBatch batch;
  std::vector<SetId> picks;
  for (std::size_t i = 0; i < elements; ++i) {
    std::size_t k = 1 + rng.next_below(r);
    picks.clear();
    while (picks.size() < k) {
      auto s = static_cast<SetId>(rng.next_below(sets));
      bool dup = false;
      for (SetId p : picks) dup = dup || p == s;
      if (!dup) picks.push_back(s);
    }
    batch.add(std::span<const SetId>(picks));
  }
  return batch;
}

void check_cover(const std::vector<SetId>& cover, const ElementBatch& system,
                 const std::vector<bool>& live) {
  std::vector<std::uint8_t> in_cover;
  for (SetId s : cover) {
    if (in_cover.size() <= s) in_cover.resize(s + 1, 0);
    in_cover[s] = 1;
  }
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (!live[i]) continue;
    bool covered = false;
    for (SetId s : system.edge(i))
      covered = covered || (s < in_cover.size() && in_cover[s]);
    ASSERT_TRUE(covered) << "element " << i << " uncovered";
  }
}

TEST(SetCover, StaticCoverIsValidAndRApprox) {
  const std::size_t r = 4;
  auto system = random_system(400, 3'000, r, 3);
  auto res = setcover::static_set_cover(system, r, 13);
  ASSERT_GT(res.matching_size, 0u);
  EXPECT_LE(res.cover.size(), r * res.matching_size);
  std::vector<bool> live(system.size(), true);
  check_cover(res.cover, system, live);
}

TEST(SetCover, DynamicChurnKeepsCoverValid) {
  const std::size_t r = 3;
  auto system = random_system(300, 2'400, r, 7);
  setcover::DynamicSetCover cover(r, 17);
  Rng rng(29);
  std::vector<bool> live(system.size(), false);
  std::vector<std::pair<std::size_t, ElementId>> live_ids;
  std::size_t cursor = 0;
  while (cursor < system.size()) {
    ElementBatch chunk;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < 256 && cursor < system.size(); ++i) {
      chunk.add(system.edge(cursor));
      members.push_back(cursor++);
    }
    auto ids = cover.insert_elements(chunk);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      live[members[j]] = true;
      live_ids.emplace_back(members[j], ids[j]);
    }
    if (live_ids.size() > 1'000) {
      std::vector<ElementId> victims;
      for (int i = 0; i < 400; ++i) {
        std::size_t j = rng.next_below(live_ids.size());
        std::swap(live_ids[j], live_ids.back());
        live[live_ids.back().first] = false;
        victims.push_back(live_ids.back().second);
        live_ids.pop_back();
      }
      cover.delete_elements(victims);
    }
    check_cover(cover.cover(), system, live);
    EXPECT_LE(cover.cover_size(), r * cover.matching_size());
  }
  EXPECT_GT(cover.matching_size(), 0u);
  EXPECT_GT(cover.matcher().cumulative_stats().total_updates(), 0u);
}

}  // namespace
