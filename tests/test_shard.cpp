// tests/test_shard.cpp -- randomized differential harness for the sharded
// matcher (DESIGN.md S15). The same update stream is driven through
// ShardedMatcher arms at S = 1, 2, 4 and through the plain DynamicMatcher;
// at every batch boundary we assert:
//
//   * every sharded arm passes its full internal audit (check_consistent:
//     validity, per-shard matched counts, maximality over live edges),
//   * the sharded arms produce IDENTICAL matchings edge-for-edge -- edge
//     ids are assigned by the coordinator in batch order, so the id lists
//     are comparable across shard counts and the level-3 determinism
//     contract makes them equal, not just equal-sized,
//   * maximality holds against an independently rebuilt taken[] map (not
//     the matcher's own bookkeeping).
//
// Every scenario is seed-threaded: the driving seed is printed in each
// assertion message, and PARMATCH_SHARD_SEED replays a single failing seed
// without recompiling. Suite names ShardSettle / CrossShardVerdict are
// load-bearing -- CI's TSan repeat job selects them by regex.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "shard/shard_map.h"
#include "shard/sharded_matcher.h"

namespace parmatch {
namespace {

constexpr std::uint32_t kArms[] = {1, 2, 4};

shard::ShardedMatcher make_arm(std::uint32_t shards, std::uint64_t seed,
                               std::size_t max_rank = 2) {
  shard::Config c;
  c.base.seed = seed;
  c.base.max_rank = max_rank;
  c.shards = shards;
  return shard::ShardedMatcher(c);
}

// Seeds to sweep; PARMATCH_SHARD_SEED=<n> narrows to one for replay.
std::vector<std::uint64_t> harness_seeds() {
  if (const char* e = std::getenv("PARMATCH_SHARD_SEED"))
    return {std::strtoull(e, nullptr, 10)};
  return {1, 7, 42, 1337};
}

// Independent maximality check: rebuild taken[] from the arm's matching()
// and verify validity (disjointness, liveness) plus that no live edge is
// entirely free. Returns the matching for cross-arm comparison.
std::vector<graph::EdgeId> audit_arm(const shard::ShardedMatcher& m,
                                     std::span<const graph::EdgeId> live,
                                     std::uint64_t seed, int step) {
  auto matched = m.matching();
  std::vector<graph::EdgeId> taken(m.pool().vertex_bound(),
                                   graph::kInvalidEdge);
  for (graph::EdgeId e : matched) {
    EXPECT_TRUE(m.pool().live(e))
        << "dead matched edge " << e << " seed=" << seed << " step=" << step;
    for (graph::VertexId v : m.pool().vertices(e)) {
      EXPECT_EQ(taken[v], graph::kInvalidEdge)
          << "vertex " << v << " in two matched edges, seed=" << seed
          << " step=" << step;
      taken[v] = e;
      EXPECT_EQ(m.match_of(v), e)
          << "match_of disagrees at v=" << v << " seed=" << seed
          << " step=" << step;
    }
  }
  for (graph::EdgeId e : live) {
    bool blocked = false;
    for (graph::VertexId v : m.pool().vertices(e))
      blocked = blocked || taken[v] != graph::kInvalidEdge;
    EXPECT_TRUE(blocked) << "edge " << e << " free in a maximal matching, "
                         << "seed=" << seed << " step=" << step;
  }
  return matched;
}

// Drive one workload through all sharded arms plus the plain matcher,
// checking equality and the audits at every step boundary.
void differential_drive(const gen::Workload& w, std::uint64_t seed,
                        std::size_t max_rank = 2) {
  SCOPED_TRACE("replay with PARMATCH_SHARD_SEED=" + std::to_string(seed));
  std::vector<shard::ShardedMatcher> arms;
  for (std::uint32_t s : kArms) arms.push_back(make_arm(s, seed, max_rank));
  dyn::Config pc;
  pc.seed = seed;
  pc.max_rank = max_rank;
  dyn::DynamicMatcher plain(pc);

  // live_of_master[i]: per-arm edge id of master edge i, or invalid.
  // Ids are identical across arms (coordinator-sequential), so one map
  // plus one for the plain matcher suffices.
  std::vector<graph::EdgeId> live_sharded(w.master.size(),
                                          graph::kInvalidEdge);
  std::vector<graph::EdgeId> live_plain(w.master.size(), graph::kInvalidEdge);

  int step_no = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      std::vector<graph::EdgeId> first_ids;
      for (std::size_t a = 0; a < arms.size(); ++a) {
        auto ids = arms[a].insert_edges(chunk);
        if (a == 0) {
          first_ids.assign(ids.begin(), ids.end());
        } else {
          ASSERT_TRUE(std::equal(ids.begin(), ids.end(), first_ids.begin(),
                                 first_ids.end()))
              << "edge-id assignment diverged across shard counts, seed="
              << seed << " step=" << step_no;
        }
      }
      for (std::size_t j = 0; j < first_ids.size(); ++j)
        live_sharded[step.edges[j]] = first_ids[j];
      auto pids = plain.insert_edges(chunk);
      for (std::size_t j = 0; j < pids.size(); ++j)
        live_plain[step.edges[j]] = pids[j];
    } else {
      std::vector<graph::EdgeId> sids, pids;
      for (std::size_t i : step.edges) {
        sids.push_back(live_sharded[i]);
        pids.push_back(live_plain[i]);
        live_sharded[i] = graph::kInvalidEdge;
        live_plain[i] = graph::kInvalidEdge;
      }
      for (auto& arm : arms) arm.delete_edges(sids);
      plain.delete_edges(pids);
    }

    std::vector<graph::EdgeId> live;
    for (graph::EdgeId e : live_sharded)
      if (e != graph::kInvalidEdge) live.push_back(e);

    std::vector<graph::EdgeId> reference;
    for (std::size_t a = 0; a < arms.size(); ++a) {
      ASSERT_TRUE(arms[a].check_consistent())
          << "audit failed at S=" << kArms[a] << " seed=" << seed
          << " step=" << step_no;
      auto matched = audit_arm(arms[a], live, seed, step_no);
      if (a == 0) {
        reference = std::move(matched);
      } else {
        ASSERT_EQ(matched, reference)
            << "matching diverged: S=" << kArms[a] << " vs S=" << kArms[0]
            << " seed=" << seed << " step=" << step_no;
      }
      ASSERT_EQ(arms[a].settle_epochs(), arms[0].settle_epochs())
          << "settle-epoch count diverged at S=" << kArms[a]
          << " seed=" << seed << " step=" << step_no;
    }

    // The plain matcher is an independent maximality oracle: both
    // matchings are maximal on the same live graph, so the sizes bound
    // each other within the rank factor.
    std::size_t r = std::max<std::size_t>(1, max_rank);
    EXPECT_LE(plain.matched_count(), r * std::max<std::size_t>(
                                             1, arms[0].matched_count()))
        << "seed=" << seed << " step=" << step_no;
    EXPECT_LE(arms[0].matched_count(), r * std::max<std::size_t>(
                                               1, plain.matched_count()))
        << "seed=" << seed << " step=" << step_no;
    ++step_no;
  }
}

TEST(ShardDifferential, MixedChurn) {
  for (std::uint64_t seed : harness_seeds()) {
    auto w = gen::churn(gen::erdos_renyi(400, 1'600, seed), 64, 0.5,
                        seed * 2 + 1);
    differential_drive(w, seed);
  }
}

TEST(ShardDifferential, DeleteHeavyChurn) {
  for (std::uint64_t seed : harness_seeds()) {
    auto w = gen::churn(gen::erdos_renyi(300, 1'200, seed ^ 0x9E37ull), 48,
                        0.35, seed * 3 + 7);
    differential_drive(w, seed);
  }
}

TEST(ShardDifferential, HubChurn) {
  for (std::uint64_t seed : harness_seeds()) {
    auto w = gen::churn(gen::hub_graph(12, 120), 56, 0.45, seed);
    differential_drive(w, seed);
  }
}

TEST(ShardDifferential, HypergraphChurn) {
  for (std::uint64_t seed : harness_seeds()) {
    auto w = gen::churn(gen::random_hypergraph(300, 900, 3, seed), 40, 0.5,
                        seed + 11);
    differential_drive(w, seed, /*max_rank=*/3);
  }
}

// Settle-round behaviour across shard counts under sustained deletion
// pressure: deletes free matched vertices into the pending backlog, and
// the cross-shard settle loop must drain it identically at every S.
// (Name feeds CI's TSan repeat regex.)
TEST(ShardSettle, DeleteBacklogDrainsIdentically) {
  for (std::uint64_t seed : harness_seeds()) {
    auto base = gen::erdos_renyi(250, 1'000, seed + 5);
    auto w = gen::churn(std::move(base), 32, 0.25, seed * 7 + 3);
    differential_drive(w, seed);
  }
}

// Cross-shard verdict shipping: a hub graph pushed through a high shard
// count maximizes foreign-endpoint edges, so nearly every verdict crosses
// the mesh. Checks cross-traffic is actually exercised and conserved.
// (Name feeds CI's TSan repeat regex.)
TEST(CrossShardVerdict, HubTrafficConserved) {
  std::uint64_t seed = harness_seeds().front();
  auto arm = make_arm(4, seed);
  auto w = gen::churn(gen::hub_graph(8, 160), 64, 0.5, seed);
  std::vector<graph::EdgeId> live_of(w.master.size(), graph::kInvalidEdge);
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = arm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live_of[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      for (std::size_t i : step.edges) {
        ids.push_back(live_of[i]);
        live_of[i] = graph::kInvalidEdge;
      }
      arm.delete_edges(ids);
    }
    ASSERT_TRUE(arm.check_consistent()) << "seed=" << seed;
  }
  std::uint64_t sent = 0, recv = 0, cross_sent = 0, cross_recv = 0;
  for (std::uint32_t s = 0; s < arm.shards(); ++s) {
    sent += arm.counters(s).msgs_sent;
    recv += arm.counters(s).msgs_recv;
    cross_sent += arm.counters(s).cross_sent;
    cross_recv += arm.counters(s).cross_recv;
  }
  EXPECT_EQ(sent, recv) << "mesh lost or duplicated messages";
  EXPECT_EQ(cross_sent, cross_recv);
  EXPECT_GT(cross_sent, 0u) << "hub workload produced no cross-shard "
                               "traffic; sharding not exercised";
}

// A cross-shard edge's verdict must land on every foreign endpoint home:
// deliberately route a single path graph through S=4 and spot-check
// match_of agreement vertex by vertex against matching().
TEST(CrossShardVerdict, PathGraphVerdictsLand) {
  auto arm = make_arm(4, 99);
  graph::EdgeBatch b;
  constexpr graph::VertexId n = 64;
  for (graph::VertexId v = 0; v + 1 < n; ++v) {
    graph::VertexId e[2] = {v, v + 1};
    b.add(std::span<const graph::VertexId>(e, 2));
  }
  arm.insert_edges(b);
  ASSERT_TRUE(arm.check_consistent());
  std::size_t cross = 0;
  for (graph::EdgeId e : arm.matching()) {
    auto vs = arm.pool().vertices(e);
    if (shard::crosses_shards(vs, arm.shards())) ++cross;
    for (graph::VertexId v : vs) EXPECT_EQ(arm.match_of(v), e);
  }
  EXPECT_GT(cross, 0u) << "no matched edge crossed shards on a 64-path";
  EXPECT_GE(arm.matched_count(), (n - 1) / 3)  // maximal path matching
      << "path matching implausibly small";
}

// Export/import round-trip at every shard count: the restored matcher must
// fingerprint identically and keep answering deltas identically.
TEST(ShardDifferential, ExportImportRoundTrip) {
  for (std::uint32_t s : kArms) {
    auto arm = make_arm(s, 13);
    auto w = gen::churn(gen::erdos_renyi(200, 800, 13), 64, 0.5, 29);
    std::vector<graph::EdgeId> live_of(w.master.size(), graph::kInvalidEdge);
    std::size_t half = w.steps.size() / 2, at = 0;
    for (const auto& step : w.steps) {
      if (at++ == half) break;
      if (step.is_insert) {
        graph::EdgeBatch chunk;
        for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
        auto ids = arm.insert_edges(chunk);
        for (std::size_t j = 0; j < ids.size(); ++j)
          live_of[step.edges[j]] = ids[j];
      } else {
        std::vector<graph::EdgeId> ids;
        for (std::size_t i : step.edges) {
          ids.push_back(live_of[i]);
          live_of[i] = graph::kInvalidEdge;
        }
        arm.delete_edges(ids);
      }
    }
    std::vector<std::uint64_t> blob;
    arm.export_state(blob);
    auto twin = make_arm(s, 13);
    ASSERT_TRUE(twin.import_state(blob)) << "S=" << s;
    EXPECT_EQ(twin.state_fingerprint(), arm.state_fingerprint()) << "S=" << s;
    EXPECT_EQ(twin.matching(), arm.matching()) << "S=" << s;
    ASSERT_TRUE(twin.check_consistent()) << "S=" << s;
  }
}

}  // namespace
}  // namespace parmatch
