// Workspace reuse (DESIGN.md S7): the batch pipeline recycles every scratch
// buffer (BatchWorkspace vectors + the bump arena) across batches, so any
// read of stale or uninitialized scratch -- an aliasing bug, a missing
// arena reset, a pack that trusts leftover counts -- makes the trajectory
// depend on buffer HISTORY rather than on the input. These tests pin the
// contract: two matcher instances with the same seed fed the same updates
// produce bit-identical matchings and stats at every batch, even though
// their workspaces hold different garbage; and repeating the same
// insert+teardown cycle on one instance (warm workspace) keeps producing
// the stats of the cycle's structure state, not of the leftover buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "util/rng.h"

using namespace parmatch;
using graph::EdgeId;

namespace {

std::uint64_t batch_fingerprint(const dyn::DynamicMatcher& dm) {
  std::uint64_t h = 0;
  for (EdgeId e : dm.matching()) h = hash64(h, e);
  const auto& c = dm.cumulative_stats();
  h = hash64(h, c.work_units);
  h = hash64(h, c.samples_created);
  h = hash64(h, c.settle_rounds);
  h = hash64(h, c.stolen);
  h = hash64(h, c.bloated);
  const auto& b = dm.last_batch_stats();
  h = hash64(h, b.settle_rounds);
  h = hash64(h, b.parallel_phases);
  h = hash64(h, b.measured_depth);
  return h;
}

TEST(Workspace, TwoInstancesReplayIdentically) {
  auto w = gen::churn(gen::erdos_renyi(500, 2'000, 17), 96, 0.5, 23);
  dyn::Config cfg;
  cfg.seed = 9;
  dyn::DynamicMatcher a(cfg), b(cfg);
  std::vector<EdgeId> live_a(w.master.size()), live_b(w.master.size());
  std::size_t step_no = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ia = a.insert_edges(chunk);
      auto ib = b.insert_edges(chunk);
      ASSERT_EQ(ia.size(), ib.size());
      for (std::size_t j = 0; j < ia.size(); ++j) {
        ASSERT_EQ(ia[j], ib[j]) << "id divergence at step " << step_no;
        live_a[step.edges[j]] = ia[j];
        live_b[step.edges[j]] = ib[j];
      }
    } else {
      std::vector<EdgeId> da, db;
      for (std::size_t i : step.edges) {
        da.push_back(live_a[i]);
        db.push_back(live_b[i]);
      }
      a.delete_edges(da);
      b.delete_edges(db);
    }
    ASSERT_EQ(batch_fingerprint(a), batch_fingerprint(b))
        << "trajectory divergence at step " << step_no;
    ++step_no;
  }
}

// Repeated insert+teardown cycles on ONE instance: from the second cycle on
// every workspace buffer is warm (arena at its high-water mark, vectors at
// capacity) while the structure itself returns to empty. A stale-buffer or
// aliasing bug would surface as a wrong matching, a non-empty pool, or a
// returned-id span that disagrees with the batch. (Priorities are keyed by
// the monotone insert epoch, so absolute stats legitimately differ per
// cycle; bit-level reuse determinism is pinned by the replay test above.)
TEST(Workspace, WarmInsertTeardownCyclesStayCoherent) {
  graph::EdgeBatch batch = gen::erdos_renyi(300, 1'200, 31);
  dyn::Config cfg;
  cfg.seed = 4;
  dyn::DynamicMatcher dm(cfg);
  for (int cycle = 0; cycle < 6; ++cycle) {
    auto ids = dm.insert_edges(batch);
    ASSERT_EQ(ids.size(), batch.size()) << "cycle " << cycle;
    // Every returned id must be live and carry the batch's vertex set.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(dm.pool().live(ids[i]));
      auto vs = dm.pool().vertices(ids[i]);
      auto want = batch.edge(i);
      ASSERT_TRUE(std::equal(vs.begin(), vs.end(), want.begin(), want.end()));
    }
    // A maximal matching over a connected-ish ER graph is never empty.
    EXPECT_GT(dm.matched_count(), 0u) << "cycle " << cycle;
    std::vector<EdgeId> del(ids.begin(), ids.end());
    dm.delete_edges(del);
    ASSERT_EQ(dm.pool().live_count(), 0u) << "cycle " << cycle;
    ASSERT_EQ(dm.matched_count(), 0u) << "cycle " << cycle;
  }
}

}  // namespace
