// Service-layer tests (DESIGN.md S12): the open-loop serving front-end
// (serve/update_queue.h, serve/batch_former.h, serve/service.h).
//
// What is asserted, per the serving determinism contract: the batch
// PARTITION the former produces is timing-dependent, so the matching is
// not expected to be bit-identical between a served stream and a serial
// replay. What must hold regardless of timing:
//   * the final live GRAPH equals the serial replay's (every submitted
//     update applied exactly once, conflicts resolved correctly);
//   * the service's matching is valid and maximal on that graph
//     (cross-checked against baseline/recompute.h on the same live set);
//   * the published snapshot equals the matcher's state once idle;
//   * snapshot reads racing applies are safe (the TSan target) and a
//     read_consistent bracket never observes a mid-publish epoch.
// The former's flush policy and conflict-window semantics are pure
// functions of (window, clock), so those are unit-tested exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/recompute.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "parallel/cost_model.h"
#include "serve/batch_former.h"
#include "serve/service.h"
#include "serve/ticket_table.h"
#include "serve/update_queue.h"
#include "util/rng.h"

using namespace parmatch;
using graph::EdgeId;
using graph::VertexId;
using graph::kInvalidEdge;

namespace {

serve::UpdateRequest insert_req(std::uint64_t ticket, VertexId u, VertexId v,
                                std::uint64_t t_ns = 0) {
  serve::UpdateRequest r;
  r.ticket = ticket;
  r.rank = 2;
  r.v[0] = u;
  r.v[1] = v;
  r.t_enqueue_ns = t_ns;
  return r;
}

serve::UpdateRequest delete_req(std::uint64_t ticket, std::uint64_t t_ns = 0) {
  serve::UpdateRequest r;
  r.ticket = ticket;
  r.rank = 0;
  r.t_enqueue_ns = t_ns;
  return r;
}

// ---- UpdateQueue ----------------------------------------------------------

TEST(UpdateQueue, FifoAndBoundedCapacity) {
  serve::UpdateQueue q(64);
  EXPECT_EQ(q.capacity(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i)
    EXPECT_TRUE(q.try_push(insert_req(i, 0, 1)));
  EXPECT_FALSE(q.try_push(insert_req(99, 0, 1)));  // full: backpressure
  serve::UpdateRequest r;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(q.try_pop(r));
    EXPECT_EQ(r.ticket, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop(r));
  // Recycled cells accept a second lap.
  EXPECT_TRUE(q.try_push(delete_req(7)));
  ASSERT_TRUE(q.try_pop(r));
  EXPECT_EQ(r.rank, 0u);
  EXPECT_EQ(r.ticket, 7u);
}

TEST(UpdateQueue, MultiProducerDrainsEveryRequestOnce) {
  serve::UpdateQueue q(1u << 10);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPer = 5000;
  std::vector<std::thread> ps;
  for (int p = 0; p < kProducers; ++p)
    ps.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        serve::UpdateRequest r =
            insert_req(static_cast<std::uint64_t>(p) * kPer + i, 0, 1);
        while (!q.try_push(r)) std::this_thread::yield();
      }
    });
  std::vector<std::uint64_t> seen;
  serve::UpdateRequest r;
  while (seen.size() < kProducers * kPer)
    if (q.try_pop(r)) seen.push_back(r.ticket);
  for (auto& t : ps) t.join();
  std::sort(seen.begin(), seen.end());
  for (std::uint64_t i = 0; i < kProducers * kPer; ++i)
    ASSERT_EQ(seen[i], i);  // every ticket exactly once
}

// ---- SpscRing: pipeline stage handoff ------------------------------------

TEST(SpscRing, FifoBoundedAndRecycles) {
  serve::SpscRing<int> r(4);
  EXPECT_EQ(r.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));  // full: stage backpressure
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);  // FIFO
  }
  EXPECT_FALSE(r.try_pop(v));
  // Several laps through the same slots.
  for (int lap = 0; lap < 10; ++lap) {
    EXPECT_TRUE(r.try_push(lap * 7));
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, lap * 7);
  }
}

TEST(SpscRing, ProducerConsumerThreadsTransferEverything) {
  serve::SpscRing<std::uint64_t> r(8);
  constexpr std::uint64_t kItems = 50'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!r.try_push(i)) std::this_thread::yield();
  });
  std::uint64_t expect = 0, v = 0;
  while (expect < kItems) {
    if (r.try_pop(v)) {
      ASSERT_EQ(v, expect);  // FIFO, nothing lost or duplicated
      ++expect;
    } else {
      std::this_thread::yield();  // 1-core hosts: let the producer run
    }
  }
  producer.join();
}

// ---- TicketTable: bounded ticket recycling -------------------------------

TEST(TicketTable, PutTakeFindSemantics) {
  serve::TicketTable t;
  EXPECT_EQ(t.find(42), kInvalidEdge);
  EXPECT_EQ(t.take(42), kInvalidEdge);  // unknown ticket: dropped
  t.put(42, 7);
  t.put(43, 8);
  EXPECT_EQ(t.find(42), 7u);
  EXPECT_EQ(t.live(), 2u);
  EXPECT_EQ(t.take(42), 7u);
  EXPECT_EQ(t.take(42), kInvalidEdge);  // double-delete: dropped
  EXPECT_EQ(t.find(42), kInvalidEdge);
  EXPECT_EQ(t.find(43), 8u);
  EXPECT_EQ(t.live(), 1u);
}

// Memory tracks the LIVE count, never the stream length: a monotone
// ticket stream with matching deletes cycles inside a bounded capacity,
// and after a mass delete the next put shrinks the table back down.
TEST(TicketTable, CapacityTracksLiveCountNotStreamLength) {
  serve::TicketTable t;
  std::uint64_t next = 0;
  std::size_t hwm = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    std::vector<std::uint64_t> mine;
    for (int i = 0; i < 1000; ++i) {
      t.put(next, static_cast<EdgeId>(i));
      mine.push_back(next++);
    }
    for (std::uint64_t k : mine) ASSERT_NE(t.take(k), kInvalidEdge);
    if (t.capacity() > hwm) hwm = t.capacity();
  }
  // 50k tickets streamed; capacity bounded by the 1000-live working set
  // (4x headroom rounded to a power of two), not by the stream.
  EXPECT_LE(hwm, 8192u);
  EXPECT_EQ(t.live(), 0u);
  // Tombstones from the mass deletes force the NEXT threshold-crossing put
  // to rehash at a live count of ~1, which shrinks the table back toward
  // its floor instead of compounding (keep putting without deleting until
  // a rehash must have fired: capacity ends far below the tombstone-free
  // doubling trajectory of a fresh 50k-key table).
  for (int i = 0; i < 100; ++i) t.put(next++, 1);
  EXPECT_LE(t.capacity(), 8192u);
  EXPECT_EQ(t.live(), 100u);
}

// ---- BatchFormer: flush policy -------------------------------------------

TEST(BatchFormer, EmptyWindowNeverFlushes) {
  serve::FormerConfig cfg;
  cfg.max_delay_us = 1;
  cfg.cost_flush = 1;  // most aggressive criteria possible
  cfg.max_batch = 1;
  serve::BatchFormer f(cfg);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.should_flush(/*now_ns=*/1u << 30));
  serve::FormedBatch out;
  f.form(out);  // form on an empty window is a no-op
  EXPECT_EQ(out.raw_requests, 0u);
  EXPECT_EQ(out.update_count(), 0u);
}

TEST(BatchFormer, DeadlineCountsFromOldestEnqueue) {
  serve::FormerConfig cfg;
  cfg.max_delay_us = 100;                 // 100'000 ns
  cfg.cost_flush = 1u << 20;              // out of reach
  cfg.max_batch = 1u << 20;
  serve::BatchFormer f(cfg);
  f.add(insert_req(0, 1, 2, /*t_ns=*/1'000'000));
  f.add(insert_req(1, 3, 4, /*t_ns=*/1'050'000));
  serve::FlushReason why;
  EXPECT_FALSE(f.should_flush(1'099'999, &why));
  EXPECT_TRUE(f.should_flush(1'100'000, &why));  // oldest hit the deadline
  EXPECT_EQ(why, serve::FlushReason::kDeadline);
}

TEST(BatchFormer, CostModelAndMaxBatchFlush) {
  serve::FormerConfig cfg;
  cfg.max_delay_us = 1u << 30;
  cfg.cost_flush = 3;
  cfg.max_batch = 5;
  serve::BatchFormer f(cfg);
  serve::FlushReason why;
  f.add(insert_req(0, 1, 2));
  f.add(insert_req(1, 3, 4));
  EXPECT_FALSE(f.should_flush(0, &why));
  f.add(insert_req(2, 5, 6));
  EXPECT_TRUE(f.should_flush(0, &why));  // window reached the break-even
  EXPECT_EQ(why, serve::FlushReason::kCostModel);
  f.add(insert_req(3, 7, 8));
  f.add(insert_req(4, 9, 10));
  EXPECT_TRUE(f.window_full());
  EXPECT_TRUE(f.should_flush(0, &why));
  EXPECT_EQ(why, serve::FlushReason::kFull);  // full outranks cost-model
}

// ---- BatchFormer: conflict-window semantics ------------------------------

TEST(BatchFormer, InsertThenDeleteOfSameTicketAnnihilates) {
  serve::FormerConfig cfg;
  serve::BatchFormer f(cfg);
  f.add(insert_req(10, 1, 2, 100));
  f.add(insert_req(11, 3, 4, 110));
  f.add(delete_req(10, 120));  // revokes ticket 10 inside the window
  serve::FormedBatch out;
  f.form(out);
  EXPECT_EQ(out.raw_requests, 3u);
  EXPECT_EQ(out.annihilated, 1u);
  ASSERT_EQ(out.inserts.size(), 1u);  // only ticket 11 survives
  EXPECT_EQ(out.insert_tickets[0], 11u);
  EXPECT_TRUE(out.delete_tickets.empty());
  // Both sides of the pair are stamped for latency accounting.
  EXPECT_EQ(out.absorbed_enqueue_ns.size(), 2u);
  EXPECT_TRUE(f.empty());  // window reset
}

TEST(BatchFormer, DuplicateDeletesCollapseToFirst) {
  serve::FormerConfig cfg;
  serve::BatchFormer f(cfg);
  f.add(delete_req(5, 100));
  f.add(delete_req(5, 200));
  f.add(delete_req(6, 300));
  f.add(delete_req(5, 400));
  serve::FormedBatch out;
  f.form(out);
  EXPECT_EQ(out.raw_requests, 4u);
  EXPECT_EQ(out.deduped, 2u);
  ASSERT_EQ(out.delete_tickets.size(), 2u);
  EXPECT_EQ(out.delete_tickets[0], 5u);
  EXPECT_EQ(out.delete_enqueue_ns[0], 100u);  // first occurrence kept
  EXPECT_EQ(out.delete_tickets[1], 6u);
  EXPECT_EQ(out.absorbed_enqueue_ns.size(), 2u);
}

TEST(BatchFormer, AnnihilationWithDuplicateDeletes) {
  serve::FormerConfig cfg;
  serve::BatchFormer f(cfg);
  f.add(insert_req(10, 1, 2, 100));
  f.add(delete_req(10, 110));
  f.add(delete_req(10, 120));  // double-delete of an annihilated ticket
  serve::FormedBatch out;
  f.form(out);
  EXPECT_EQ(out.annihilated, 1u);
  EXPECT_EQ(out.update_count(), 0u);
  EXPECT_EQ(out.absorbed_enqueue_ns.size(), 3u);  // all three stamped once
}

// Regression (ISSUE 15 satellite): an insert and its delete submitted on
// DIFFERENT priority lanes but landing in the same window must annihilate
// exactly once -- not zero times (delete dropped as unknown-ticket because
// the insert rode another lane) and not twice (both the per-lane and the
// merged path counting the pair). Pinned partition: nothing flushes before
// stop(), so each pair provably shares its window.
TEST(MatchService, CrossLanePairAnnihilatesExactlyOnceInSameWindow) {
  constexpr std::size_t kPairs = 8;
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 3;
  cfg.max_vertices = 256;
  cfg.record_latencies = false;
  cfg.admission.lanes = 4;  // PARMATCH_LANES=4 equivalent
  cfg.former.max_batch = 64;
  cfg.former.cost_flush = 1u << 20;
  cfg.former.max_delay_us = 1u << 30;
  serve::MatchService svc(cfg);
  svc.start();

  // kPairs annihilating cross-lane pairs (insert on lane i%4, delete on
  // lane (i+2)%4) interleaved with kPairs surviving inserts.
  std::vector<std::uint64_t> doomed, kept;
  for (std::size_t i = 0; i < kPairs; ++i) {
    VertexId a = static_cast<VertexId>(4 * i);
    VertexId vs1[2] = {a, static_cast<VertexId>(a + 1)};
    VertexId vs2[2] = {static_cast<VertexId>(a + 2),
                       static_cast<VertexId>(a + 3)};
    std::uint8_t in_lane = static_cast<std::uint8_t>(i % 4);
    std::uint8_t del_lane = static_cast<std::uint8_t>((i + 2) % 4);
    doomed.push_back(
        svc.submit_insert(std::span<const VertexId>(vs1, 2), in_lane));
    kept.push_back(
        svc.submit_insert(std::span<const VertexId>(vs2, 2), in_lane));
    svc.submit_delete(doomed.back(), del_lane);
  }
  svc.stop();  // flushes the single pinned window

  const serve::ServiceStats& st = svc.stats();
  EXPECT_EQ(st.annihilated, kPairs) << "each cross-lane pair exactly once";
  EXPECT_EQ(st.applied_inserts, kPairs);  // only the survivors
  EXPECT_EQ(st.applied_deletes, 0u);
  EXPECT_EQ(st.dropped_deletes, 0u);
  for (std::uint64_t t : doomed)
    EXPECT_EQ(svc.edge_of_ticket(t), kInvalidEdge);
  for (std::uint64_t t : kept) {
    EdgeId e = svc.edge_of_ticket(t);
    ASSERT_NE(e, kInvalidEdge);
    EXPECT_TRUE(svc.matcher().pool().live(e));
  }
  // Lane conservation across the annihilation: every offered request
  // commits on the lane it was submitted on; sheds stay zero.
  std::uint64_t offered = 0, committed = 0;
  for (std::size_t l = 0; l < 4; ++l) {
    auto lr = svc.lane_report(l);
    EXPECT_EQ(lr.offered, lr.committed) << "lane " << l;
    EXPECT_EQ(lr.shed_reject + lr.shed_evict + lr.shed_stale, 0u)
        << "lane " << l;
    offered += lr.offered;
    committed += lr.committed;
  }
  EXPECT_EQ(offered, 3 * kPairs);
  EXPECT_EQ(committed, offered);
}

// ---- MatchService: end-to-end --------------------------------------------

// Replays a flattened churn stream through (a) the service with producers
// and (b) a serial one-update-per-batch DynamicMatcher, then asserts the
// final live graphs are identical and the service matching is valid and
// maximal (recompute cross-check).
struct StreamResult {
  std::multiset<std::pair<VertexId, VertexId>> live_edges;
};

std::pair<VertexId, VertexId> canon(std::span<const VertexId> vs) {
  VertexId a = vs[0], b = vs[1];
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

TEST(MatchService, SingleProducerEqualsSerialStream) {
  constexpr VertexId kN = 512;
  constexpr std::size_t kM = 1536;
  gen::Workload w = gen::churn(gen::erdos_renyi(kN, kM, 77), 1, 0.5, 78);
  auto stream = gen::flatten(w);

  // (a) through the service.
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 9;
  cfg.max_vertices = kN;
  cfg.former.max_delay_us = 50;  // small windows, many flushes
  serve::MatchService svc(cfg);
  svc.start();
  constexpr std::uint64_t kNoTicket = ~0ull;
  std::vector<std::uint64_t> ticket(w.master.size(), kNoTicket);
  for (const gen::Update& u : stream) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  }
  svc.drain_until_idle();
  svc.stop();

  // (b) serial replay: one matcher batch per update.
  dyn::Config mcfg;
  mcfg.seed = 9;
  dyn::DynamicMatcher serial(mcfg);
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  for (const gen::Update& u : stream) {
    if (u.is_insert) {
      graph::EdgeBatch b;
      b.add(w.master.edge(u.edge));
      live[u.edge] = serial.insert_edges(b)[0];
    } else {
      serial.delete_edges({live[u.edge]});
      live[u.edge] = kInvalidEdge;
    }
  }

  // Identical final live graphs (as canonical endpoint multisets). A
  // ticket maps to a live edge iff the serial replay kept it live.
  std::multiset<std::pair<VertexId, VertexId>> served, replayed;
  for (std::size_t i = 0; i < w.master.size(); ++i) {
    EdgeId se = ticket[i] == kNoTicket ? kInvalidEdge
                                       : svc.edge_of_ticket(ticket[i]);
    if (live[i] != kInvalidEdge) {
      ASSERT_NE(se, kInvalidEdge) << "edge " << i << " lost by the service";
      EXPECT_TRUE(svc.matcher().pool().live(se));
      served.insert(canon(svc.matcher().pool().vertices(se)));
      replayed.insert(canon(serial.pool().vertices(live[i])));
    } else {
      // never inserted, or deleted: the ticket must not map to a live edge
      EXPECT_EQ(se, kInvalidEdge);
    }
  }
  EXPECT_EQ(served, replayed);

  // Served matching is valid + maximal on the live graph (recompute
  // cross-check on the identical live set).
  const auto& dm = svc.matcher();
  auto matched = dm.matching();
  std::set<VertexId> taken;
  for (EdgeId e : matched) {
    ASSERT_TRUE(dm.pool().live(e));
    for (VertexId v : dm.pool().vertices(e))
      EXPECT_TRUE(taken.insert(v).second) << "vertex matched twice";
  }
  for (std::size_t i = 0; i < w.master.size(); ++i) {
    if (ticket[i] == kNoTicket) continue;
    EdgeId se = svc.edge_of_ticket(ticket[i]);
    if (se == kInvalidEdge || !dm.pool().live(se)) continue;
    bool blocked = false;
    for (VertexId v : dm.pool().vertices(se))
      blocked = blocked || taken.count(v) != 0;
    EXPECT_TRUE(blocked) << "live edge with all endpoints free: not maximal";
  }
}

TEST(MatchService, MultiProducerIngestionAppliesEveryUpdateOnce) {
  constexpr VertexId kN = 1024;
  constexpr int kProducers = 4;
  constexpr std::size_t kPerProducer = 1500;

  serve::ServiceConfig cfg;
  cfg.matcher.seed = 5;
  cfg.max_vertices = kN;
  serve::MatchService svc(cfg);
  svc.start();

  // Each producer inserts kPerProducer edges in its own vertex stripe and
  // deletes every third one, so the expected final graph is exact.
  std::vector<std::vector<std::uint64_t>> tickets(kProducers);
  std::vector<std::thread> ps;
  for (int p = 0; p < kProducers; ++p)
    ps.emplace_back([&, p] {
      Rng rng(1000 + static_cast<std::uint64_t>(p));
      VertexId base = static_cast<VertexId>(p) * (kN / kProducers);
      VertexId span = kN / kProducers;
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        VertexId u = base + static_cast<VertexId>(rng.next_below(span));
        VertexId v = base + static_cast<VertexId>(rng.next_below(span));
        if (v == u) v = base + ((u - base + 1) % span);
        tickets[p].push_back(svc.submit_insert(u, v));
        if (i % 3 == 2) svc.submit_delete(tickets[p][i - 1]);
      }
    });
  for (auto& t : ps) t.join();
  svc.drain_until_idle();
  svc.stop();

  const serve::ServiceStats& st = svc.stats();
  std::size_t submitted = kProducers * (kPerProducer + kPerProducer / 3);
  EXPECT_EQ(svc.submitted_updates(), submitted);
  EXPECT_EQ(svc.completed_updates(), submitted);
  // Conservation: every insert either lives, was deleted, or annihilated.
  EXPECT_EQ(st.applied_inserts + st.annihilated,
            static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(st.dropped_deletes, 0u);

  // Exact expected live set per producer stripe.
  for (int p = 0; p < kProducers; ++p)
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      bool deleted = i % 3 == 1;  // ticket i deleted by step i+1
      EdgeId e = svc.edge_of_ticket(tickets[p][i]);
      if (deleted) {
        EXPECT_TRUE(e == kInvalidEdge || !svc.matcher().pool().live(e));
      } else {
        ASSERT_NE(e, kInvalidEdge);
        EXPECT_TRUE(svc.matcher().pool().live(e));
      }
    }

  // Snapshot agrees with the matcher once idle.
  const auto& dm = svc.matcher();
  EXPECT_EQ(svc.matched_count(), dm.matched_count());
  for (VertexId v = 0; v < kN; ++v) EXPECT_EQ(svc.match_of(v), dm.match_of(v));

  // Recompute cross-check: maximality on the final live graph.
  baseline::RecomputeMatcher rc(2, 123);
  graph::EdgeBatch liveb;
  for (int p = 0; p < kProducers; ++p)
    for (std::uint64_t t : tickets[p]) {
      EdgeId e = svc.edge_of_ticket(t);
      if (e != kInvalidEdge && dm.pool().live(e)) {
        auto vs = dm.pool().vertices(e);
        liveb.add(vs);
      }
    }
  rc.insert_edges(liveb);
  // Factor-r sandwich on matching sizes (r = 2).
  std::size_t rc_size = rc.matching().size();
  EXPECT_LE(rc_size, 2 * dm.matched_count());
  EXPECT_LE(dm.matched_count(), 2 * rc_size);
}

TEST(MatchService, DeleteInLaterWindowRemovesEdge) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 3;
  cfg.max_vertices = 16;
  serve::MatchService svc(cfg);
  svc.start();
  std::uint64_t t1 = svc.submit_insert(1, 2);
  std::uint64_t t2 = svc.submit_insert(3, 4);
  svc.drain_until_idle();  // window applied: both live
  EXPECT_NE(svc.edge_of_ticket(t1), kInvalidEdge);
  EXPECT_TRUE(svc.is_matched(1));
  EXPECT_TRUE(svc.is_matched(3));
  svc.submit_delete(t1);
  svc.drain_until_idle();
  svc.stop();
  EXPECT_EQ(svc.edge_of_ticket(t1), kInvalidEdge);
  EXPECT_FALSE(svc.is_matched(1));
  EXPECT_FALSE(svc.is_matched(2));
  EXPECT_NE(svc.edge_of_ticket(t2), kInvalidEdge);
  EXPECT_EQ(svc.matched_count(), 1u);
  // Double-delete of a dead ticket is dropped, not applied.
  EXPECT_EQ(svc.stats().dropped_deletes, 0u);
}

// The TSan target: reader threads hammer the snapshot while producers
// submit and the drain thread applies. Asserts only invariants that hold
// at any instant; the synchronization itself is what is under test.
TEST(MatchService, SnapshotReadsRaceApplies) {
  constexpr VertexId kN = 256;
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 11;
  cfg.max_vertices = kN;
  cfg.former.max_delay_us = 20;  // flush often: many publishes
  cfg.record_latencies = false;
  serve::MatchService svc(cfg);
  svc.start();

  std::atomic<bool> go{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&, r] {
      Rng rng(99 + static_cast<std::uint64_t>(r));
      while (go.load(std::memory_order_acquire)) {
        // Single-word reads are always safe.
        VertexId v = static_cast<VertexId>(rng.next_below(kN));
        EdgeId e = svc.match_of(v);
        (void)e;
        // Consistent multi-word read: epoch must be even and stable
        // around the bracket by construction of read_consistent.
        auto pair = svc.read_consistent([&] {
          return std::make_pair(svc.snapshot_epoch(), svc.matched_count());
        });
        EXPECT_EQ(pair.first % 2, 0u);
        EXPECT_LE(pair.second, static_cast<std::size_t>(kN) / 2);
      }
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p)
    producers.emplace_back([&, p] {
      Rng rng(7 + static_cast<std::uint64_t>(p));
      std::vector<std::uint64_t> mine;
      for (int i = 0; i < 4000; ++i) {
        if (mine.empty() || rng.next_below(3) != 0) {
          VertexId u = static_cast<VertexId>(rng.next_below(kN));
          VertexId v = static_cast<VertexId>(rng.next_below(kN));
          if (u == v) v = (v + 1) % kN;
          mine.push_back(svc.submit_insert(u, v));
        } else {
          std::size_t j = rng.next_below(mine.size());
          svc.submit_delete(mine[j]);
          mine[j] = mine.back();
          mine.pop_back();
        }
      }
    });
  for (auto& t : producers) t.join();
  svc.drain_until_idle();
  go.store(false, std::memory_order_release);
  for (auto& t : readers) t.join();
  svc.stop();

  // Settled state: snapshot == matcher.
  for (VertexId v = 0; v < kN; ++v)
    EXPECT_EQ(svc.match_of(v), svc.matcher().match_of(v));
  EXPECT_EQ(svc.matched_count(), svc.matcher().matched_count());
}

// The serve layer carries endpoints inline in ring cells, so it caps the
// matcher rank it will serve at UpdateRequest::kMaxRank regardless of the
// requested config.
TEST(MatchService, MatcherRankCappedToInlineRequestCapacity) {
  serve::ServiceConfig cfg;
  cfg.matcher.max_rank = 8;  // legal for the pool, not servable inline
  cfg.max_vertices = 16;
  serve::MatchService svc(cfg);
  EXPECT_EQ(svc.config().matcher.max_rank, serve::UpdateRequest::kMaxRank);
  svc.start();
  VertexId quad[4] = {0, 1, 2, 3};
  std::uint64_t t = svc.submit_insert(std::span<const VertexId>(quad, 4));
  svc.drain_until_idle();
  svc.stop();
  EXPECT_NE(svc.edge_of_ticket(t), kInvalidEdge);
  EXPECT_EQ(svc.matcher().pool().vertices(svc.edge_of_ticket(t)).size(), 4u);
}

// An idle service parks its drain thread; a submit must wake it (a lost
// wakeup would stall this test until its timed-wait backstop, a hang
// would fail the suite timeout).
TEST(MatchService, WakesFromIdleParkOnSubmit) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 4;
  cfg.max_vertices = 8;
  serve::MatchService svc(cfg);
  svc.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it park
  std::uint64_t t = svc.submit_insert(0, 1);
  svc.drain_until_idle();
  EXPECT_NE(svc.edge_of_ticket(t), kInvalidEdge);
  EXPECT_TRUE(svc.is_matched(0));
  svc.stop();
}

// reset_stats and drain-on-stop: stop() must flush a below-threshold
// window rather than dropping it.
TEST(MatchService, StopFlushesPendingWindow) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 2;
  cfg.max_vertices = 8;
  cfg.former.max_delay_us = 1u << 30;  // deadline unreachable
  cfg.former.cost_flush = 1u << 20;    // cost flush unreachable
  serve::MatchService svc(cfg);
  svc.start();
  std::uint64_t t = svc.submit_insert(0, 1);
  svc.stop();  // must drain the window
  EXPECT_NE(svc.edge_of_ticket(t), kInvalidEdge);
  EXPECT_EQ(svc.matched_count(), 1u);
  EXPECT_EQ(svc.stats().flush_drain, 1u);
}

// ---- pipelined drain vs serial drain -------------------------------------

// With flushes pinned to the max-batch criterion alone (cost and deadline
// unreachable) the window PARTITION of a single-producer stream is exactly
// consecutive groups of `window` requests in submit order -- independent
// of drain timing. Under a fixed partition the pipelined and serial drains
// must be BIT-identical: same matching (as edge ids), same snapshot, same
// deterministic counters. stop() flushes the partial tail window.
struct DrainResult {
  std::vector<EdgeId> matching;
  std::vector<EdgeId> snapshot;       // match_of per vertex
  std::size_t matched_count = 0;
  std::vector<std::uint8_t> ticket_live;  // per master edge
  std::size_t batches = 0;
  std::size_t applied_inserts = 0;
  std::size_t applied_deletes = 0;
  std::size_t annihilated = 0;
  std::size_t deduped = 0;
  std::size_t dropped = 0;
};

DrainResult run_fixed_partition(bool pipeline, const gen::Workload& w,
                                const std::vector<gen::Update>& stream,
                                VertexId n_vertices, std::size_t window) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 21;
  cfg.max_vertices = n_vertices;
  cfg.pipeline = pipeline;
  cfg.record_latencies = false;
  cfg.former.max_batch = window;
  cfg.former.cost_flush = 1u << 20;    // unreachable
  cfg.former.max_delay_us = 1u << 30;  // unreachable
  serve::MatchService svc(cfg);
  svc.start();
  constexpr std::uint64_t kNoTicket = ~0ull;
  std::vector<std::uint64_t> ticket(w.master.size(), kNoTicket);
  for (const gen::Update& u : stream) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  }
  svc.stop();  // drains + flushes the tail window through every stage

  DrainResult r;
  r.matching = svc.matcher().matching();
  r.matched_count = svc.matched_count();
  r.snapshot.reserve(n_vertices);
  for (VertexId v = 0; v < n_vertices; ++v)
    r.snapshot.push_back(svc.match_of(v));
  r.ticket_live.reserve(w.master.size());
  for (std::size_t i = 0; i < w.master.size(); ++i) {
    EdgeId e = ticket[i] == kNoTicket ? kInvalidEdge
                                      : svc.edge_of_ticket(ticket[i]);
    r.ticket_live.push_back(e != kInvalidEdge &&
                            svc.matcher().pool().live(e));
  }
  const serve::ServiceStats& st = svc.stats();
  r.batches = st.batches;
  r.applied_inserts = st.applied_inserts;
  r.applied_deletes = st.applied_deletes;
  r.annihilated = st.annihilated;
  r.deduped = st.deduped_deletes;
  r.dropped = st.dropped_deletes;
  return r;
}

void expect_bit_identical(const DrainResult& a, const DrainResult& b,
                          const char* label) {
  EXPECT_EQ(a.matching, b.matching) << label;
  EXPECT_EQ(a.snapshot, b.snapshot) << label;
  EXPECT_EQ(a.matched_count, b.matched_count) << label;
  EXPECT_EQ(a.ticket_live, b.ticket_live) << label;
  EXPECT_EQ(a.batches, b.batches) << label;
  EXPECT_EQ(a.applied_inserts, b.applied_inserts) << label;
  EXPECT_EQ(a.applied_deletes, b.applied_deletes) << label;
  EXPECT_EQ(a.annihilated, b.annihilated) << label;
  EXPECT_EQ(a.deduped, b.deduped) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
}

TEST(MatchService, PipelinedDrainBitIdenticalToSerialMixedChurn) {
  constexpr VertexId kN = 512;
  gen::Workload w = gen::churn(gen::erdos_renyi(kN, 1536, 77), 96, 0.5, 79);
  auto stream = gen::flatten(w);
  DrainResult serial = run_fixed_partition(false, w, stream, kN, 64);
  DrainResult piped = run_fixed_partition(true, w, stream, kN, 64);
  EXPECT_GT(serial.batches, 10u);  // the partition really is multi-window
  expect_bit_identical(serial, piped, "mixed churn, window 64");
  // A different pinned partition must also agree with itself.
  DrainResult serial7 = run_fixed_partition(false, w, stream, kN, 7);
  DrainResult piped7 = run_fixed_partition(true, w, stream, kN, 7);
  expect_bit_identical(serial7, piped7, "mixed churn, window 7");
}

TEST(MatchService, PipelinedDrainBitIdenticalToSerialDeleteHeavy) {
  constexpr VertexId kN = 400;
  // p_insert 0.25: windows dominated by deletes, including same-window
  // insert+delete annihilations and unmatch/rematch cascades.
  gen::Workload w = gen::churn(gen::erdos_renyi(kN, 1200, 13), 80, 0.25, 31);
  auto stream = gen::flatten(w);
  DrainResult serial = run_fixed_partition(false, w, stream, kN, 48);
  DrainResult piped = run_fixed_partition(true, w, stream, kN, 48);
  expect_bit_identical(serial, piped, "delete-heavy churn");
}

// The determinism contract must also hold across exec modes: forced
// sequential, forced parallel, and adaptive phases all produce the same
// trajectory (DESIGN.md S2), pipelined or not.
TEST(MatchService, PipelinedDrainBitIdenticalAcrossExecModes) {
  constexpr VertexId kN = 384;
  gen::Workload w = gen::churn(gen::erdos_renyi(kN, 1100, 5), 64, 0.5, 17);
  auto stream = gen::flatten(w);
  parallel::ExecMode saved = parallel::exec_mode();
  parallel::set_exec_mode(parallel::ExecMode::kSequential);
  DrainResult serial_seq = run_fixed_partition(false, w, stream, kN, 32);
  DrainResult piped_seq = run_fixed_partition(true, w, stream, kN, 32);
  parallel::set_exec_mode(parallel::ExecMode::kParallel);
  DrainResult serial_par = run_fixed_partition(false, w, stream, kN, 32);
  DrainResult piped_par = run_fixed_partition(true, w, stream, kN, 32);
  parallel::set_exec_mode(saved);
  expect_bit_identical(serial_seq, piped_seq, "seq mode");
  expect_bit_identical(serial_seq, serial_par, "serial across modes");
  expect_bit_identical(serial_seq, piped_par, "pipelined par mode");
}

// ---- pipeline-specific races and bounds ----------------------------------

// The pipeline TSan target: reader threads hammer the snapshot while the
// PUBLISHER stage (a different thread from the matcher stage) runs the
// epoch seqlock concurrently with the matcher applying the next window.
// Aggressive deadline so publishes are frequent; asserts only instants
// that must hold under any interleaving.
TEST(MatchService, SnapshotReadsRaceAsyncPublish) {
  constexpr VertexId kN = 256;
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 31;
  cfg.max_vertices = kN;
  cfg.pipeline = true;
  cfg.former.max_delay_us = 10;  // flush constantly: many async publishes
  cfg.former.max_batch = 64;     // small windows: stages stay busy together
  cfg.record_latencies = false;
  serve::MatchService svc(cfg);
  svc.start();

  std::atomic<bool> go{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&, r] {
      Rng rng(123 + static_cast<std::uint64_t>(r));
      while (go.load(std::memory_order_acquire)) {
        VertexId v = static_cast<VertexId>(rng.next_below(kN));
        (void)svc.match_of(v);
        auto pair = svc.read_consistent([&] {
          return std::make_pair(svc.snapshot_epoch(), svc.matched_count());
        });
        EXPECT_EQ(pair.first % 2, 0u);
        EXPECT_LE(pair.second, static_cast<std::size_t>(kN) / 2);
      }
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p)
    producers.emplace_back([&, p] {
      Rng rng(17 + static_cast<std::uint64_t>(p));
      std::vector<std::uint64_t> mine;
      for (int i = 0; i < 4000; ++i) {
        if (mine.empty() || rng.next_below(3) != 0) {
          VertexId u = static_cast<VertexId>(rng.next_below(kN));
          VertexId v = static_cast<VertexId>(rng.next_below(kN));
          if (u == v) v = (v + 1) % kN;
          mine.push_back(svc.submit_insert(u, v));
        } else {
          std::size_t j = rng.next_below(mine.size());
          svc.submit_delete(mine[j]);
          mine[j] = mine.back();
          mine.pop_back();
        }
      }
    });
  for (auto& t : producers) t.join();
  svc.drain_until_idle();
  go.store(false, std::memory_order_release);
  for (auto& t : readers) t.join();
  svc.stop();

  // Settled state: snapshot == matcher, every update accounted for.
  for (VertexId v = 0; v < kN; ++v)
    EXPECT_EQ(svc.match_of(v), svc.matcher().match_of(v));
  EXPECT_EQ(svc.matched_count(), svc.matcher().matched_count());
  EXPECT_EQ(svc.completed_updates(), svc.submitted_updates());
}

// The long-lived-service recycling bound (ROADMAP ticket): repeated
// insert/delete epochs must cycle inside a bounded ticket-table capacity
// -- memory tracks the live working set, never the 60k-ticket stream.
// (Asserting table capacity rather than raw RSS: it is the structure that
// grew with the stream before, and capacity is deterministic where RSS is
// allocator- and platform-noise.)
TEST(MatchService, LongLivedServiceRecyclesTicketsBounded) {
  constexpr VertexId kN = 256;
  serve::ServiceConfig cfg;
  cfg.matcher.seed = 8;
  cfg.max_vertices = kN;
  cfg.record_latencies = false;  // the other stream-growth structure: off
  serve::MatchService svc(cfg);
  svc.start();

  Rng rng(4242);
  std::size_t cap_hwm = 0;
  constexpr int kEpochs = 30;
  constexpr int kPerEpoch = 1000;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<std::uint64_t> mine;
    mine.reserve(kPerEpoch);
    for (int i = 0; i < kPerEpoch; ++i) {
      VertexId u = static_cast<VertexId>(rng.next_below(kN));
      VertexId v = static_cast<VertexId>(rng.next_below(kN));
      if (u == v) v = (v + 1) % kN;
      mine.push_back(svc.submit_insert(u, v));
    }
    for (std::uint64_t t : mine) svc.submit_delete(t);
    svc.drain_until_idle();  // idle + quiesced: table reads are safe
    if (svc.ticket_table().capacity() > cap_hwm)
      cap_hwm = svc.ticket_table().capacity();
  }
  svc.stop();

  EXPECT_EQ(svc.ticket_table().live(), 0u);  // every epoch fully revoked
  // Working set <= kPerEpoch live tickets; 30'000 tickets streamed. The
  // bound is the working set's (4x headroom, power of two, plus one
  // tombstone-deferred crossing) -- an order of magnitude under the
  // stream-proportional dense table this replaced.
  EXPECT_LE(cap_hwm, 8192u);
  EXPECT_EQ(svc.completed_updates(),
            static_cast<std::uint64_t>(kEpochs) * kPerEpoch * 2);
  EXPECT_EQ(svc.stats().dropped_deletes, 0u);
}

}  // namespace
