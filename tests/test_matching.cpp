// Static matcher tests (paper Lemma 1.3 / Theorem 3.2): the parallel
// local-minima rounds must compute exactly the sequential greedy matching
// for the same samples, be maximal, and fill the eliminator contract.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "matching/sequential_greedy.h"

using namespace parmatch;
using graph::EdgeId;
using graph::kInvalidEdge;
using graph::VertexId;

namespace {

struct Instance {
  graph::EdgePool pool;
  std::vector<EdgeId> ids;
};

Instance graph_instance(std::size_t m, std::uint64_t seed) {
  Instance inst{graph::EdgePool(2), {}};
  inst.ids = inst.pool.add_edges(
      gen::erdos_renyi(static_cast<VertexId>(m / 3 + 2), m, seed));
  return inst;
}

Instance hyper_instance(std::size_t m, std::size_t r, std::uint64_t seed) {
  Instance inst{graph::EdgePool(r), {}};
  inst.ids = inst.pool.add_edges(gen::random_hypergraph(
      static_cast<VertexId>(m / 2 + r + 1), m, r, seed));
  return inst;
}

void check_valid_and_maximal(const graph::EdgePool& pool,
                             const std::vector<EdgeId>& ids,
                             const matching::MatchResult& r) {
  std::vector<EdgeId> taken(pool.vertex_bound(), kInvalidEdge);
  for (EdgeId e : r.matched)
    for (VertexId v : pool.vertices(e)) {
      ASSERT_EQ(taken[v], kInvalidEdge) << "vertex matched twice";
      taken[v] = e;
    }
  for (EdgeId e : ids) {
    bool blocked = false;
    for (VertexId v : pool.vertices(e)) blocked = blocked || taken[v] != kInvalidEdge;
    EXPECT_TRUE(blocked) << "edge " << e << " violates maximality";
  }
}

void check_eliminators(const graph::EdgePool& pool,
                       const std::vector<EdgeId>& ids,
                       const matching::MatchResult& r) {
  std::vector<std::uint8_t> is_matched(pool.id_bound(), 0);
  for (EdgeId e : r.matched) is_matched[e] = 1;
  for (EdgeId e : ids) {
    EdgeId d = r.eliminator[e];
    ASSERT_NE(d, kInvalidEdge);
    if (is_matched[e]) {
      EXPECT_EQ(d, e);  // matched edges eliminate themselves
      continue;
    }
    EXPECT_TRUE(is_matched[d]);
    EXPECT_LT(r.samples[d], r.samples[e]);  // eliminator came first
    bool shares = false;  // and shares a vertex
    for (VertexId u : pool.vertices(e))
      for (VertexId v : pool.vertices(d)) shares = shares || u == v;
    EXPECT_TRUE(shares);
  }
}

TEST(StaticMatching, ParallelEqualsSequentialOnGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto inst = graph_instance(4'000, seed);
    auto par = matching::parallel_greedy_match(inst.pool, inst.ids, 100 + seed);
    auto seq = matching::sequential_greedy_match(inst.pool, inst.ids, 100 + seed);
    EXPECT_EQ(par.matched, seq.matched);
    EXPECT_EQ(par.eliminator, seq.eliminator);
  }
}

TEST(StaticMatching, ParallelEqualsSequentialOnHypergraphs) {
  for (std::size_t r : {3ul, 5ul}) {
    auto inst = hyper_instance(2'000, r, 7 * r);
    auto par = matching::parallel_greedy_match(inst.pool, inst.ids, r);
    auto seq = matching::sequential_greedy_match(inst.pool, inst.ids, r);
    EXPECT_EQ(par.matched, seq.matched);
  }
}

TEST(StaticMatching, MaximalAndValid) {
  auto inst = graph_instance(6'000, 9);
  auto r = matching::parallel_greedy_match(inst.pool, inst.ids, 42);
  EXPECT_GT(r.matched.size(), 0u);
  EXPECT_GE(r.rounds, 1u);
  check_valid_and_maximal(inst.pool, inst.ids, r);
  check_eliminators(inst.pool, inst.ids, r);
}

TEST(StaticMatching, HypergraphMaximalAndValid) {
  auto inst = hyper_instance(3'000, 4, 13);
  auto r = matching::parallel_greedy_match(inst.pool, inst.ids, 5);
  check_valid_and_maximal(inst.pool, inst.ids, r);
  check_eliminators(inst.pool, inst.ids, r);
}

TEST(StaticMatching, DifferentSeedsDifferentMatchings) {
  auto inst = graph_instance(4'000, 21);
  auto a = matching::parallel_greedy_match(inst.pool, inst.ids, 1);
  auto b = matching::parallel_greedy_match(inst.pool, inst.ids, 2);
  EXPECT_NE(a.matched, b.matched);  // astronomically unlikely to collide
  // Any two maximal matchings of one hypergraph are within a factor r = 2.
  EXPECT_LE(a.matched.size(), 2 * b.matched.size());
  EXPECT_LE(b.matched.size(), 2 * a.matched.size());
}

TEST(StaticMatching, EmptyInput) {
  graph::EdgePool pool(2);
  auto r = matching::parallel_greedy_match(pool, {}, 1);
  EXPECT_TRUE(r.matched.empty());
  EXPECT_EQ(r.rounds, 0u);
}

}  // namespace
