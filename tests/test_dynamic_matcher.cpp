// Batch-dynamic matcher tests (paper Sections 4-5) -- the acceptance gate:
// across insert-only, delete-heavy and mixed workloads (and the E10 config
// ablations), after EVERY batch the matching must be valid (matched edges
// live and vertex-disjoint) and MAXIMAL, and must stay consistent with
// recompute-from-scratch: two maximal matchings of the same rank-r
// hypergraph differ in size by at most a factor r.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "matching/parallel_greedy.h"

using namespace parmatch;
using graph::EdgeId;
using graph::kInvalidEdge;
using graph::VertexId;

namespace {

// Replays a workload; after every step validates the full invariant set.
void drive_and_check(dyn::DynamicMatcher& dm, const gen::Workload& w) {
  std::vector<EdgeId> live_of_master(w.master.size(), kInvalidEdge);
  std::vector<EdgeId> live;  // all currently live ids
  std::size_t step_no = 0;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      ASSERT_EQ(ids.size(), step.edges.size());
      for (std::size_t j = 0; j < ids.size(); ++j)
        live_of_master[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) {
        ids.push_back(live_of_master[i]);
        live_of_master[i] = kInvalidEdge;
      }
      dm.delete_edges(ids);
    }
    live.clear();
    for (EdgeId id : live_of_master)
      if (id != kInvalidEdge) live.push_back(id);

    // -- validity: matched edges live, pairwise vertex-disjoint.
    auto matched = dm.matching();
    ASSERT_EQ(matched.size(), dm.matched_count()) << "step " << step_no;
    std::vector<EdgeId> taken(dm.pool().vertex_bound(), kInvalidEdge);
    for (EdgeId e : matched) {
      ASSERT_TRUE(dm.pool().live(e)) << "step " << step_no;
      ASSERT_TRUE(dm.is_matched(e));
      for (VertexId v : dm.pool().vertices(e)) {
        ASSERT_EQ(taken[v], kInvalidEdge)
            << "vertex " << v << " doubly matched at step " << step_no;
        taken[v] = e;
      }
    }
    // -- maximality: every live edge touches a matched vertex.
    for (EdgeId e : live) {
      bool blocked = false;
      for (VertexId v : dm.pool().vertices(e))
        blocked = blocked || taken[v] != kInvalidEdge;
      ASSERT_TRUE(blocked) << "edge " << e << " free at step " << step_no;
    }
    ++step_no;
  }
  // -- consistency with recompute-from-scratch on the final live graph:
  // both are maximal, so sizes are within a factor of the rank.
  auto scratch = matching::parallel_greedy_match(dm.pool(), live, 12345);
  std::size_t r = dm.pool().max_rank();
  EXPECT_LE(scratch.matched.size(), r * dm.matched_count());
  EXPECT_LE(dm.matched_count(), r * scratch.matched.size());
  if (live.empty()) {
    EXPECT_EQ(dm.matched_count(), 0u);
  }
}

gen::Workload insert_only(std::size_t n, std::size_t m, std::size_t batch,
                          std::uint64_t seed) {
  gen::Workload w;
  w.master = gen::erdos_renyi(static_cast<VertexId>(n), m, seed);
  for (std::size_t b = 0; b * batch < m; ++b) {
    gen::Step s;
    s.is_insert = true;
    for (std::size_t i = b * batch; i < std::min(m, (b + 1) * batch); ++i)
      s.edges.push_back(i);
    w.steps.push_back(std::move(s));
  }
  return w;
}

TEST(DynamicMatcher, InsertOnlyBatches) {
  auto w = insert_only(600, 2'400, 128, 3);
  dyn::DynamicMatcher dm;
  drive_and_check(dm, w);
  EXPECT_EQ(dm.cumulative_stats().inserts, 2'400u);
  EXPECT_GT(dm.matched_count(), 0u);
}

TEST(DynamicMatcher, DeleteHeavyChurn) {
  auto w = gen::churn(gen::erdos_renyi(500, 2'000, 11), 96, 0.35, 21);
  dyn::DynamicMatcher dm;
  drive_and_check(dm, w);
  EXPECT_GT(dm.cumulative_stats().deletes, dm.cumulative_stats().inserts / 2);
}

TEST(DynamicMatcher, MixedChurn) {
  auto w = gen::churn(gen::erdos_renyi(700, 2'800, 13), 128, 0.5, 31);
  dyn::DynamicMatcher dm;
  drive_and_check(dm, w);
  const auto& st = dm.cumulative_stats();
  EXPECT_EQ(st.total_updates(), st.inserts + st.deletes);
  EXPECT_GT(st.work_units, 0u);
  EXPECT_GT(st.samples_created, 0u);
}

TEST(DynamicMatcher, FullTeardownEmptiesMatching) {
  auto w = insert_only(300, 1'200, 1'200, 5);
  dyn::DynamicMatcher dm;
  drive_and_check(dm, w);
  // Delete everything in a few batches.
  while (dm.pool().live_count() > 0) {
    std::vector<EdgeId> victims;
    for (EdgeId id = 0; id < dm.pool().id_bound() && victims.size() < 500;
         ++id)
      if (dm.pool().live(id)) victims.push_back(id);
    dm.delete_edges(victims);
  }
  EXPECT_EQ(dm.matched_count(), 0u);
  EXPECT_TRUE(dm.matching().empty());
}

TEST(DynamicMatcher, HubTeardownResettles) {
  dyn::DynamicMatcher dm;
  dm.insert_edges(gen::hub_graph(4, 256));
  for (int round = 0; round < 4; ++round) {
    auto victims = dm.matching();
    if (victims.empty()) break;
    dm.delete_edges(victims);
    // Settling must have replaced the star matches while spokes remain.
    if (dm.pool().live_count() >= 8) {
      EXPECT_GT(dm.matched_count(), 0u) << "round " << round;
    }
  }
  EXPECT_GT(dm.cumulative_stats().settle_rounds, 0u);
}

TEST(DynamicMatcher, AblationConfigsStayCorrect) {
  for (int variant = 0; variant < 3; ++variant) {
    dyn::Config cfg;
    cfg.seed = 77 + variant;
    if (variant == 1) cfg.light_only = true;
    if (variant == 2) {
      cfg.level_gap = 4;
      cfg.heavy_factor = 1;
    }
    auto w = gen::churn(gen::erdos_renyi(400, 1'600, 17), 64, 0.45, 41);
    dyn::DynamicMatcher dm(cfg);
    drive_and_check(dm, w);
  }
}

TEST(DynamicMatcher, HypergraphChurn) {
  auto w = gen::churn(gen::random_hypergraph(500, 1'500, 3, 19), 64, 0.5, 51);
  dyn::Config cfg;
  cfg.max_rank = 3;
  dyn::DynamicMatcher dm(cfg);
  drive_and_check(dm, w);
}

// The matched-edge set must stay consistent with a brute-force scan of the
// id space (the representation matching() used to be computed from).
TEST(DynamicMatcher, MatchedSetTracksIdSpaceScan) {
  auto w = gen::churn(gen::erdos_renyi(400, 1'600, 29), 96, 0.5, 71);
  dyn::DynamicMatcher dm;
  std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      dm.delete_edges(ids);
    }
    std::vector<EdgeId> scan;
    for (EdgeId id = 0; id < dm.pool().id_bound(); ++id)
      if (dm.is_matched(id)) scan.push_back(id);
    ASSERT_EQ(dm.matching(), scan);
    ASSERT_EQ(dm.matched_count(), scan.size());
  }
}

// heavy_factor * cap must saturate, not wrap: with heavy_factor = 2^63 and
// cap = 2 the old computation produced threshold 0, bloating a match on its
// very first neighborhood insert.
TEST(DynamicMatcher, BloatThresholdSaturatesInsteadOfWrapping) {
  dyn::Config cfg;
  cfg.seed = 9;
  cfg.heavy_factor = 1ull << 63;
  dyn::DynamicMatcher dm(cfg);
  graph::EdgeBatch first;
  first.add({0, 1});
  dm.insert_edges(first);
  ASSERT_EQ(dm.matched_count(), 1u);
  graph::EdgeBatch growth;
  for (VertexId v = 2; v < 40; ++v) growth.add({0, v});
  dm.insert_edges(growth);
  EXPECT_EQ(dm.cumulative_stats().bloated, 0u)
      << "saturating threshold must never trigger a bloat";
  EXPECT_EQ(dm.matched_count(), 1u);
}

TEST(DynamicMatcher, DeterministicForFixedSeed) {
  auto w = gen::churn(gen::erdos_renyi(300, 1'200, 23), 64, 0.5, 61);
  dyn::Config cfg;
  cfg.seed = 5;
  dyn::DynamicMatcher m1(cfg), m2(cfg);
  auto replay = [&w](dyn::DynamicMatcher& dm) {
    std::vector<EdgeId> live(w.master.size(), kInvalidEdge);
    for (const auto& step : w.steps) {
      if (step.is_insert) {
        graph::EdgeBatch chunk;
        for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
        auto ids = dm.insert_edges(chunk);
        for (std::size_t j = 0; j < ids.size(); ++j)
          live[step.edges[j]] = ids[j];
      } else {
        std::vector<EdgeId> ids;
        for (std::size_t i : step.edges) ids.push_back(live[i]);
        dm.delete_edges(ids);
      }
    }
  };
  replay(m1);
  replay(m2);
  EXPECT_EQ(m1.matching(), m2.matching());
  EXPECT_EQ(m1.cumulative_stats().work_units, m2.cumulative_stats().work_units);
}

}  // namespace
