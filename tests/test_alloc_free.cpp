// Steady-state allocation audit (DESIGN.md S7): once the matcher's
// workspace is warm, insert_edges / delete_edges must perform ZERO heap
// allocations. This binary replaces the global operator new/delete with
// counting versions (which is why it is a separate test executable --
// parmatch_alloc_test -- instead of a TU of the main suite) and asserts the
// counter does not move across post-warmup batches.
//
// The warmup drives enough churn cycles that every named workspace vector
// reaches its high-water capacity, the bump arena its high-water footprint,
// the adjacency arena its chunk headroom, and the pool its id-space
// ceiling; afterwards the same cycle shapes repeat, so any allocation in
// the measured window is a regression in the allocation-free contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <algorithm>
#include <array>

#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "prims/speculative_for.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_news{0};
}

// Global replacements: every allocation in this binary funnels through
// malloc/free with a counter bump. Sized/aligned/array forms included so
// nothing bypasses the count.
void* operator new(std::size_t sz) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace parmatch;
using graph::EdgeId;

TEST(AllocFree, SteadyStateBatchesDoNotTouchTheHeap) {
  dyn::Config cfg;
  cfg.seed = 11;
  dyn::DynamicMatcher dm(cfg);

  // Prebuild everything the driver itself needs: batches, and a reusable
  // delete-id buffer with capacity reserved up front.
  std::vector<graph::EdgeBatch> batches;
  for (int b = 0; b < 4; ++b)
    batches.push_back(gen::erdos_renyi(400, 1'600, 100 + b));
  std::vector<EdgeId> pending_delete;
  pending_delete.reserve(4'000);

  auto run_cycle = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const auto& batch : batches) {
        auto ids = dm.insert_edges(batch);
        pending_delete.assign(ids.begin(), ids.end());
        dm.delete_edges(pending_delete);
      }
    }
  };

  run_cycle(12);  // warmup: reach every high-water mark

  std::uint64_t before = g_news.load(std::memory_order_relaxed);
  run_cycle(6);  // measured window: identical shapes, warm buffers
  std::uint64_t after = g_news.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state batches performed " << (after - before)
      << " heap allocations (allocation-free contract, DESIGN.md S7)";

  // The scratch arena really is in use (the audit is not vacuous).
  EXPECT_GT(dm.workspace().arena.capacity(), 0u);
}

// The deterministic-reservations engine's own steady state: once the arena
// has seen one invocation's high-water footprint, identical re-runs carve
// every retry queue and status buffer from warm memory -- zero heap
// allocations (the engine half of the DESIGN.md S7 contract; the batch
// pipeline half is the test above).
TEST(AllocFree, SpeculativeForSteadyStateDoesNotTouchTheHeap) {
  constexpr std::size_t kN = 600, kSlots = 150;
  struct Step {
    const std::array<std::uint32_t, 2>* wants;
    std::uint32_t* slot;
    std::uint32_t* owner;
    bool seq = true;
    void begin_round(std::uint64_t, bool s) { seq = s; }
    parmatch::prims::SpecStatus reserve(std::size_t i, bool) {
      for (std::uint32_t w : wants[i])
        if (owner[w] != parmatch::prims::kEmptySpecSlot)
          return parmatch::prims::SpecStatus::kDone;
      for (std::uint32_t w : wants[i])
        parmatch::prims::reserve_slot(slot[w], static_cast<std::uint32_t>(i),
                                      seq);
      return parmatch::prims::SpecStatus::kTryCommit;
    }
    bool commit(std::size_t i) {
      auto idx = static_cast<std::uint32_t>(i);
      bool owns = true;
      for (std::uint32_t w : wants[i])
        owns = owns && parmatch::prims::slot_holds(slot[w], idx, seq);
      for (std::uint32_t w : wants[i])
        if (owns || parmatch::prims::slot_holds(slot[w], idx, seq))
          parmatch::prims::release_slot(slot[w], seq);
      if (owns)
        for (std::uint32_t w : wants[i]) owner[w] = idx;
      return owns;
    }
    void finalize(std::size_t) {}
  };

  std::vector<std::array<std::uint32_t, 2>> wants(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    auto a = static_cast<std::uint32_t>(parmatch::hash64(77, 2 * i) % kSlots);
    auto b =
        static_cast<std::uint32_t>(parmatch::hash64(77, 2 * i + 1) % kSlots);
    if (b == a) b = (a + 1) % kSlots;
    wants[i] = {a, b};
  }
  std::vector<std::uint32_t> slot(kSlots), owner(kSlots);
  parmatch::ScratchArena arena;
  auto run_once = [&] {
    arena.reset();
    std::fill(slot.begin(), slot.end(), parmatch::prims::kEmptySpecSlot);
    std::fill(owner.begin(), owner.end(), parmatch::prims::kEmptySpecSlot);
    Step step{wants.data(), slot.data(), owner.data()};
    parmatch::prims::speculative_for(step, 0, kN, arena);
  };
  run_once();  // warmup: the arena reaches its high-water footprint

  std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 5; ++pass) run_once();
  std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "warm speculative_for invocations performed " << (after - before)
      << " heap allocations";
}

}  // namespace
