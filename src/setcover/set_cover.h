// setcover/set_cover.h -- r-approximate set cover by maximal matching
// (paper Corollaries 1.4 / 1.5). An element that belongs to at most r sets
// is a hyperedge of rank <= r over sets-as-vertices; a maximal matching M
// of those hyperedges gives the classic sandwich
//
//     |M|  <=  OPT  <=  |cover|  <=  r * |M|,
//
// where the cover is every set touched by a matched element: matched
// elements are pairwise set-disjoint (so OPT needs one set per matched
// element), and every element shares a set with some matched element (else
// M was not maximal), so the touched sets cover everything.
//
// DynamicSetCover maintains this under element insertions/deletions by
// delegating to dyn::DynamicMatcher -- O(r^3) amortized work per element
// update (Corollary 1.4); static_set_cover runs the static greedy matcher
// for O(m') expected work (Corollary 1.5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "containers/flat_hash_set.h"
#include "dyn/dynamic_matcher.h"
#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"

namespace parmatch::setcover {

using SetId = graph::VertexId;        // sets play the role of vertices
using ElementId = graph::EdgeId;      // elements play the role of edges
using ElementBatch = graph::EdgeBatch;

class DynamicSetCover {
 public:
  // max_freq is r: the maximum number of sets any element belongs to.
  DynamicSetCover(std::size_t max_freq, std::uint64_t seed)
      : matcher_(make_config(max_freq, seed)) {}

  std::vector<ElementId> insert_elements(const ElementBatch& batch) {
    auto ids = matcher_.insert_edges(batch);  // span into matcher scratch
    return {ids.begin(), ids.end()};
  }

  void delete_elements(const std::vector<ElementId>& ids) {
    matcher_.delete_edges(ids);
  }

  const dyn::DynamicMatcher& matcher() const { return matcher_; }

  std::size_t matching_size() const { return matcher_.matched_count(); }

  // Sets touched by matched elements. O(matching * r) per call.
  std::vector<SetId> cover() const {
    ct::flat_hash_set<SetId> sets;
    for (ElementId e : matcher_.matching())
      for (SetId s : matcher_.pool().vertices(e)) sets.insert(s);
    return sets.elements();
  }

  std::size_t cover_size() const { return cover().size(); }

 private:
  static dyn::Config make_config(std::size_t max_freq, std::uint64_t seed) {
    dyn::Config cfg;
    cfg.max_rank = max_freq;
    cfg.seed = seed;
    return cfg;
  }

  dyn::DynamicMatcher matcher_;
};

struct StaticCoverResult {
  std::vector<SetId> cover;
  std::size_t matching_size = 0;
};

inline StaticCoverResult static_set_cover(const ElementBatch& system,
                                          std::size_t r, std::uint64_t seed) {
  graph::EdgePool pool(r);
  auto ids = pool.add_edges(system);
  auto match = matching::parallel_greedy_match(pool, ids, seed);
  ct::flat_hash_set<SetId> sets;
  for (ElementId e : match.matched)
    for (SetId s : pool.vertices(e)) sets.insert(s);
  StaticCoverResult out;
  out.cover = sets.elements();
  out.matching_size = match.matched.size();
  return out;
}

}  // namespace parmatch::setcover
