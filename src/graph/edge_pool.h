// graph/edge_pool.h -- slab storage for live hyperedges with free-list id
// recycling (DESIGN.md S3). The dynamic matcher needs edge ids that are
// stable while an edge is alive and reusable after it dies; recycling keeps
// the id space -- and therefore every id-indexed array -- proportional to
// the maximum number of simultaneously live edges, which is what makes the
// paper's O(1) space-per-live-edge accounting hold.
//
// Because ids are recycled, lazy references (e.g. adjacency entries held by
// the matcher) must be validated: each slot carries a generation counter,
// bumped on every free, so a stale (id, generation) pair can be rejected in
// O(1) without eagerly unlinking it (the constant-work deletion path in
// paper Section 5 depends on this).
//
// Storage layout (DESIGN.md S11): ONE record per id --
// [generation][rank][vertices...] at a fixed stride -- instead of separate
// generation/rank/vertex arrays. The settle scan's innermost step
// (validate a ref, then read its vertices) and the delete path's
// liveness-then-vertices chase each touch a single cache line at rank 2
// (16-byte records, line-aligned since the stride divides 64), where the
// split arrays cost two to three.
//
// Complexity contract: add/remove are O(r) per edge; vertices() is O(1).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "parallel/parallel_for.h"
#include "util/prefetch.h"

namespace parmatch::graph {

class EdgePool {
 public:
  // max_rank is capped at 255 as a sanity bound on the record stride. The
  // paper's regime is small constant r, so the cap is a storage contract,
  // not a real limit.
  explicit EdgePool(std::size_t max_rank)
      : max_rank_(max_rank),
        // 2 header words (gen, rank) + one word per vertex, padded to an
        // even word count so records stay 8-byte aligned and the rank-2
        // record is exactly 16 bytes (never straddles a cache line).
        stride_((2 + max_rank + 1) & ~std::size_t{1}) {
    assert(max_rank_ >= 1 && max_rank_ <= 255);
  }

  EdgeId add_edge(std::span<const VertexId> vertices) {
    assert(vertices.size() >= 1 && vertices.size() <= max_rank_);
    EdgeId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<EdgeId>(nslots_++);
      data_.resize(nslots_ * stride_, 0);
    }
    rank_at(id) = static_cast<std::uint32_t>(vertices.size());
    VertexId* dst = row(id);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      dst[i] = vertices[i];
      if (vertices[i] + 1 > vertex_bound_) vertex_bound_ = vertices[i] + 1;
    }
    ++live_;
    return id;
  }

  // Batch insert into a caller-owned id buffer (reuses its capacity, so a
  // steady-state batch allocates nothing). Id assignment is a reserved-range
  // pop: the batch claims the tail `f` entries of the free list plus a
  // fresh range of the id space up front, then every slot -- id pick and
  // vertex fill alike -- is written in parallel. ids[i] equals what k
  // sequential add_edge calls would have assigned (free-list tail popped
  // back-to-front, then fresh ids in batch order) at any worker count.
  void add_edges(const EdgeBatch& batch, std::vector<EdgeId>& ids) {
    std::size_t k = batch.size();
    ids.resize(k);
    std::size_t f = k < free_.size() ? k : free_.size();
    std::size_t free_top = free_.size();  // pops come off the tail
    std::size_t fresh0 = nslots_;         // first fresh id
    nslots_ += k - f;
    data_.resize(nslots_ * stride_, 0);
    // Recycled ids land at random records; sweep their lines into cache
    // before the fill loop chases them one by one.
    for (std::size_t i = 0; i < f; ++i)
      prefetch_write(&data_[free_[free_top - 1 - i] * stride_]);
    const bool seq = parallel::run_phase_seq(k);
    std::atomic<VertexId> vb(vertex_bound_);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      auto vs = batch.edge(i);
      assert(vs.size() >= 1 && vs.size() <= max_rank_);
      EdgeId id = i < f ? free_[free_top - 1 - i]
                        : static_cast<EdgeId>(fresh0 + (i - f));
      ids[i] = id;
      rank_at(id) = static_cast<std::uint32_t>(vs.size());
      VertexId* dst = row(id);
      VertexId local = 0;
      for (std::size_t j = 0; j < vs.size(); ++j) {
        dst[j] = vs[j];
        if (vs[j] + 1 > local) local = vs[j] + 1;
      }
      if (seq) {  // plain max: the loop runs inline (run_phase_seq)
        if (local > vb.load(std::memory_order_relaxed))
          vb.store(local, std::memory_order_relaxed);
        return;
      }
      VertexId cur = vb.load(std::memory_order_relaxed);
      while (local > cur &&
             !vb.compare_exchange_weak(cur, local, std::memory_order_relaxed)) {
      }
    });
    free_.resize(free_top - f);
    vertex_bound_ = vb.load(std::memory_order_relaxed);
    live_ += k;
  }

  std::vector<EdgeId> add_edges(const EdgeBatch& batch) {
    std::vector<EdgeId> ids;
    add_edges(batch, ids);
    return ids;
  }

  void remove_edge(EdgeId id) {
    assert(live(id));
    rank_at(id) = 0;
    ++gen_at(id);
    free_.push_back(id);
    --live_;
  }

  // Batch delete: slot frees in parallel, free-list append as one bulk
  // scatter (free_[base + i] = ids[i]) so recycling order stays the batch
  // order regardless of worker count. Ids must be live and distinct.
  void remove_edges(std::span<const EdgeId> ids) {
    std::size_t base = free_.size();
    free_.resize(base + ids.size());
    parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
      EdgeId id = ids[i];
      assert(live(id));
      rank_at(id) = 0;
      ++gen_at(id);
      free_[base + i] = id;
    });
    live_ -= ids.size();
  }

  bool live(EdgeId id) const { return id < nslots_ && rank_at(id) != 0; }

  std::span<const VertexId> vertices(EdgeId id) const {
    assert(live(id));
    const VertexId* p = row(id);
    return {p, p + rank_at(id)};
  }

  std::size_t rank(EdgeId id) const { return rank_at(id); }

  // Generation of a slot; bumped each time the slot is freed, so a stale
  // (id, generation) reference can be detected in O(1).
  std::uint32_t generation(EdgeId id) const { return gen_at(id); }

  // Packed (generation << 32 | id) reference for lazily maintained
  // adjacency lists: holders never unlink eagerly; they drop entries whose
  // ref_valid() went false (the slot was freed, maybe recycled) instead.
  std::uint64_t packed_ref(EdgeId id) const {
    return (static_cast<std::uint64_t>(gen_at(id)) << 32) | id;
  }
  static EdgeId ref_id(std::uint64_t ref) { return static_cast<EdgeId>(ref); }
  bool ref_valid(std::uint64_t ref) const {
    EdgeId id = ref_id(ref);
    if (id >= nslots_) return false;
    // Header and vertices share the record (and, at rank 2, the cache
    // line), so the validate-then-read-vertices chase costs one miss.
    return rank_at(id) != 0 &&
           gen_at(id) == static_cast<std::uint32_t>(ref >> 32);
  }

  // Like vertices(), but id may name a freed or never-allocated slot
  // (empty span) -- for speculative reads on possibly-stale refs, e.g. the
  // settle scan's prefetch pipeline.
  std::span<const VertexId> vertices_if_live(EdgeId id) const {
    if (id >= nslots_) return {};
    const VertexId* p = row(id);
    return {p, p + rank_at(id)};
  }

  // Prefetch hook for the scanning loops: pulls the whole record --
  // validation header and vertex row -- a few iterations early. Records
  // wider than a line (rank > 14) get their tail line too.
  void prefetch_record(EdgeId id) const {
    if (id >= nslots_) return;
    const std::uint32_t* p = &data_[static_cast<std::size_t>(id) * stride_];
    prefetch_read(p);
    if constexpr (sizeof(std::uint32_t) == 4) {
      if (stride_ > 16) prefetch_read(p + 16);
    }
  }

  // One past the largest vertex id ever stored.
  VertexId vertex_bound() const { return vertex_bound_; }

  // One past the largest edge id ever allocated (live or recycled).
  std::size_t id_bound() const { return nslots_; }

  std::size_t live_count() const { return live_; }
  std::size_t max_rank() const { return max_rank_; }

  // Heap bytes held by the pool (record slab + free list, capacity not
  // size -- the benches' bytes-per-update memory accounting).
  std::size_t memory_bytes() const {
    return data_.capacity() * sizeof(std::uint32_t) +
           free_.capacity() * sizeof(EdgeId);
  }

  // --- checkpoint serialization (DESIGN.md S14) -------------------------
  //
  // The pool's id-assignment determinism contract (add_edges pops the free
  // list back-to-front, then fresh ids) means bit-identical replay needs
  // the free list IN ORDER and every slot's generation -- not just the
  // live edges. The record slab is therefore dumped verbatim: dead slots
  // carry their generation (rank 0), live slots carry everything.
  // Word stream layout, all u64:
  //   [nslots][vertex_bound][live][nfree][free ids...][data words packed
  //    2 x u32 per u64, (nslots * stride + 1) / 2 words]
  void export_state(std::vector<std::uint64_t>& out) const {
    out.push_back(nslots_);
    out.push_back(vertex_bound_);
    out.push_back(live_);
    out.push_back(free_.size());
    for (EdgeId id : free_) out.push_back(id);
    const std::size_t nwords = nslots_ * stride_;
    for (std::size_t i = 0; i < nwords; i += 2) {
      std::uint64_t w = data_[i];
      if (i + 1 < nwords) w |= static_cast<std::uint64_t>(data_[i + 1]) << 32;
      out.push_back(w);
    }
  }

  // Restores a stream produced by export_state on a pool constructed with
  // the SAME max_rank (the stream has no stride of its own). Only valid on
  // a fresh pool. Returns false on a malformed stream; `consumed` gets the
  // number of words read on success.
  bool import_state(std::span<const std::uint64_t> in, std::size_t* consumed) {
    assert(nslots_ == 0 && live_ == 0 && "import into a used pool");
    if (in.size() < 4) return false;
    const std::size_t nslots = static_cast<std::size_t>(in[0]);
    const std::size_t vb = static_cast<std::size_t>(in[1]);
    const std::size_t live = static_cast<std::size_t>(in[2]);
    const std::size_t nfree = static_cast<std::size_t>(in[3]);
    const std::size_t nwords = nslots * stride_;
    const std::size_t ndata = (nwords + 1) / 2;
    if (nfree > nslots || live + nfree > nslots) return false;
    if (in.size() < 4 + nfree + ndata) return false;
    std::size_t p = 4;
    free_.assign(in.begin() + p, in.begin() + p + nfree);
    for (EdgeId id : free_)
      if (id >= nslots) return false;
    p += nfree;
    data_.resize(nwords);
    for (std::size_t i = 0; i < nwords; i += 2) {
      std::uint64_t w = in[p + i / 2];
      data_[i] = static_cast<std::uint32_t>(w);
      if (i + 1 < nwords) data_[i + 1] = static_cast<std::uint32_t>(w >> 32);
    }
    p += ndata;
    nslots_ = nslots;
    vertex_bound_ = static_cast<VertexId>(vb);
    live_ = live;
    if (consumed) *consumed = p;
    return true;
  }

 private:
  std::uint32_t& gen_at(EdgeId id) {
    return data_[static_cast<std::size_t>(id) * stride_];
  }
  const std::uint32_t& gen_at(EdgeId id) const {
    return data_[static_cast<std::size_t>(id) * stride_];
  }
  std::uint32_t& rank_at(EdgeId id) {
    return data_[static_cast<std::size_t>(id) * stride_ + 1];
  }
  const std::uint32_t& rank_at(EdgeId id) const {
    return data_[static_cast<std::size_t>(id) * stride_ + 1];
  }
  VertexId* row(EdgeId id) {
    return data_.data() + static_cast<std::size_t>(id) * stride_ + 2;
  }
  const VertexId* row(EdgeId id) const {
    return data_.data() + static_cast<std::size_t>(id) * stride_ + 2;
  }

  std::size_t max_rank_;
  std::size_t stride_;  // record width in 32-bit words
  std::vector<std::uint32_t> data_;  // [gen][rank][vertices...] per id
  std::size_t nslots_ = 0;
  std::vector<EdgeId> free_;
  VertexId vertex_bound_ = 0;
  std::size_t live_ = 0;
};

}  // namespace parmatch::graph
