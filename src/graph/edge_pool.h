// graph/edge_pool.h -- slab storage for live hyperedges with free-list id
// recycling (DESIGN.md S3). The dynamic matcher needs edge ids that are
// stable while an edge is alive and reusable after it dies; recycling keeps
// the id space -- and therefore every id-indexed array -- proportional to
// the maximum number of simultaneously live edges, which is what makes the
// paper's O(1) space-per-live-edge accounting hold.
//
// Because ids are recycled, lazy references (e.g. adjacency entries held by
// the matcher) must be validated: each slot carries a generation counter,
// bumped on every free, so a stale (id, generation) pair can be rejected in
// O(1) without eagerly unlinking it (the constant-work deletion path in
// paper Section 5 depends on this).
//
// Complexity contract: add/remove are O(r) per edge; vertices() is O(1).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "parallel/parallel_for.h"

namespace parmatch::graph {

class EdgePool {
 public:
  // max_rank is capped at 255: ranks are stored in a uint8_t (0 marks a
  // free slot) to keep the hot arrays dense. The paper's regime is small
  // constant r, so the cap is a storage contract, not a real limit.
  explicit EdgePool(std::size_t max_rank) : max_rank_(max_rank) {
    assert(max_rank_ >= 1 && max_rank_ <= 255);
  }

  EdgeId add_edge(std::span<const VertexId> vertices) {
    assert(vertices.size() >= 1 && vertices.size() <= max_rank_);
    EdgeId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
    } else {
      id = static_cast<EdgeId>(rank_.size());
      rank_.push_back(0);
      gen_.push_back(0);
      verts_.resize(verts_.size() + max_rank_);
    }
    rank_[id] = static_cast<std::uint8_t>(vertices.size());
    VertexId* dst = verts_.data() + static_cast<std::size_t>(id) * max_rank_;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      dst[i] = vertices[i];
      if (vertices[i] + 1 > vertex_bound_) vertex_bound_ = vertices[i] + 1;
    }
    ++live_;
    return id;
  }

  // Batch insert into a caller-owned id buffer (reuses its capacity, so a
  // steady-state batch allocates nothing). Id assignment is a reserved-range
  // pop: the batch claims the tail `f` entries of the free list plus a
  // fresh range of the id space up front, then every slot -- id pick and
  // vertex fill alike -- is written in parallel. ids[i] equals what k
  // sequential add_edge calls would have assigned (free-list tail popped
  // back-to-front, then fresh ids in batch order) at any worker count.
  void add_edges(const EdgeBatch& batch, std::vector<EdgeId>& ids) {
    std::size_t k = batch.size();
    ids.resize(k);
    std::size_t f = k < free_.size() ? k : free_.size();
    std::size_t free_top = free_.size();      // pops come off the tail
    std::size_t fresh0 = rank_.size();        // first fresh id
    rank_.resize(fresh0 + (k - f), 0);
    gen_.resize(fresh0 + (k - f), 0);
    verts_.resize(rank_.size() * max_rank_);
    const bool seq = parallel::sequential_mode();
    std::atomic<VertexId> vb(vertex_bound_);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      auto vs = batch.edge(i);
      assert(vs.size() >= 1 && vs.size() <= max_rank_);
      EdgeId id = i < f ? free_[free_top - 1 - i]
                        : static_cast<EdgeId>(fresh0 + (i - f));
      ids[i] = id;
      rank_[id] = static_cast<std::uint8_t>(vs.size());
      VertexId* dst = verts_.data() + static_cast<std::size_t>(id) * max_rank_;
      VertexId local = 0;
      for (std::size_t j = 0; j < vs.size(); ++j) {
        dst[j] = vs[j];
        if (vs[j] + 1 > local) local = vs[j] + 1;
      }
      if (seq) {  // plain max: the CAS loop is overhead without concurrency
        if (local > vb.load(std::memory_order_relaxed))
          vb.store(local, std::memory_order_relaxed);
        return;
      }
      VertexId cur = vb.load(std::memory_order_relaxed);
      while (local > cur &&
             !vb.compare_exchange_weak(cur, local, std::memory_order_relaxed)) {
      }
    });
    free_.resize(free_top - f);
    vertex_bound_ = vb.load(std::memory_order_relaxed);
    live_ += k;
  }

  std::vector<EdgeId> add_edges(const EdgeBatch& batch) {
    std::vector<EdgeId> ids;
    add_edges(batch, ids);
    return ids;
  }

  void remove_edge(EdgeId id) {
    assert(live(id));
    rank_[id] = 0;
    ++gen_[id];
    free_.push_back(id);
    --live_;
  }

  // Batch delete: slot frees in parallel, free-list append as one bulk
  // scatter (free_[base + i] = ids[i]) so recycling order stays the batch
  // order regardless of worker count. Ids must be live and distinct.
  void remove_edges(std::span<const EdgeId> ids) {
    std::size_t base = free_.size();
    free_.resize(base + ids.size());
    parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
      EdgeId id = ids[i];
      assert(live(id));
      rank_[id] = 0;
      ++gen_[id];
      free_[base + i] = id;
    });
    live_ -= ids.size();
  }

  bool live(EdgeId id) const {
    return id < rank_.size() && rank_[id] != 0;
  }

  std::span<const VertexId> vertices(EdgeId id) const {
    assert(live(id));
    const VertexId* p = verts_.data() + static_cast<std::size_t>(id) * max_rank_;
    return {p, p + rank_[id]};
  }

  std::size_t rank(EdgeId id) const { return rank_[id]; }

  // Generation of a slot; bumped each time the slot is freed, so a stale
  // (id, generation) reference can be detected in O(1).
  std::uint32_t generation(EdgeId id) const { return gen_[id]; }

  // Packed (generation << 32 | id) reference for lazily maintained
  // adjacency lists: holders never unlink eagerly; they drop entries whose
  // ref_valid() went false (the slot was freed, maybe recycled) instead.
  std::uint64_t packed_ref(EdgeId id) const {
    return (static_cast<std::uint64_t>(gen_[id]) << 32) | id;
  }
  static EdgeId ref_id(std::uint64_t ref) { return static_cast<EdgeId>(ref); }
  bool ref_valid(std::uint64_t ref) const {
    EdgeId id = ref_id(ref);
    return live(id) && gen_[id] == static_cast<std::uint32_t>(ref >> 32);
  }

  // One past the largest vertex id ever stored.
  VertexId vertex_bound() const { return vertex_bound_; }

  // One past the largest edge id ever allocated (live or recycled).
  std::size_t id_bound() const { return rank_.size(); }

  std::size_t live_count() const { return live_; }
  std::size_t max_rank() const { return max_rank_; }

 private:
  std::size_t max_rank_;
  std::vector<VertexId> verts_;     // id * max_rank_ .. +rank_[id]
  std::vector<std::uint8_t> rank_;  // 0 == free slot
  std::vector<std::uint32_t> gen_;
  std::vector<EdgeId> free_;
  VertexId vertex_bound_ = 0;
  std::size_t live_ = 0;
};

}  // namespace parmatch::graph
