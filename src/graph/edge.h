// graph/edge.h -- id types for vertices and (hyper)edges (paper Section 2:
// the input is a hypergraph of rank r; every structure below is indexed by
// these ids). Plain 32-bit integers so the hot arrays stay cache-dense.
#pragma once

#include <cstdint>
#include <limits>

namespace parmatch::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace parmatch::graph
