// graph/adjacency.h -- chunked-arena incidence lists for the dynamic
// matcher (DESIGN.md S7/S11). Replaces the old vector<vector<uint64_t>>
// per-vertex adjacency: entries live in fixed-size chunks carved out of
// slab storage, so appends never touch the general-purpose allocator, a
// vertex's entries sit on whole cache lines instead of pointer-chased heap
// nodes, and lazy compaction (sample_candidate's stale-entry drop) rewrites
// the vertex's own chunk chain in place.
//
// The per-vertex chain header (AdjHead) is CALLER-owned: the matcher
// embeds it in the packed per-vertex VertexHot record so the hot loops
// read vertex state and chain location in one cache line (DESIGN.md S11).
// The arena itself owns only the chunk slabs and the bump cursor; every
// chain operation takes the header by reference.
//
// Chunk storage is a list of fixed-size slabs (512 KiB each), never a
// single growing vector: growth appends a slab without copying or
// value-initializing the ones before it, so existing chunks stay pinned in
// memory while a parallel phase runs and arena growth is O(new slab), not
// O(everything so far).
//
// Concurrency contract (matches the matcher's phase structure):
//  * append/compact on a given header (vertex) are owner-exclusive --
//    exactly one worker touches a vertex within a phase (the
//    per-vertex-group ownership of insert P2, the per-pending-vertex
//    ownership of settle sampling).
//  * Different vertices append concurrently; the only shared state is the
//    chunk bump cursor (one relaxed fetch_add per new chunk). Slabs are
//    pre-sized by reserve_for() BEFORE a parallel phase, so the slab list
//    never mutates under concurrent appends.
//  * Chunk indices assigned to a vertex depend on the schedule, but the
//    entry SEQUENCE of each vertex does not -- iteration order is append
//    order -- so everything the matcher derives from a scan (reservoir
//    draws, compaction) is schedule-independent (DESIGN.md S2).
//
// Capacity is retained per vertex: compaction keeps the chain's chunks
// linked for reuse by later appends, mirroring the capacity retention of
// the old std::vector lists, which is what makes steady-state batches
// allocation-free.
//
// Complexity contract: append amortized O(1); compact_visit O(len);
// memory O(sum of per-vertex high-water lengths).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/edge.h"
#include "util/prefetch.h"

namespace parmatch::graph {

// Per-vertex chain header. Owned and stored by the CALLER, not the arena:
// the matcher embeds it in the packed VertexHot record
// (matching/vertex_hot.h), so reading a vertex's hot state and locating
// its incidence chain is one cache line, not two (DESIGN.md S11).
struct AdjHead {
  static constexpr std::uint32_t kNull = 0xFFFF'FFFFu;
  std::uint32_t head = kNull;  // first chunk of the chain
  std::uint32_t tail = kNull;  // chunk holding entry len-1 (== head if empty)
  std::uint32_t len = 0;       // live + not-yet-compacted entries
};

class ChunkedAdjacency {
 public:
  // 15 entries + next link = 128 bytes, two cache lines per chunk.
  static constexpr std::size_t kChunkCap = 15;
  static constexpr std::uint32_t kNull = AdjHead::kNull;

  // Guarantees the slabs can absorb `extra_entries` appended entries spread
  // over at most `touched_vertices` vertices without growing. Call before
  // any parallel phase that appends. Not concurrent.
  void reserve_for(std::size_t extra_entries, std::size_t touched_vertices) {
    std::size_t need = cursor_.load(std::memory_order_relaxed) +
                       extra_entries / kChunkCap + 2 * touched_vertices;
    while (slabs_.size() * kSlabChunks < need)
      slabs_.push_back(std::make_unique_for_overwrite<Chunk[]>(kSlabChunks));
  }

  // Prefetch hooks for the batched-miss pipeline (DESIGN.md S11). The
  // header itself lives in the caller's record (one prefetch covers both);
  // these stages require it to be resident already: pull the first chunk
  // of the chain (scans) or the append cursor's line (inserts).
  void prefetch_chain(const AdjHead& h) const {
    if (h.head == kNull || h.len == 0) return;
    const Chunk* c = &chunk_at(h.head);
    prefetch_read(c);
    prefetch_read(reinterpret_cast<const char*>(c) + 64);
  }

  void prefetch_append_target(const AdjHead& h) const {
    if (h.head == kNull) return;
    std::size_t pos = h.len % kChunkCap;
    prefetch_write(reinterpret_cast<const char*>(&chunk_at(h.tail)) +
                   (pos * sizeof(std::uint64_t) & ~std::size_t{63}));
  }

  // Stage 3 of the scan pipeline: the chain's first chunk is resident
  // (prefetch_chain issued earlier), so hand its first `limit` entries to
  // `f` -- the caller prefetches their dependent lines before the real
  // scan reaches the vertex. Read-only.
  template <typename F>
  void peek_prefix(const AdjHead& h, std::size_t limit, F&& f) const {
    std::size_t n = h.len < limit ? h.len : limit;
    if (n == 0) return;
    const Chunk& c = chunk_at(h.head);
    if (n > kChunkCap) n = kChunkCap;
    for (std::size_t i = 0; i < n; ++i) f(c.entry[i]);
  }

  // Owner-exclusive append of one packed (generation, id) entry.
  void append(AdjHead& h, std::uint64_t entry) {
    if (h.head == kNull) h.head = h.tail = alloc_chunk();
    std::size_t pos = h.len % kChunkCap;
    if (pos == 0 && h.len != 0) {
      // Tail chunk full: advance into a retained spare or a fresh chunk.
      Chunk& tail = chunk(h.tail);
      std::uint32_t nxt = tail.next;
      if (nxt == kNull) {
        nxt = alloc_chunk();
        tail.next = nxt;
      }
      h.tail = nxt;
    }
    chunk(h.tail).entry[pos] = entry;
    ++h.len;
  }

  // Owner-exclusive scan + in-place compaction: visit(entry) decides
  // whether the entry is kept; kept entries are repacked in order at the
  // front of the chain. Chunks freed by the shrink stay linked behind the
  // new tail for reuse. Returns the pre-compaction length (the scan cost
  // the caller charges to its work accounting).
  template <typename Visit>
  std::size_t compact_visit(AdjHead& h, Visit&& visit) {
    return compact_visit(
        h, visit, [](std::uint64_t) {}, [](std::uint64_t) {});
  }

  // compact_visit with two lookahead hooks forming a prefetch pipeline:
  // peek_far(entry) fires kPeekAhead entries before visit(entry) -- issue
  // address-only prefetches (slot records, vertex rows); peek_near(entry)
  // fires kPeekAhead/2 entries before -- by then the far prefetches have
  // landed, so it can cheaply READ those lines and prefetch one dependency
  // level deeper (e.g. the endpoint's vertex record). Hooks must not
  // mutate anything.
  template <typename Visit, typename PeekFar, typename PeekNear>
  std::size_t compact_visit(AdjHead& h, Visit&& visit, PeekFar&& peek_far,
                            PeekNear&& peek_near) {
    std::size_t len = h.len;
    if (len == 0) return 0;
    std::uint32_t rc = h.head, wc = h.head;
    std::size_t ri = 0, wi = 0, kept = 0;
    const Chunk* rch = &chunk(rc);
    Chunk* wch = &chunk(wc);
    if (len <= kPeekAhead) {
      // Short chain (one partial chunk): the cursor machinery below is
      // pure overhead. Run the near hook over every entry, then visit.
      for (std::size_t k = 0; k < len; ++k) peek_near(rch->entry[k]);
      for (std::size_t k = 0; k < len; ++k) {
        std::uint64_t e = rch->entry[k];
        if (visit(e)) wch->entry[kept++] = e;
      }
      h.len = static_cast<std::uint32_t>(kept);
      h.tail = wc;
      return len;
    }
    // Far cursor runs kPeekAhead entries in front of the read cursor; a
    // small ring of already-far-peeked entries feeds the near hook at
    // half that distance. Compaction writes trail the read cursor, so the
    // peeks always see unmodified entries.
    std::uint32_t pc = rc;
    std::size_t pi = 0, peeked = 0;
    const Chunk* pch = rch;
    std::uint64_t ring[kPeekAhead];
    auto advance_peek = [&] {
      if (peeked >= len) return;
      if (pi == kChunkCap) {
        pc = pch->next;
        pch = &chunk(pc);
        pi = 0;
      }
      std::uint64_t e = pch->entry[pi++];
      peek_far(e);
      ring[peeked % kPeekAhead] = e;
      ++peeked;
    };
    for (std::size_t w = 0; w < kPeekAhead && w < len; ++w) advance_peek();
    constexpr std::size_t kNear = kPeekAhead / 2;
    for (std::size_t k = 0; k < len; ++k) {
      advance_peek();
      if (k + kNear < peeked) peek_near(ring[(k + kNear) % kPeekAhead]);
      if (ri == kChunkCap) {
        rc = rch->next;
        rch = &chunk(rc);
        ri = 0;
      }
      std::uint64_t e = rch->entry[ri++];
      if (visit(e)) {
        if (wi == kChunkCap) {
          wc = wch->next;
          wch = &chunk(wc);
          wi = 0;
        }
        wch->entry[wi++] = e;
        ++kept;
      }
    }
    h.len = static_cast<std::uint32_t>(kept);
    h.tail = wc;  // chunk holding the last kept entry (head when kept == 0)
    return len;
  }

  // Read-only walk of a chain's full entry sequence in append order (the
  // order every deterministic draw indexes into -- DESIGN.md S2), for the
  // checkpoint exporter and the state fingerprint (DESIGN.md S14). No
  // compaction, no mutation.
  template <typename F>
  void visit(const AdjHead& h, F&& f) const {
    std::size_t len = h.len;
    if (len == 0) return;
    std::uint32_t c = h.head;
    const Chunk* ch = &chunk_at(c);
    std::size_t i = 0;
    for (std::size_t k = 0; k < len; ++k) {
      if (i == kChunkCap) {
        c = ch->next;
        ch = &chunk_at(c);
        i = 0;
      }
      f(ch->entry[i++]);
    }
  }

  // How far the scan's far peek cursor runs ahead of the visit cursor.
  static constexpr std::size_t kPeekAhead = 4;

  // Diagnostics: chunks handed out so far.
  std::size_t chunks_in_use() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  // Heap bytes held in chunk slabs (allocated slabs, whether or not every
  // chunk is handed out yet -- the benches' memory accounting).
  std::size_t memory_bytes() const {
    return slabs_.size() * kSlabChunks * sizeof(Chunk);
  }

 private:
  struct alignas(64) Chunk {  // whole cache lines: no cross-chunk false
    std::uint64_t entry[kChunkCap];  // sharing between concurrent owners
    std::uint32_t next;
  };
  static_assert(sizeof(Chunk) == 128 && alignof(Chunk) == 64);

  static constexpr std::size_t kSlabChunks = 1u << 12;  // 512 KiB per slab

  Chunk& chunk(std::uint32_t i) {
    return slabs_[i / kSlabChunks][i % kSlabChunks];
  }

  const Chunk& chunk_at(std::uint32_t i) const {
    return slabs_[i / kSlabChunks][i % kSlabChunks];
  }

  std::uint32_t alloc_chunk() {
    std::uint32_t i = static_cast<std::uint32_t>(
        cursor_.fetch_add(1, std::memory_order_relaxed));
    assert(i < slabs_.size() * kSlabChunks &&
           "reserve_for not called before appends");
    Chunk& c = chunk(i);
    c.next = kNull;  // slabs are uninitialized; the owner links from here
    return i;
  }

  std::vector<std::unique_ptr<Chunk[]>> slabs_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace parmatch::graph
