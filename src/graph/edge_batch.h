// graph/edge_batch.h -- a flat, append-only sequence of hyperedges, the unit
// of update the paper's interface takes (Section 2: updates arrive as batches
// of edge insertions/deletions). CSR layout: one offsets array into one
// vertex array, so iterating a batch is a linear scan.
//
// Complexity contract: add() is amortized O(r); edge(i) is O(1); the whole
// batch occupies m' + m + O(1) words where m' is total cardinality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "graph/edge.h"

namespace parmatch::graph {

class EdgeBatch {
 public:
  EdgeBatch() : offsets_(1, 0) {}

  void add(std::span<const VertexId> vertices) {
    verts_.insert(verts_.end(), vertices.begin(), vertices.end());
    offsets_.push_back(static_cast<std::uint32_t>(verts_.size()));
  }

  void add(std::initializer_list<VertexId> vertices) {
    add(std::span<const VertexId>(vertices.begin(), vertices.size()));
  }

  // Empties the batch but keeps both buffers' capacity, so a serving loop
  // can refill the same batch object allocation-free.
  void clear() {
    verts_.clear();
    offsets_.resize(1);
  }

  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  std::span<const VertexId> edge(std::size_t i) const {
    return {verts_.data() + offsets_[i],
            verts_.data() + offsets_[i + 1]};
  }

  // m' in the paper's bounds: the sum of edge ranks.
  std::size_t total_cardinality() const { return verts_.size(); }

  // Largest rank of any edge in the batch (0 when empty).
  std::size_t max_rank() const {
    std::size_t r = 0;
    for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
      r = std::max<std::size_t>(r, offsets_[i + 1] - offsets_[i]);
    return r;
  }

  // One past the largest vertex id mentioned (0 when empty).
  VertexId vertex_bound() const {
    VertexId b = 0;
    for (VertexId v : verts_)
      if (v + 1 > b) b = v + 1;
    return b;
  }

 private:
  std::vector<VertexId> verts_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace parmatch::graph
