// baseline/targeted.h -- the oblivious adversary of E9a/E10: precompute the
// deterministic folklore matcher's choices (baseline/naive_dynamic.h) on a
// known edge sequence, then emit a workload that inserts everything and
// deletes the folklore-matched edges first, one per step, followed by the
// rest in insertion order. The order is fixed before any matcher runs, so
// it is legal under the paper's oblivious-adversary model -- yet it forces
// folklore into a rematch scan on essentially every deletion, while a
// random-settling matcher is hit with probability ~1/degree per step
// (Lemma 3.3).
//
// Complexity contract: O(m') to build (one simulated first-come pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gen/workloads.h"
#include "graph/edge.h"
#include "graph/edge_batch.h"

namespace parmatch::baseline {

inline gen::Workload targeted_teardown(graph::EdgeBatch base) {
  gen::Workload w;
  w.master = std::move(base);
  std::size_t m = w.master.size();
  if (m == 0) return w;

  // Simulate first-come matching over the insertion order.
  graph::VertexId vb = w.master.vertex_bound();
  std::vector<std::uint8_t> taken(vb, 0);
  std::vector<std::uint8_t> is_matched(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    bool free_all = true;
    for (graph::VertexId v : w.master.edge(i)) free_all = free_all && !taken[v];
    if (!free_all) continue;
    for (graph::VertexId v : w.master.edge(i)) taken[v] = 1;
    is_matched[i] = 1;
  }

  gen::Step insert_all;
  insert_all.is_insert = true;
  for (std::size_t i = 0; i < m; ++i) insert_all.edges.push_back(i);
  w.steps.push_back(std::move(insert_all));

  auto delete_one = [&w](std::size_t i) {
    gen::Step s;
    s.is_insert = false;
    s.edges.push_back(i);
    w.steps.push_back(std::move(s));
  };
  for (std::size_t i = 0; i < m; ++i)
    if (is_matched[i]) delete_one(i);
  for (std::size_t i = 0; i < m; ++i)
    if (!is_matched[i]) delete_one(i);
  return w;
}

}  // namespace parmatch::baseline
