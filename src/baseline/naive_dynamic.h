// baseline/naive_dynamic.h -- the deterministic "folklore" per-edge dynamic
// matcher (paper Section 1's strawman): first-come matching on insert, and
// on deletion of a matched edge an eager scan of every freed vertex's
// incidence list for a replacement. Correct and maximal, but it pays
// Theta(degree) per matched deletion, and because its choices are
// DETERMINISTIC an oblivious adversary can precompute them and delete
// exactly the matched edges (baseline/targeted.h) -- the failure mode the
// paper's random settling exists to prevent. E9a plots the gap.
//
// Complexity contract: insert O(r); delete O(r) unmatched, Theta(sum of
// freed-vertex degrees) matched. edges_scanned() exposes the scan count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"

namespace parmatch::baseline {

class NaiveDynamicMatcher {
  using EdgeId = graph::EdgeId;
  using VertexId = graph::VertexId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  explicit NaiveDynamicMatcher(std::size_t max_rank) : pool_(max_rank) {}

  std::vector<EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    auto ids = pool_.add_edges(batch);
    ensure_bounds();
    for (EdgeId id : ids) {
      for (VertexId v : pool_.vertices(id)) adj_[v].push_back(pool_.packed_ref(id));
      try_match(id);
    }
    return ids;
  }

  void delete_edges(const std::vector<EdgeId>& ids) {
    for (EdgeId id : ids) {
      if (!pool_.live(id)) continue;
      bool was_matched = taken_by_[pool_.vertices(id)[0]] == id;
      std::vector<VertexId> freed;
      if (was_matched)
        for (VertexId v : pool_.vertices(id)) {
          taken_by_[v] = kInvalid;
          freed.push_back(v);
        }
      pool_.remove_edge(id);
      // Eager repair: scan every freed vertex's full incidence list.
      for (VertexId v : freed) rematch_scan(v);
    }
  }

  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out;
    for (EdgeId id = 0; id < pool_.id_bound(); ++id)
      if (pool_.live(id) && taken_by_[pool_.vertices(id)[0]] == id)
        out.push_back(id);
    return out;
  }

  std::size_t edges_scanned() const { return edges_scanned_; }
  const graph::EdgePool& pool() const { return pool_; }

 private:
  void ensure_bounds() {
    if (taken_by_.size() < pool_.vertex_bound()) {
      taken_by_.resize(pool_.vertex_bound(), kInvalid);
      adj_.resize(pool_.vertex_bound());
    }
  }

  bool try_match(EdgeId id) {
    for (VertexId v : pool_.vertices(id))
      if (taken_by_[v] != kInvalid) return false;
    for (VertexId v : pool_.vertices(id)) taken_by_[v] = id;
    return true;
  }

  void rematch_scan(VertexId v) {
    if (taken_by_[v] != kInvalid) return;
    auto& list = adj_[v];
    std::size_t kept = 0;
    bool matched = false;
    for (std::size_t i = 0; i < list.size(); ++i) {
      std::uint64_t entry = list[i];
      if (!pool_.ref_valid(entry)) continue;
      list[kept++] = entry;
      ++edges_scanned_;
      if (!matched) matched = try_match(graph::EdgePool::ref_id(entry));
    }
    list.resize(kept);
  }

  graph::EdgePool pool_;
  std::vector<EdgeId> taken_by_;
  std::vector<std::vector<std::uint64_t>> adj_;
  std::size_t edges_scanned_ = 0;
};

}  // namespace parmatch::baseline
