// baseline/recompute.h -- recompute-from-scratch baseline (E9b): after
// every batch, throw the matching away and run the static parallel greedy
// matcher (Lemma 1.3) over all live edges. Work-optimal per RUN but
// Theta(m) per BATCH, so it can only compete when batches approach the live
// graph size -- the crossover E9b plots against the dynamic structure.
//
// Complexity contract: insert/delete batch of k edges costs O(k + m')
// expected work where m' is the live total cardinality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"

namespace parmatch::baseline {

class RecomputeMatcher {
  using EdgeId = graph::EdgeId;

 public:
  RecomputeMatcher(std::size_t max_rank, std::uint64_t seed)
      : pool_(max_rank), seed_(seed) {}

  std::vector<EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    auto ids = pool_.add_edges(batch);
    for (EdgeId id : ids) note_live(id);
    recompute();
    return ids;
  }

  void delete_edges(const std::vector<EdgeId>& ids) {
    for (EdgeId id : ids) {
      if (!pool_.live(id)) continue;
      drop_live(id);
      pool_.remove_edge(id);
    }
    recompute();
  }

  std::vector<EdgeId> matching() const { return last_.matched; }
  const matching::MatchResult& last_result() const { return last_; }
  const graph::EdgePool& pool() const { return pool_; }

 private:
  void note_live(EdgeId id) {
    if (pos_.size() < pool_.id_bound()) pos_.resize(pool_.id_bound(), kNone);
    pos_[id] = live_.size();
    live_.push_back(id);
  }
  void drop_live(EdgeId id) {
    std::size_t p = pos_[id];
    live_[p] = live_.back();
    pos_[live_[p]] = p;
    live_.pop_back();
    pos_[id] = kNone;
  }
  void recompute() {
    last_ = matching::parallel_greedy_match(pool_, live_, seed_++);
  }

  static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);
  graph::EdgePool pool_;
  std::vector<EdgeId> live_;
  std::vector<std::size_t> pos_;
  matching::MatchResult last_;
  std::uint64_t seed_;
};

}  // namespace parmatch::baseline
