// util/mem_stats.h -- process memory observables for the bench sinks
// (ROADMAP's memory-story item). Every --json bench record carries the
// peak RSS at flush time, and the overload bench (E13) pairs it with the
// matcher's own structure-byte accounting (EdgePool / adjacency-slab
// totals) so the memory envelope of a run is recorded next to its latency
// numbers instead of being re-measured by hand.
//
// Linux-only source (/proc/self/status); returns 0 where the file or the
// field is unavailable, so recording degrades to "not measured" rather
// than failing the bench.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstring>

namespace parmatch::util {

// Reads one "Key:   N kB" field from /proc/self/status; 0 if absent.
inline std::size_t proc_status_kb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  std::size_t keylen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, keylen) != 0) continue;
    unsigned long long v = 0;
    if (std::sscanf(line + keylen, "%llu", &v) == 1)
      kb = static_cast<std::size_t>(v);
    break;
  }
  std::fclose(f);
  return kb;
}

// High-water-mark resident set size of this process, in bytes (VmHWM).
inline std::size_t peak_rss_bytes() { return proc_status_kb("VmHWM:") * 1024; }

// Current resident set size, in bytes (VmRSS).
inline std::size_t current_rss_bytes() {
  return proc_status_kb("VmRSS:") * 1024;
}

}  // namespace parmatch::util
