// util/latency_hist.h -- fixed-footprint log-bucketed latency histogram
// (DESIGN.md S13). Replaces the per-request sample vectors that made
// ServiceStats memory grow with the stream length: a long-lived service
// records millions of ingest-to-commit latencies, and keeping one double
// per committed update is an O(stream) footprint for an O(1) question
// (p50/p99/mean/max).
//
// Layout: geometric buckets, kSubPerOctave buckets per power of two over
// [2^kMinExp, 2^kMaxExp) microseconds, plus an underflow and an overflow
// bucket. Bucket width is a factor of 2^(1/kSubPerOctave) = ~9.05%, so any
// quantile reported from the bucket's geometric midpoint is within
// +-4.5% relative error of the exact order statistic (half a bucket), and
// never more than one bucket width (~9.05%) off under adversarial
// placement. That error bound is the documented contract the serving
// benches rely on; CI latency gates use factors far above it.
//
// count/sum/min/max are tracked exactly, so mean() and max() carry no
// bucketing error and quantile() clamps into [min, max].
//
// Complexity contract: record() is O(1) (one frexp + one increment, no
// allocation after construction); quantile() is O(buckets); footprint is
// a fixed ~2.6 KB regardless of how many samples were recorded.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace parmatch::util {

class LatencyHistogram {
 public:
  static constexpr int kSubPerOctave = 8;   // 2^(1/8) ~ 1.0905 per bucket
  static constexpr int kMinExp = -10;       // ~0.001 us
  static constexpr int kMaxExp = 30;        // ~1.07e9 us (~18 min)
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubPerOctave + 2;

  void record(double us) {
    std::size_t b = bucket_of(us);
    ++buckets_[b];
    if (b == kBuckets - 1) ++overflow_;
    ++count_;
    sum_ += us;
    if (us < min_) min_ = us;
    if (us > max_) max_ = us;
  }

  std::uint64_t count() const { return count_; }

  // Samples clamped into the top (overflow) bucket: their quantile
  // contribution is reported from the bucket floor (then clamped to max),
  // so a nonzero overflow count means upper quantiles are CLIPPED, not
  // merely approximate. Surfaced through ServiceStats and every bench
  // JsonSink so the clipping is visible instead of silent.
  std::uint64_t overflow_count() const { return overflow_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }

  // The value at rank ceil(p * count): exact to within half a bucket width
  // (~4.5% relative; see the header contract), clamped into [min, max] so
  // the tails never report outside the observed range.
  double quantile(double p) const {
    if (count_ == 0) return 0.0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        double v = bucket_mid(i);
        if (v < min_) v = min_;
        if (v > max_) v = max_;
        return v;
      }
    }
    return max_;  // unreachable when count_ > 0
  }

  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    overflow_ += o.overflow_;
    sum_ += o.sum_;
    if (o.count_ != 0) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
  }

  void clear() { *this = LatencyHistogram{}; }

 private:
  // Bucket 0 is underflow (<= 2^kMinExp, including zero and negatives from
  // clock skew); the last bucket is overflow.
  static std::size_t bucket_of(double us) {
    if (!(us > std::ldexp(1.0, kMinExp))) return 0;
    int e;
    double m = std::frexp(us, &e);  // us = m * 2^e, m in [0.5, 1)
    // Sub-bucket from the mantissa: log2(2m) * kSub, via the linear
    // approximation (2m - 1) * kSub -- monotone, so bucket edges are
    // merely warped (each bucket still spans <= one octave / kSub * ln2
    // ... <= 2^(1/kSub) factor at the widest), and bucket_mid() uses the
    // same mapping so record/report stay consistent.
    int sub = static_cast<int>((2.0 * m - 1.0) * kSubPerOctave);
    if (sub >= kSubPerOctave) sub = kSubPerOctave - 1;
    long idx = (static_cast<long>(e) - 1 - kMinExp) * kSubPerOctave + sub + 1;
    if (idx < 1) return 0;
    if (idx >= static_cast<long>(kBuckets) - 1) return kBuckets - 1;
    return static_cast<std::size_t>(idx);
  }

  static double bucket_mid(std::size_t i) {
    if (i == 0) return std::ldexp(1.0, kMinExp);
    if (i >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
    std::size_t z = i - 1;
    int oct = static_cast<int>(z) / kSubPerOctave;
    int sub = static_cast<int>(z) % kSubPerOctave;
    // Inverse of bucket_of's mantissa map, evaluated at the bucket center.
    double m = 0.5 * (1.0 + (static_cast<double>(sub) + 0.5) / kSubPerOctave);
    return std::ldexp(m, kMinExp + oct + 1);
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace parmatch::util
