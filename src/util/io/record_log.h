// util/io/record_log.h -- CRC32C-framed append-only record log, the storage
// primitive under both the write-ahead batch journal (serve/journal.h) and
// the checkpoint files (serve/checkpoint.h). DESIGN.md S14 documents the
// format and the crash-consistency argument.
//
// On-disk frame, little-endian, no alignment padding:
//
//     [u32 payload_len][u32 crc32c(payload)][payload_len bytes]
//
// A log is a sequence of frames; the *valid prefix* is the longest run of
// frames from offset 0 whose lengths are sane, whose bytes are all present,
// and whose checksums match. Everything after the valid prefix is garbage by
// definition -- a torn append (crash mid-write), a corrupted tail, or noise
// from a recycled block -- and both ends of the API treat it that way:
//
//   * RecordWriter::open() scans the existing file, ftruncate()s it to the
//     valid prefix, and appends from there. A crash that tore the last
//     record therefore heals on the next open instead of poisoning the log.
//   * RecordReader::next() returns records sequentially and reports
//     end-of-log at the first invalid frame (standard WAL semantics: a bad
//     frame terminates replay, it never aborts the process).
//
// Durability contract: append() only buffers into the OS page cache;
// sync() (fdatasync) is the group-commit barrier. The journal layer above
// decides *when* to call sync() -- that is the whole off/async/commit
// policy knob -- so this layer deliberately has no policy of its own.
//
// Fault-injection hooks: AppendFault lets the caller (serve/journal.h under
// -DPARMATCH_FAULT_INJECT=ON) flip a payload byte after the CRC was
// computed, or write only a prefix of the frame, exercising exactly the
// corruption classes the open-time scan must tolerate.
//
// POSIX-only by design (open/pread/write/fdatasync/ftruncate); the repo's
// toolchain and CI are Linux. No allocation on the append hot path after
// the frame scratch buffer reaches steady-state size.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crc32c.h"

namespace parmatch::util::io {

// Frames larger than this are treated as corruption by the prefix scan: a
// torn length field can decode as anything, and without a cap a 4 GiB
// garbage length would make the scan "wait" for bytes that never existed.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 28;  // 256 MiB

inline constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

namespace detail {

// Full-write loop: POSIX write() may write short; loop until done or error.
inline bool write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

inline bool read_exact(int fd, std::uint64_t off, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = ::pread(fd, p, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before len bytes
    p += n;
    off += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Longest valid frame prefix of the file at `fd` (see file comment).
// Returns the byte offset one past the last valid frame; `nrecords` gets
// the number of valid frames. O(file) with one payload read per frame.
inline std::uint64_t scan_valid_prefix(int fd, std::uint64_t file_size,
                                       std::uint64_t* nrecords = nullptr) {
  std::uint64_t off = 0, count = 0;
  std::vector<unsigned char> payload;
  while (off + kFrameHeaderBytes <= file_size) {
    std::uint32_t hdr[2];
    if (!read_exact(fd, off, hdr, sizeof hdr)) break;
    const std::uint32_t len = hdr[0], crc = hdr[1];
    if (len > kMaxRecordBytes) break;
    if (off + kFrameHeaderBytes + len > file_size) break;  // torn payload
    payload.resize(len);
    if (len > 0 && !read_exact(fd, off + kFrameHeaderBytes, payload.data(), len))
      break;
    if (crc32c(payload.data(), len) != crc) break;
    off += kFrameHeaderBytes + len;
    ++count;
  }
  if (nrecords) *nrecords = count;
  return off;
}

}  // namespace detail

// Optional corruption to apply to a single append (fault injection only).
struct AppendFault {
  // Flip one bit-complemented byte of the payload at this index, *after*
  // the CRC was computed over the clean payload (checksum mismatch on read).
  std::int64_t flip_byte = -1;
  // Write only the first `torn_after` bytes of the full frame
  // (header + payload), simulating a crash mid-append.
  std::int64_t torn_after = -1;
};

// Appender with open-time truncate-to-last-valid-record.
class RecordWriter {
 public:
  RecordWriter() = default;
  ~RecordWriter() { close(); }
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  // Opens (creating if absent) `path`, scans the existing contents, and
  // truncates to the valid prefix so appends continue from the last intact
  // record. Returns false on I/O error; `*this` is then closed.
  bool open(const std::string& path) {
    close();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return false;
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      close();
      return false;
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    std::uint64_t nrec = 0;
    const std::uint64_t valid = detail::scan_valid_prefix(fd_, size, &nrec);
    if (valid < size) {
      if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
        close();
        return false;
      }
      truncated_bytes_ = size - valid;
    }
    if (::lseek(fd_, static_cast<off_t>(valid), SEEK_SET) < 0) {
      close();
      return false;
    }
    bytes_ = valid;
    records_ = nrec;
    return true;
  }

  bool is_open() const { return fd_ >= 0; }

  // Appends one framed record. Not durable until sync(). Returns false on
  // I/O error (the log may then hold a torn frame -- exactly the state the
  // next open() heals).
  bool append(const void* payload, std::size_t len,
              const AppendFault* fault = nullptr) {
    if (fd_ < 0 || len > kMaxRecordBytes) return false;
    frame_.resize(kFrameHeaderBytes + len);
    const std::uint32_t len32 = static_cast<std::uint32_t>(len);
    const std::uint32_t crc = crc32c(payload, len);
    std::memcpy(frame_.data(), &len32, 4);
    std::memcpy(frame_.data() + 4, &crc, 4);
    if (len > 0) std::memcpy(frame_.data() + kFrameHeaderBytes, payload, len);
    std::size_t nwrite = frame_.size();
    if (fault) {
      if (fault->flip_byte >= 0 &&
          static_cast<std::uint64_t>(fault->flip_byte) < len)
        frame_[kFrameHeaderBytes + static_cast<std::size_t>(fault->flip_byte)] ^=
            0xFF;
      if (fault->torn_after >= 0 &&
          static_cast<std::size_t>(fault->torn_after) < nwrite)
        nwrite = static_cast<std::size_t>(fault->torn_after);
    }
    if (!detail::write_all(fd_, frame_.data(), nwrite)) return false;
    bytes_ += nwrite;
    ++records_;
    return true;
  }

  // Group-commit barrier: everything appended so far reaches the device
  // (fdatasync -- record frames carry their own integrity check, so file
  // metadata beyond size is not worth a full fsync).
  bool sync() { return fd_ >= 0 && ::fdatasync(fd_) == 0; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }
  // Bytes discarded by the open-time truncate (0 when the log was clean).
  std::uint64_t truncated_bytes() const { return truncated_bytes_; }

 private:
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::vector<unsigned char> frame_;
};

// Sequential reader; next() yields payloads until the first invalid frame.
class RecordReader {
 public:
  RecordReader() = default;
  ~RecordReader() { close(); }
  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  bool open(const std::string& path) {
    close();
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return false;
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      close();
      return false;
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    off_ = 0;
    return true;
  }

  bool is_open() const { return fd_ >= 0; }

  // Reads the next record's payload into `out`. Returns false at end of
  // log -- including at the first torn or corrupt frame, whose bytes are
  // deliberately indistinguishable from "no more records".
  bool next(std::vector<unsigned char>& out) {
    if (fd_ < 0 || off_ + kFrameHeaderBytes > size_) return false;
    std::uint32_t hdr[2];
    if (!detail::read_exact(fd_, off_, hdr, sizeof hdr)) return false;
    const std::uint32_t len = hdr[0], crc = hdr[1];
    if (len > kMaxRecordBytes) return false;
    if (off_ + kFrameHeaderBytes + len > size_) return false;
    out.resize(len);
    if (len > 0 &&
        !detail::read_exact(fd_, off_ + kFrameHeaderBytes, out.data(), len))
      return false;
    if (crc32c(out.data(), len) != crc) return false;
    off_ += kFrameHeaderBytes + len;
    ++records_read_;
    return true;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint64_t records_read() const { return records_read_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::uint64_t off_ = 0;
  std::uint64_t records_read_ = 0;
};

}  // namespace parmatch::util::io
