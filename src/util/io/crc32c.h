// util/io/crc32c.h -- software CRC32C (Castagnoli, reflected poly
// 0x82F63B78), the per-record checksum of the durable record log
// (util/io/record_log.h, DESIGN.md S14). CRC32C rather than CRC32 for the
// same reason every modern storage format picks it: better error-detection
// spectrum for the short-burst corruption a torn or bit-flipped journal
// record actually exhibits, and a hardware-accelerated future (SSE4.2 /
// ARMv8 CRC instructions compute exactly this polynomial) without a format
// change.
//
// Implementation: slice-by-8 table lookup -- eight 256-entry tables let the
// hot loop fold 8 input bytes per iteration with no data-dependent chain
// longer than one XOR tree. Throughput is ~1-2 GB/s on commodity cores,
// two orders of magnitude above the journal's append bandwidth at the E12
// saturation rate, so checksumming never shows up in the fsync-policy
// overhead measurements (bench_e14_recovery).
//
// The tables are built once on first use (function-local static, thread
// safe per the C++11 initialization guarantee) rather than baked in as
// 8 KiB of source literals.
//
// Complexity contract: crc32c() is O(n) in the buffer length with a ~8x
// unrolled inner step; no allocation after the one-time table build.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace parmatch::util::io {

namespace detail {

struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F6'3B78u;  // Castagnoli, reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? kPoly : 0);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t s = 1; s < 8; ++s)
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
  }
};

inline const Crc32cTables& crc32c_tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace detail

// CRC32C of `len` bytes at `data`, continuing from `seed` (pass the
// previous call's return value to checksum a record in pieces; the default
// seed starts a fresh checksum).
inline std::uint32_t crc32c(const void* data, std::size_t len,
                            std::uint32_t seed = 0) {
  const auto& t = detail::crc32c_tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // little-endian hosts only (asserted below)
    word ^= crc;
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][(word >> 56) & 0xFF];
    p += 8;
    len -= 8;
  }
  while (len--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

// The record-log format is defined on little-endian byte order (the only
// order the repo's recording and CI machines use); a big-endian port would
// need byte-swapping in the slice-by-8 fold above.
static_assert(std::endian::native == std::endian::little,
              "record-log CRC32C fold assumes a little-endian host");

}  // namespace parmatch::util::io
