// util/rng.h -- splitmix64 pseudo-random generator (paper Section 2 model:
// the algorithm's only randomness is a stream of uniform words; an oblivious
// adversary fixes the update sequence before the stream is drawn).
//
// Complexity contract: next() and next_below() are O(1), branch-light, and
// stateless across instances (two Rngs with the same seed produce the same
// stream), which is what makes every bench reproducible under --seed.
#pragma once

#include <cstdint>

namespace parmatch {

// One step of the splitmix64 sequence (Steele, Lea & Flood's finalizer).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Stateless hash of (seed, i): used wherever a value must be drawn
// deterministically per element regardless of traversal order.
inline std::uint64_t hash64(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t s = seed ^ (i * 0xD1B54A32D192ED03ull);
  return splitmix64(s);
}

// Stream splitting: hash of (seed, i, j), the key the data-parallel phases
// use to give every (element, round) pair its own independent draw -- the
// result depends only on the key, never on which worker evaluates it.
inline std::uint64_t hash64(std::uint64_t seed, std::uint64_t i,
                            std::uint64_t j) {
  return hash64(hash64(seed, i), j ^ 0x9E6C'63D0'876A'3F6Bull);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : state_(seed) {}

  std::uint64_t next() { return splitmix64(state_); }

  // Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style multiply-shift rejection-free mapping; the bias is
    // < bound / 2^64, far below anything the benches can observe.
    unsigned __int128 p =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(p >> 64);
  }

  double next_double() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace parmatch
