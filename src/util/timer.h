// util/timer.h -- wall-clock stopwatch for the experiment harnesses
// (DESIGN.md Section 4). Monotonic, O(1) per call.
#pragma once

#include <chrono>

namespace parmatch {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace parmatch
