// util/prefetch.h -- software prefetch for the pointer-chasing hot loops
// (DESIGN.md S11). The claim and settle loops walk batch-random vertices,
// so every iteration starts with a dependent cache miss on the packed
// per-vertex record; issuing the loads a few iterations ahead overlaps the
// misses instead of serializing them. No-ops where the builtin is missing.
#pragma once

#include <cstddef>

namespace parmatch {

// How many loop iterations ahead the hot loops prefetch. Far enough to
// cover one L2/LLC miss at typical per-iteration costs, near enough that
// the lines are still resident when the loop arrives.
inline constexpr std::size_t kPrefetchAhead = 8;

inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

}  // namespace parmatch
