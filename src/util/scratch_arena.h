// util/scratch_arena.h -- bump-pointer scratch memory for the batch
// pipeline (DESIGN.md S7). Every transient buffer a batch phase needs
// (filter outputs, radix sort staging, semisort pairs, settle draws) is
// carved out of one reusable arena instead of a fresh std::vector, so a
// steady-state batch performs zero heap allocations: blocks are retained
// across reset() and only grow while a new high-water mark is being set.
//
// Allocation is blockwise bump: alloc<T>(n) returns a span inside the
// current block, opening a new block (geometric sizing) only when the
// current one cannot fit the request. Previously returned spans are never
// moved or invalidated by later allocations -- only reset() recycles them.
// Memory is returned raw (no construction): callers treat it as
// uninitialized storage for trivial types, which every pipeline scratch
// type is.
//
// Not thread-safe by design: allocation happens on the (single) thread
// driving the batch, between parallel phases; the parallel phases
// themselves only read/write the carved spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace parmatch {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // Uninitialized storage for n objects of trivial type T, aligned for T.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is raw memory");
    // Blocks come from plain operator new[], which only guarantees the
    // default new alignment; over-aligned types would get UB silently.
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "arena blocks are not over-aligned");
    std::size_t bytes = n * sizeof(T);
    void* p = alloc_bytes(bytes, alignof(T));
    return {static_cast<T*>(p), n};
  }

  // Rewinds every block; capacity (and the block list) is retained, so a
  // reset+refill cycle that stays under the high-water mark is free.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
  }

  // Bytes currently reserved across all blocks (diagnostics / tests).
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlock = 1u << 16;  // 64 KiB

  // Hot path, inlined at every alloc<T>: the current block almost always
  // fits (blocks are 64 KiB+ and batch scratch is small), so the common
  // case is one bump with no loop.
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    if (cur_ < blocks_.size()) [[likely]] {
      Block& b = blocks_[cur_];
      std::size_t at = round_up(b.used, align);
      if (at + bytes <= b.size) [[likely]] {
        b.used = at + bytes;
        return b.mem.get() + at;
      }
    }
    return alloc_bytes_slow(bytes, align);
  }

  void* alloc_bytes_slow(std::size_t bytes, std::size_t align) {
    // Find a block with room, starting at the current one (earlier blocks
    // were exhausted for this cycle; later ones are leftovers from a
    // previous, larger cycle).
    for (; cur_ < blocks_.size(); ++cur_) {
      Block& b = blocks_[cur_];
      std::size_t at = round_up(b.used, align);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        return b.mem.get() + at;
      }
    }
    std::size_t grown = blocks_.empty() ? kMinBlock : 2 * blocks_.back().size;
    std::size_t size = grown > bytes + align ? grown : bytes + align;
    Block b;
    b.mem = std::make_unique<std::byte[]>(size);
    b.size = size;
    std::size_t at =
        round_up(reinterpret_cast<std::uintptr_t>(b.mem.get()), align) -
        reinterpret_cast<std::uintptr_t>(b.mem.get());
    b.used = at + bytes;
    void* p = b.mem.get() + at;
    blocks_.push_back(std::move(b));
    cur_ = blocks_.size() - 1;
    return p;
  }

  static std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
};

}  // namespace parmatch
