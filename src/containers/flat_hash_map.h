// containers/flat_hash_map.h -- open-addressing hash map companion to
// flat_hash_set (DESIGN.md S5): linear probing, power-of-two capacity,
// tombstone deletion, keys in one flat array and values in another so
// probing touches only key cache lines.
//
// Complexity contract: expected O(1) insert/find/erase at load <= 0.7.
// Key restrictions: unsigned integral keys; top two key values reserved.
// Values must be movable. Sequential-use container: the phase-concurrent
// batch entry points live on flat_hash_set, which is what the matcher's
// parallel phases key on.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace parmatch::ct {

template <typename K, typename V>
class flat_hash_map {
  static_assert(std::is_unsigned_v<K>, "keys must be unsigned integers");

 public:
  static constexpr K kEmpty = std::numeric_limits<K>::max();
  static constexpr K kTomb = std::numeric_limits<K>::max() - 1;

  flat_hash_map() { rehash(kMinCapacity); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(std::size_t n) {
    std::size_t want = capacity_for(n);
    if (want > keys_.size()) rehash(want);
  }

  // Inserts or overwrites; returns true if the key was new.
  bool insert(K key, V value) {
    assert(key < kTomb);
    maybe_grow();
    std::size_t i = probe_start(key);
    std::size_t first_tomb = kNoSlot;
    for (;; i = next(i)) {
      K s = keys_[i];
      if (s == key) {
        vals_[i] = std::move(value);
        return false;
      }
      if (s == kTomb && first_tomb == kNoSlot) first_tomb = i;
      if (s == kEmpty) {
        std::size_t at = first_tomb != kNoSlot ? first_tomb : i;
        if (first_tomb == kNoSlot) ++used_;
        keys_[at] = key;
        vals_[at] = std::move(value);
        ++size_;
        return true;
      }
    }
  }

  V* find(K key) {
    std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &vals_[i];
  }
  const V* find(K key) const {
    std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &vals_[i];
  }

  bool erase(K key) {
    std::size_t i = find_slot(key);
    if (i == kNoSlot) return false;
    keys_[i] = kTomb;
    vals_[i] = V{};
    --size_;
    return true;
  }

  // f(key, value&) over every live entry, slot order.
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] < kTomb) f(keys_[i], vals_[i]);
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    std::fill(vals_.begin(), vals_.end(), V{});
    size_ = used_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

  static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 / 10 < n) cap <<= 1;
    return cap;
  }

  std::size_t probe_start(K key) const {
    return static_cast<std::size_t>(
               parmatch::hash64(0xD1B54A32D192ED03ull, key)) &
           (keys_.size() - 1);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (keys_.size() - 1); }

  std::size_t find_slot(K key) const {
    for (std::size_t i = probe_start(key);; i = next(i)) {
      K s = keys_[i];
      if (s == key) return i;
      if (s == kEmpty) return kNoSlot;
    }
  }

  void maybe_grow() {
    if ((used_ + 1) * 10 >= keys_.size() * 7) rehash(capacity_for(size_ + 1));
  }

  void rehash(std::size_t new_cap) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, kEmpty);
    vals_.assign(new_cap, V{});
    used_ = size_;
    for (std::size_t i = 0; i < old_keys.size(); ++i)
      if (old_keys[i] < kTomb) {
        std::size_t j = probe_start(old_keys[i]);
        while (keys_[j] != kEmpty) j = next(j);
        keys_[j] = old_keys[i];
        vals_[j] = std::move(old_vals[i]);
      }
  }

  std::vector<K> keys_;
  std::vector<V> vals_;
  std::size_t size_ = 0;
  std::size_t used_ = 0;
};

}  // namespace parmatch::ct
