// containers/flat_hash_set.h -- phase-concurrent open-addressing hash set
// (DESIGN.md S5). The paper's Section 2 charges O(1) expected per dictionary
// operation and allows whole batches of same-kind operations to run in
// parallel; this set delivers that with linear probing over a power-of-two
// table, CAS slot claiming during batch_insert, and tombstones for erase.
//
// "Phase-concurrent" contract (Shun & Blelloch): operations of the SAME
// kind may run concurrently (batch_insert uses CAS claiming; batch_erase
// writes tombstones with plain atomics); mixing kinds concurrently is not
// supported -- the callers here never do.
//
// Complexity contract: expected O(1) per op at load factor <= 0.7; rehash
// amortized O(1); elements() is O(capacity) and deterministic (slot order).
// Key restrictions: unsigned integral keys; the top two values of the key
// space are reserved as empty/tombstone sentinels.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "parallel/parallel_for.h"
#include "prims/filter.h"
#include "util/rng.h"

namespace parmatch::ct {

template <typename K>
class flat_hash_set {
  static_assert(std::is_unsigned_v<K>, "keys must be unsigned integers");

 public:
  static constexpr K kEmpty = std::numeric_limits<K>::max();
  static constexpr K kTomb = std::numeric_limits<K>::max() - 1;

  flat_hash_set() { rehash(kMinCapacity); }

  void reserve(std::size_t n) {
    std::size_t want = capacity_for(n);
    if (want > slots_.size()) rehash(want);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool insert(K key) {
    assert(key < kTomb);
    maybe_grow(1);
    std::size_t i = probe_start(key);
    std::size_t first_tomb = kNoSlot;
    for (;; i = next(i)) {
      K s = slots_[i];
      if (s == key) return false;
      if (s == kTomb && first_tomb == kNoSlot) first_tomb = i;
      if (s == kEmpty) {
        std::size_t at = first_tomb != kNoSlot ? first_tomb : i;
        if (first_tomb == kNoSlot) ++used_;
        slots_[at] = key;
        ++size_;
        return true;
      }
    }
  }

  bool erase(K key) {
    std::size_t i = find_slot(key);
    if (i == kNoSlot) return false;
    slots_[i] = kTomb;
    --size_;
    return true;
  }

  bool contains(K key) const { return find_slot(key) != kNoSlot; }

  // Parallel batch insert; duplicate keys (within the batch or vs the table)
  // insert once. Phase-concurrent: CAS claims empty slots.
  void batch_insert(std::span<const K> keys) {
    maybe_grow(keys.size());
    std::atomic<std::size_t> added{0}, claimed{0};
    parallel::parallel_for_blocked(0, keys.size(), [&](std::size_t b,
                                                       std::size_t e) {
      std::size_t local_added = 0, local_claimed = 0;
      for (std::size_t j = b; j < e; ++j) {
        K key = keys[j];
        assert(key < kTomb);
        std::size_t i = probe_start(key);
        for (;;) {
          K s = std::atomic_ref<K>(slots_[i]).load(std::memory_order_acquire);
          if (s == key) break;
          if (s == kEmpty) {
            K expected = kEmpty;
            if (std::atomic_ref<K>(slots_[i]).compare_exchange_strong(
                    expected, key, std::memory_order_acq_rel)) {
              ++local_added;
              ++local_claimed;
              break;
            }
            if (expected == key) break;
            continue;  // lost the race to another key; re-read this slot
          }
          i = next(i);  // occupied or tombstone: probing skips both
        }
      }
      added.fetch_add(local_added, std::memory_order_relaxed);
      claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    });
    size_ += added.load();
    used_ += claimed.load();
  }

  void batch_insert(const std::vector<K>& keys) {
    batch_insert(std::span<const K>(keys));
  }

  // Parallel batch erase; keys absent from the table are ignored. Writes
  // tombstones so concurrent probes of other keys stay correct.
  void batch_erase(std::span<const K> keys) {
    std::atomic<std::size_t> removed{0};
    parallel::parallel_for_blocked(0, keys.size(), [&](std::size_t b,
                                                       std::size_t e) {
      std::size_t local = 0;
      for (std::size_t j = b; j < e; ++j) {
        K key = keys[j];
        std::size_t i = probe_start(key);
        for (;;) {
          K s = std::atomic_ref<K>(slots_[i]).load(std::memory_order_acquire);
          if (s == kEmpty) break;
          if (s == key) {
            K expected = key;
            if (std::atomic_ref<K>(slots_[i]).compare_exchange_strong(
                    expected, kTomb, std::memory_order_acq_rel))
              ++local;
            break;  // someone erased it first; either way it is gone
          }
          i = next(i);
        }
      }
      removed.fetch_add(local, std::memory_order_relaxed);
    });
    size_ -= removed.load();
  }

  void batch_erase(const std::vector<K>& keys) {
    batch_erase(std::span<const K>(keys));
  }

  // All elements, in slot order (deterministic for a given history).
  std::vector<K> elements() const {
    return prims::filter(std::span<const K>(slots_),
                         [](K s) { return s < kTomb; });
  }

  void clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = used_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

  static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 / 10 < n) cap <<= 1;
    return cap;
  }

  std::size_t probe_start(K key) const {
    return static_cast<std::size_t>(
               parmatch::hash64(0x9E3779B97F4A7C15ull, key)) &
           (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (slots_.size() - 1); }

  std::size_t find_slot(K key) const {
    for (std::size_t i = probe_start(key);; i = next(i)) {
      K s = slots_[i];
      if (s == key) return i;
      if (s == kEmpty) return kNoSlot;
    }
  }

  void maybe_grow(std::size_t incoming) {
    if ((used_ + incoming) * 10 >= slots_.size() * 7)
      rehash(capacity_for(size_ + incoming));
  }

  void rehash(std::size_t new_cap) {
    std::vector<K> old = std::move(slots_);
    slots_.assign(new_cap, kEmpty);
    used_ = size_;
    for (K s : old)
      if (s < kTomb) {
        std::size_t i = probe_start(s);
        while (slots_[i] != kEmpty) i = next(i);
        slots_[i] = s;
      }
  }

  std::vector<K> slots_;
  std::size_t size_ = 0;  // live keys
  std::size_t used_ = 0;  // live keys + slots lost to tombstones
};

}  // namespace parmatch::ct
