// gen/generators.h -- graph instance generators for the experiment
// harnesses (DESIGN.md Section 4). All are deterministic in their seed and
// O(output) work:
//
//  * erdos_renyi(n, m, seed)          -- m uniform rank-2 edges, no self
//                                        loops (parallel edges allowed);
//  * random_hypergraph(n, m, r, seed) -- m hyperedges of exactly r distinct
//                                        vertices (the Theorem 1.1 regime);
//  * hub_graph(hubs, spokes)          -- `hubs` disjoint stars with `spokes`
//                                        leaves each: the degree-skewed
//                                        shape that forces the settle path;
//  * rmat(scale, m, seed)             -- Chakrabarti-Zhan-Faloutsos R-MAT
//                                        (a=.57 b=.19 c=.19 d=.05), the
//                                        power-law shape of E10.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "util/rng.h"

namespace parmatch::gen {

inline graph::EdgeBatch erdos_renyi(graph::VertexId n, std::size_t m,
                                    std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  graph::EdgeBatch b;
  for (std::size_t i = 0; i < m; ++i) {
    auto u = static_cast<graph::VertexId>(rng.next_below(n));
    auto v = static_cast<graph::VertexId>(rng.next_below(n));
    while (v == u) v = static_cast<graph::VertexId>(rng.next_below(n));
    b.add({u, v});
  }
  return b;
}

inline graph::EdgeBatch random_hypergraph(graph::VertexId n, std::size_t m,
                                          std::size_t r, std::uint64_t seed) {
  Rng rng(seed * 0xBF58476D1CE4E5B9ull + 1);
  graph::EdgeBatch b;
  std::vector<graph::VertexId> picks;
  for (std::size_t i = 0; i < m; ++i) {
    picks.clear();
    while (picks.size() < r) {
      auto v = static_cast<graph::VertexId>(rng.next_below(n));
      bool dup = false;
      for (graph::VertexId p : picks) dup = dup || p == v;
      if (!dup) picks.push_back(v);
    }
    b.add(std::span<const graph::VertexId>(picks));
  }
  return b;
}

// `hubs` disjoint stars: hub i is vertex i; its spokes are vertices
// hubs + i*spokes .. hubs + (i+1)*spokes - 1.
inline graph::EdgeBatch hub_graph(std::size_t hubs, graph::VertexId spokes) {
  graph::EdgeBatch b;
  for (std::size_t h = 0; h < hubs; ++h) {
    auto hub = static_cast<graph::VertexId>(h);
    for (graph::VertexId s = 0; s < spokes; ++s) {
      auto leaf = static_cast<graph::VertexId>(hubs + h * spokes + s);
      b.add({hub, leaf});
    }
  }
  return b;
}

inline graph::EdgeBatch rmat(std::size_t scale, std::size_t m,
                             std::uint64_t seed) {
  Rng rng(seed * 0x94D049BB133111EBull + 1);
  graph::EdgeBatch b;
  while (b.size() < m) {
    graph::VertexId u = 0, v = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      double p = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (p < 0.57) {
        // upper-left: nothing set
      } else if (p < 0.76) {
        v |= 1;
      } else if (p < 0.95) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    b.add({u, v});
  }
  return b;
}

}  // namespace parmatch::gen
