// gen/workloads.h -- update-sequence scripts for the experiment harnesses
// (DESIGN.md Section 4). A Workload is a master EdgeBatch plus a list of
// steps over master INDICES (not pool ids): an insert step names which
// master edges enter; a delete step names master edges that must currently
// be live. bench_common.h's drive_workload maps indices to the ids the
// matcher under test returned -- the same script replays bit-identically
// against every matcher, which is what makes the baseline comparisons fair.
//
// Scripts are oblivious: they are fully determined by (master, seed) before
// the matcher draws a single sample -- the adversary model of Theorem 1.1.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/edge_batch.h"
#include "util/rng.h"

namespace parmatch::gen {

struct Step {
  bool is_insert = true;
  std::vector<std::size_t> edges;  // indices into Workload::master
};

struct Workload {
  graph::EdgeBatch master;
  std::vector<Step> steps;

  std::size_t total_updates() const {
    std::size_t n = 0;
    for (const Step& s : steps) n += s.edges.size();
    return n;
  }
};

// Sustained churn: batches of size `batch`, each an insert batch with
// probability p_insert (taking not-currently-live master edges, recycling
// deletions) or a delete batch of uniformly random live edges. Runs for
// ~3x master.size() updates, so every row of E1/E2 amortizes over multiple
// generations of the structure.
inline Workload churn(graph::EdgeBatch base, std::size_t batch,
                      double p_insert, std::uint64_t seed) {
  Workload w;
  w.master = std::move(base);
  std::size_t m = w.master.size();
  if (m == 0 || batch == 0) return w;
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 1);

  std::vector<std::size_t> available(m);
  for (std::size_t i = 0; i < m; ++i) available[i] = i;
  // Random first-insertion order.
  for (std::size_t i = m; i > 1; --i) {
    std::size_t j = rng.next_below(i);
    std::swap(available[i - 1], available[j]);
  }
  std::vector<std::size_t> live;
  live.reserve(m);

  std::size_t budget = 3 * m;
  std::size_t updates = 0;
  while (updates < budget) {
    bool do_insert = rng.next_double() < p_insert;
    if (live.size() < batch) do_insert = true;  // prefer inserts when thin...
    if (available.empty()) do_insert = false;   // ...but never insert nothing
    // (with batch > m everything can be live AND below batch size: the
    // delete path still makes progress because deletions recycle into
    // `available`; an empty step here would loop forever)
    Step step;
    step.is_insert = do_insert;
    if (do_insert) {
      std::size_t k = std::min(batch, available.size());
      for (std::size_t i = 0; i < k; ++i) {
        step.edges.push_back(available.back());
        available.pop_back();
      }
      live.insert(live.end(), step.edges.begin(), step.edges.end());
    } else {
      std::size_t k = std::min(batch, live.size());
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = rng.next_below(live.size());
        std::swap(live[j], live.back());
        step.edges.push_back(live.back());
        live.pop_back();
      }
      available.insert(available.end(), step.edges.begin(), step.edges.end());
    }
    updates += step.edges.size();
    w.steps.push_back(std::move(step));
  }
  return w;
}

// One update of a flattened script: which master edge, and which way.
struct Update {
  bool is_insert = true;
  std::size_t edge = 0;  // index into Workload::master
};

// Flattens a stepped script into a per-update stream, preserving order --
// the shape the serving front-end (serve/service.h) ingests: the open-loop
// benches replay a flattened churn script one update at a time and let the
// batch former re-form batches by arrival, not by script step.
inline std::vector<Update> flatten(const Workload& w) {
  std::vector<Update> out;
  out.reserve(w.total_updates());
  for (const Step& s : w.steps)
    for (std::size_t i : s.edges) out.push_back(Update{s.is_insert, i});
  return out;
}

// Arrival models for the open-loop serving benches (E12/E13). Offsets are
// nanoseconds from stream start; deterministic in (n, rate, model, seed).
enum class ArrivalModel { kPoisson, kBursty, kFlashCrowd };

// kPoisson: iid exponential inter-arrival gaps at `rate` updates/s.
// kBursty: on/off-modulated Poisson -- arrivals only during the first
// `duty` fraction of each `period_us` window, at rate/duty, so the
// long-run mean rate is still `rate` but the instantaneous offered rate is
// 1/duty times higher (the queue-absorption stress case).
// kFlashCrowd: piecewise-rate Poisson over the UPDATE COUNT -- the first
// 40% of updates arrive at `rate`, the middle 20% at 8x `rate` (the
// crowd), the final 40% back at `rate`. One sustained mid-stream spike
// rather than periodic bursts: the overload bench's shed-then-recover
// scenario, where admission must degrade during the crowd and the state
// machine must return to healthy afterward.
inline std::vector<std::uint64_t> arrival_times_ns(
    std::size_t n, double rate, ArrivalModel model, std::uint64_t seed,
    double duty = 0.25, double period_us = 4000.0) {
  std::vector<std::uint64_t> out(n);
  if (n == 0 || rate <= 0) return out;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xA12);
  double lambda = model == ArrivalModel::kBursty ? rate / duty : rate;
  double period_ns = period_us * 1000.0;
  double on_ns = period_ns * duty;
  std::size_t crowd_lo = n * 2 / 5, crowd_hi = n * 3 / 5;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double lam = lambda;
    if (model == ArrivalModel::kFlashCrowd && i >= crowd_lo && i < crowd_hi)
      lam = lambda * 8.0;
    // Exponential gap via inverse CDF; clamp u away from 0.
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    t += -std::log(u) / lam * 1e9;
    if (model == ArrivalModel::kBursty) {
      // Fold any arrival past the on-phase into the next period's start.
      double phase = t - std::floor(t / period_ns) * period_ns;
      if (phase >= on_ns)
        t += period_ns - phase;
    }
    out[i] = static_cast<std::uint64_t>(t);
  }
  return out;
}

// Streams the master edges through a window of `window` batches: insert
// batch i, and once the window is full delete batch i-window, then drain.
// Matched edges keep dying while total degree stays high -- the sustained
// settle workload of E10.
inline Workload sliding_window(graph::EdgeBatch base, std::size_t batch,
                               std::size_t window) {
  Workload w;
  w.master = std::move(base);
  std::size_t m = w.master.size();
  if (m == 0 || batch == 0) return w;
  if (window == 0) window = 1;  // window 0 would delete batches pre-insert
  std::size_t nbatches = (m + batch - 1) / batch;
  auto batch_indices = [&](std::size_t b) {
    Step s;
    for (std::size_t i = b * batch; i < std::min(m, (b + 1) * batch); ++i)
      s.edges.push_back(i);
    return s;
  };
  for (std::size_t b = 0; b < nbatches; ++b) {
    Step ins = batch_indices(b);
    ins.is_insert = true;
    w.steps.push_back(std::move(ins));
    if (b + 1 >= window) {
      Step del = batch_indices(b + 1 - window);
      del.is_insert = false;
      w.steps.push_back(std::move(del));
    }
  }
  for (std::size_t b = nbatches + 1 > window ? nbatches + 1 - window : 0;
       b < nbatches; ++b) {
    Step del = batch_indices(b);
    del.is_insert = false;
    w.steps.push_back(std::move(del));
  }
  return w;
}

}  // namespace parmatch::gen
