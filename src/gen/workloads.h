// gen/workloads.h -- update-sequence scripts for the experiment harnesses
// (DESIGN.md Section 4). A Workload is a master EdgeBatch plus a list of
// steps over master INDICES (not pool ids): an insert step names which
// master edges enter; a delete step names master edges that must currently
// be live. bench_common.h's drive_workload maps indices to the ids the
// matcher under test returned -- the same script replays bit-identically
// against every matcher, which is what makes the baseline comparisons fair.
//
// Scripts are oblivious: they are fully determined by (master, seed) before
// the matcher draws a single sample -- the adversary model of Theorem 1.1.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/edge_batch.h"
#include "util/rng.h"

namespace parmatch::gen {

struct Step {
  bool is_insert = true;
  std::vector<std::size_t> edges;  // indices into Workload::master
};

struct Workload {
  graph::EdgeBatch master;
  std::vector<Step> steps;

  std::size_t total_updates() const {
    std::size_t n = 0;
    for (const Step& s : steps) n += s.edges.size();
    return n;
  }
};

// Sustained churn: batches of size `batch`, each an insert batch with
// probability p_insert (taking not-currently-live master edges, recycling
// deletions) or a delete batch of uniformly random live edges. Runs for
// ~3x master.size() updates, so every row of E1/E2 amortizes over multiple
// generations of the structure.
inline Workload churn(graph::EdgeBatch base, std::size_t batch,
                      double p_insert, std::uint64_t seed) {
  Workload w;
  w.master = std::move(base);
  std::size_t m = w.master.size();
  if (m == 0 || batch == 0) return w;
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 1);

  std::vector<std::size_t> available(m);
  for (std::size_t i = 0; i < m; ++i) available[i] = i;
  // Random first-insertion order.
  for (std::size_t i = m; i > 1; --i) {
    std::size_t j = rng.next_below(i);
    std::swap(available[i - 1], available[j]);
  }
  std::vector<std::size_t> live;
  live.reserve(m);

  std::size_t budget = 3 * m;
  std::size_t updates = 0;
  while (updates < budget) {
    bool do_insert = rng.next_double() < p_insert;
    if (live.size() < batch) do_insert = true;  // prefer inserts when thin...
    if (available.empty()) do_insert = false;   // ...but never insert nothing
    // (with batch > m everything can be live AND below batch size: the
    // delete path still makes progress because deletions recycle into
    // `available`; an empty step here would loop forever)
    Step step;
    step.is_insert = do_insert;
    if (do_insert) {
      std::size_t k = std::min(batch, available.size());
      for (std::size_t i = 0; i < k; ++i) {
        step.edges.push_back(available.back());
        available.pop_back();
      }
      live.insert(live.end(), step.edges.begin(), step.edges.end());
    } else {
      std::size_t k = std::min(batch, live.size());
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = rng.next_below(live.size());
        std::swap(live[j], live.back());
        step.edges.push_back(live.back());
        live.pop_back();
      }
      available.insert(available.end(), step.edges.begin(), step.edges.end());
    }
    updates += step.edges.size();
    w.steps.push_back(std::move(step));
  }
  return w;
}

// Streams the master edges through a window of `window` batches: insert
// batch i, and once the window is full delete batch i-window, then drain.
// Matched edges keep dying while total degree stays high -- the sustained
// settle workload of E10.
inline Workload sliding_window(graph::EdgeBatch base, std::size_t batch,
                               std::size_t window) {
  Workload w;
  w.master = std::move(base);
  std::size_t m = w.master.size();
  if (m == 0 || batch == 0) return w;
  if (window == 0) window = 1;  // window 0 would delete batches pre-insert
  std::size_t nbatches = (m + batch - 1) / batch;
  auto batch_indices = [&](std::size_t b) {
    Step s;
    for (std::size_t i = b * batch; i < std::min(m, (b + 1) * batch); ++i)
      s.edges.push_back(i);
    return s;
  };
  for (std::size_t b = 0; b < nbatches; ++b) {
    Step ins = batch_indices(b);
    ins.is_insert = true;
    w.steps.push_back(std::move(ins));
    if (b + 1 >= window) {
      Step del = batch_indices(b + 1 - window);
      del.is_insert = false;
      w.steps.push_back(std::move(del));
    }
  }
  for (std::size_t b = nbatches + 1 > window ? nbatches + 1 - window : 0;
       b < nbatches; ++b) {
    Step del = batch_indices(b);
    del.is_insert = false;
    w.steps.push_back(std::move(del));
  }
  return w;
}

}  // namespace parmatch::gen
