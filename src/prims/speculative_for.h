// prims/speculative_for.h -- the deterministic-reservations fixed-point
// engine (Blelloch-Fineman-Gibbons-Shun, "Internally deterministic parallel
// algorithms can be fast"; parlaylib's speculative_for is the reference
// idiom). A computation over items [start, end) where each item wants to
// acquire a set of shared slots and perform a commit, and conflicts are
// resolved BY ITEM INDEX: lower index always wins, so the final state is
// exactly what a sequential loop over the items in index order would
// produce, regardless of thread count, schedule, or prefix size.
//
// The engine runs rounds over a sliding prefix of the index range. Each
// round has three data-parallel phases plus one sequential bookkeeping
// sweep, all over the current prefix:
//
//   1. reserve:  step.reserve(i, frontier) inspects shared state and either
//                finishes the item (kDone), asks to be retried without
//                competing (kRetry), or writes index-min reservations into
//                its slots and asks for a commit attempt (kTryCommit).
//                `frontier` is true exactly for the lowest still-active
//                index, i.e. when every lower item has already finished --
//                the one situation where "blocked right now" is known to be
//                "blocked in the sequential order" (the steal consumer's
//                drop rule).
//   2. commit:   step.commit(i) checks its reservations; holding every slot
//                means no lower-index item in flight competes for them, so
//                the item may apply any vertex-/slot-local writes and
//                return true. Losers release the slots they hold and return
//                false (retried next round).
//   3. finalize: step.finalize(i), sequentially in ascending index order,
//                for every item whose commit succeeded -- the hook for
//                order-sensitive bookkeeping (list appends, delta sinks,
//                keyed redraws) that must not run inside a forked phase.
//   4. pack:     failed items are packed, order-preserving, into the retry
//                queue and lead the next round's prefix; fresh indices
//                refill the tail. Progress is guaranteed: the frontier item
//                either finishes in reserve or wins every slot it wants.
//
// Round structure is a pure function of (items, shared state, prefix cap):
// the retry queue is packed in index order and reservations are
// commutative min-writes, so rounds, retries, and every step decision are
// bit-identical across thread counts and PARMATCH_EXEC_MODE settings. The
// prefix cap -- max(n / PARMATCH_SPEC_GRAIN + 1, kMinSpecPrefix), parlay's
// granularity rule with a small-input floor -- IS part of the trajectory
// (a retried item may key RNG draws by round), so it comes from a fixed
// env knob, never from machine calibration.
//
// Execution strategy (DESIGN.md S11): each round consults
// parallel::run_spec_round_seq(size) once; below the cutover all three
// phases run inline with plain memory ops, above it they fork, with the
// reservation helpers switching between plain min-writes and CAS-min on
// std::atomic_ref. Scratch (two retry queues, the status bytes, the pack
// counters) is carved from a caller ScratchArena once per invocation, so a
// warm engine allocates nothing (tests/test_alloc_free.cpp).
//
// Complexity contract: O(n + retries) work; each round charges
// kSpecRoundPhases * model_depth(prefix) of measured depth through the
// optional depth pointer. Expected retries are O(n) for the matching-style
// consumers (a conflict loser's competitor committed, so conflicts halve).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <utility>

#include "parallel/cost_model.h"
#include "parallel/parallel_for.h"
#include "prims/filter.h"
#include "util/scratch_arena.h"

namespace parmatch::prims {

// What reserve(i) tells the engine (see the round anatomy above).
enum class SpecStatus : std::uint8_t {
  kDone = 0,       // finished: already satisfied / nothing left to want
  kRetry = 1,      // cannot decide yet; retry next round without reserving
  kTryCommit = 2,  // reservations written; attempt commit this round
};

struct SpecStats {
  std::size_t rounds = 0;     // reserve/commit rounds executed
  std::size_t retries = 0;    // item-rounds carried into a retry queue
  std::size_t committed = 0;  // items whose commit succeeded
};

// Phases charged per round (reserve + commit + retry pack; the sequential
// finalize sweep rides the commit charge like every other sequential
// bookkeeping site).
inline constexpr std::size_t kSpecRoundPhases = 3;

// Granularity knob: the prefix cap is max(n / grain + 1, kMinSpecPrefix),
// so `grain` is roughly the number of rounds a large conflict-free run
// takes. Small grain = wide prefixes = more parallelism but more
// speculation; large grain = narrow prefixes closer to the sequential
// order. The floor keeps small inputs (the latency-serving regime's k<=64
// batches) in a single round instead of degenerating to one item per
// round. The default follows parlay's granularity rule-of-thumb. Because
// the prefix shape is part of the deterministic trajectory, neither value
// may ever be machine-derived.
inline constexpr std::size_t kDefaultSpecGrain = 8;
inline constexpr std::size_t kMinSpecPrefix = 64;

namespace detail {

inline std::atomic<std::size_t>& spec_grain_slot() {
  static std::atomic<std::size_t> g{[] {
    if (const char* env = std::getenv("PARMATCH_SPEC_GRAIN")) {
      std::size_t v = std::strtoull(env, nullptr, 10);
      if (v > 0) return v;
    }
    return kDefaultSpecGrain;
  }()};
  return g;
}

}  // namespace detail

// The process-wide prefix granularity (PARMATCH_SPEC_GRAIN at startup).
inline std::size_t spec_grain() {
  return detail::spec_grain_slot().load(std::memory_order_relaxed);
}

// Programmatic override (benches/tests); 0 restores the default. NOTE:
// unlike set_exec_mode this CAN change trajectories (round-keyed draws),
// so comparisons must hold the grain fixed.
inline void set_spec_grain(std::size_t g) {
  detail::spec_grain_slot().store(g == 0 ? kDefaultSpecGrain : g,
                                  std::memory_order_relaxed);
}

inline std::size_t spec_prefix_cap(std::size_t n, std::size_t grain) {
  std::size_t cap = n / (grain == 0 ? kDefaultSpecGrain : grain) + 1;
  return cap < kMinSpecPrefix ? kMinSpecPrefix : cap;
}

// ---- reservation slot helpers -------------------------------------------
//
// A slot is any 32-bit cell whose empty value is kEmptySpecSlot (which
// doubles as graph::kInvalidEdge, so VertexHot::min_edge serves directly as
// a reservation slot). Reservations are index-min writes: plain memory when
// the round runs inline (`seq`), CAS-min otherwise -- both converge to the
// same minimum, the determinism contract's usual pairing.

inline constexpr std::uint32_t kEmptySpecSlot = 0xFFFF'FFFFu;

inline void reserve_slot(std::uint32_t& slot, std::uint32_t idx, bool seq) {
  if (seq) {
    if (idx < slot) slot = idx;  // empty is the max value, so min-write
    return;
  }
  std::atomic_ref<std::uint32_t> a(slot);
  std::uint32_t cur = a.load(std::memory_order_relaxed);
  while (idx < cur) {
    if (a.compare_exchange_weak(cur, idx, std::memory_order_acq_rel)) break;
  }
}

inline bool slot_holds(const std::uint32_t& slot, std::uint32_t idx,
                       bool seq) {
  if (seq) return slot == idx;
  return std::atomic_ref<const std::uint32_t>(slot).load(
             std::memory_order_acquire) == idx;
}

// Release a slot this item holds. Safe concurrently with other items'
// slot_holds reads: the slot can only transition idx -> empty, and every
// reader compares against its OWN index, so observing either value yields
// the correct (losing) answer.
inline void release_slot(std::uint32_t& slot, bool seq) {
  if (seq) {
    slot = kEmptySpecSlot;
    return;
  }
  std::atomic_ref<std::uint32_t>(slot).store(kEmptySpecSlot,
                                             std::memory_order_release);
}

// ---- the engine ---------------------------------------------------------
//
// Step contract (all four members required):
//   void begin_round(std::uint64_t round, bool seq);
//       Sequential, once per round before the reserve phase. `round` is
//       0-based within this invocation; `seq` tells the step which memory
//       discipline the round's phases will use (pass it to the slot
//       helpers). Typical use: bump a round epoch for keyed RNG draws.
//   SpecStatus reserve(std::size_t i, bool frontier);
//   bool commit(std::size_t i);   // true = success (finalize follows)
//   void finalize(std::size_t i); // sequential, ascending, successes only
//
// `grain` 0 means the process-wide spec_grain(). `depth` (optional)
// accumulates kSpecRoundPhases * model_depth(prefix) per round.
template <typename Step>
SpecStats speculative_for(Step& step, std::size_t start, std::size_t end,
                          ScratchArena& arena, std::size_t grain = 0,
                          std::size_t* depth = nullptr) {
  SpecStats st;
  if (end <= start) return st;
  std::size_t n = end - start;
  if (end >= kEmptySpecSlot) {
    // Item indices are written into 32-bit reservation slots; past the
    // empty sentinel the cast truncates and reservations silently collide,
    // so fail loudly in every build instead of assert-only.
    std::fprintf(stderr,
                 "parmatch: speculative_for range end %zu does not fit the "
                 "32-bit reservation slots\n",
                 end);
    std::abort();
  }
  std::size_t cap = spec_prefix_cap(n, grain);
  if (cap > n) cap = n;
  // Ping-pong retry queues + per-item round status, allocated once. The
  // pack grain is captured here and reused for every round: default_grain
  // is non-monotone in n and moves with the live root count, so sizing the
  // counters from one call and packing with another could need more blocks
  // than were allocated.
  auto carry_a = arena.alloc<std::uint32_t>(cap);
  auto carry_b = arena.alloc<std::uint32_t>(cap);
  auto status = arena.alloc<std::uint8_t>(cap);
  std::size_t pack_grain = parallel::default_grain(cap);
  std::size_t max_blocks = (cap + pack_grain - 1) / pack_grain;
  auto counts = arena.alloc<std::size_t>(max_blocks);

  // Status bytes: SpecStatus::kDone (0) and kRetry (1) pass through; a
  // successful commit rewrites kTryCommit to kStCommitted. Done bytes are
  // never inspected again, so only the latter two get named here.
  constexpr std::uint8_t kStRetry = 1, kStCommitted = 3;
  std::uint32_t* cur = carry_a.data();
  std::uint32_t* nxt = carry_b.data();
  std::size_t nkeep = 0;
  std::size_t next = start;
  std::uint64_t round = 0;

  while (nkeep > 0 || next < end) {
    std::size_t size = nkeep + (end - next);
    if (size > cap) size = cap;
    std::size_t fresh = size - nkeep;
    const bool seq = parallel::run_spec_round_seq(size);
    step.begin_round(round, seq);
    // The retry queue is packed in index order and every retried index is
    // below `next`, so item(0) is the globally lowest active index.
    auto item = [&](std::size_t i) -> std::size_t {
      return i < nkeep ? cur[i] : next + (i - nkeep);
    };
    if (seq) {
      for (std::size_t i = 0; i < size; ++i)
        status[i] = static_cast<std::uint8_t>(step.reserve(item(i), i == 0));
      for (std::size_t i = 0; i < size; ++i)
        if (status[i] == static_cast<std::uint8_t>(SpecStatus::kTryCommit))
          status[i] = step.commit(item(i)) ? kStCommitted : kStRetry;
    } else {
      parallel::parallel_for_blocked(0, size,
                                     [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          status[i] =
              static_cast<std::uint8_t>(step.reserve(item(i), i == 0));
      });
      parallel::parallel_for_blocked(0, size,
                                     [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          if (status[i] == static_cast<std::uint8_t>(SpecStatus::kTryCommit))
            status[i] = step.commit(item(i)) ? kStCommitted : kStRetry;
      });
    }
    for (std::size_t i = 0; i < size; ++i)
      if (status[i] == kStCommitted) {
        step.finalize(item(i));
        ++st.committed;
      }
    // Pack the retries (order-preserving, so the queue stays index-sorted).
    std::size_t kept;
    if (seq) {
      kept = 0;
      for (std::size_t i = 0; i < size; ++i)
        if (status[i] == kStRetry)
          nxt[kept++] = static_cast<std::uint32_t>(item(i));
    } else {
      std::size_t blocks = (size + pack_grain - 1) / pack_grain;
      auto keep = [&](std::size_t i) { return status[i] == kStRetry; };
      kept =
          detail::pack_offsets(size, pack_grain, counts.first(blocks), keep);
      detail::pack_scatter(
          size, pack_grain,
          std::span<const std::size_t>(counts.first(blocks)), nxt, keep,
          [&](std::size_t i) {
            return static_cast<std::uint32_t>(item(i));
          });
    }
    if (depth) *depth += kSpecRoundPhases * parallel::model_depth(size);
    st.retries += kept;
    ++st.rounds;
    ++round;
    next += fresh;
    nkeep = kept;
    std::swap(cur, nxt);
  }
  return st;
}

}  // namespace parmatch::prims
