// prims/group_by.h -- semisort: bucket values by integer key (DESIGN.md
// S3). The matcher uses this to turn a flat (vertex, edge) incidence list
// into per-vertex groups in one shot -- the Section 2 "collect by endpoint"
// primitive.
//
// Complexity contract: O(n) work via radix sort on the key bits actually
// used; deterministic output (stable sort), grouped values contiguous.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"
#include "prims/filter.h"
#include "prims/radix_sort.h"
#include "util/scratch_arena.h"

namespace parmatch::prims {

template <typename K, typename V>
struct Grouped {
  std::vector<K> keys;                  // distinct keys, ascending
  std::vector<std::uint32_t> offsets;   // keys.size()+1 offsets into values
  std::vector<V> values;

  std::size_t num_groups() const { return keys.size(); }
  std::span<const V> group(std::size_t g) const {
    return {values.data() + offsets[g], values.data() + offsets[g + 1]};
  }
};

template <typename K, typename V>
Grouped<K, V> group_by(std::span<const K> keys, std::span<const V> values) {
  Grouped<K, V> out;
  std::size_t n = keys.size();
  if (n == 0) {
    out.offsets.push_back(0);
    return out;
  }
  struct Pair {
    K k;
    V v;
  };
  std::vector<Pair> pairs(n);
  K maxk = K{};
  for (std::size_t i = 0; i < n; ++i) {  // max is cheap; pairs fill parallel
    if (keys[i] > maxk) maxk = keys[i];
  }
  parallel::parallel_for(0, n, [&](std::size_t i) {
    pairs[i] = Pair{keys[i], values[i]};
  });
  int bits = std::bit_width(static_cast<std::uint64_t>(maxk));
  if (bits == 0) bits = 1;
  radix_sort(pairs, [](const Pair& p) { return static_cast<std::uint64_t>(p.k); },
             bits);
  out.values.resize(n);
  out.offsets.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = pairs[i].v;
    if (i == 0 || pairs[i].k != pairs[i - 1].k) {
      out.keys.push_back(pairs[i].k);
      if (i != 0) out.offsets.push_back(static_cast<std::uint32_t>(i));
    }
  }
  out.offsets.push_back(static_cast<std::uint32_t>(n));
  return out;
}

// Arena semisort: same grouping, but every buffer (pair staging, sort
// scratch, outputs) is carved from the caller's ScratchArena, and the
// boundary detection runs as a parallel pack instead of a sequential scan.
// View spans are valid until the arena resets.
template <typename K, typename V>
struct GroupedView {
  std::span<const K> keys;                 // distinct keys, ascending
  std::span<const std::uint32_t> offsets;  // num_groups()+1 offsets
  std::span<const V> values;

  std::size_t num_groups() const { return keys.size(); }
  std::span<const V> group(std::size_t g) const {
    return {values.data() + offsets[g], values.data() + offsets[g + 1]};
  }
};

// `max_key_bound`, when nonzero, is a caller-known upper bound on the keys
// (e.g. the graph's vertex bound) and skips the sequential max scan.
template <typename K, typename V>
GroupedView<K, V> group_by(std::span<const K> keys, std::span<const V> values,
                           ScratchArena& arena,
                           std::uint64_t max_key_bound = 0) {
  GroupedView<K, V> out;
  std::size_t n = keys.size();
  if (n == 0) {
    auto offs = arena.alloc<std::uint32_t>(1);
    offs[0] = 0;
    out.offsets = offs;
    return out;
  }
  struct Pair {
    K k;
    V v;
  };
  auto pairs = arena.alloc<Pair>(n);
  std::uint64_t maxk = max_key_bound;
  if (maxk == 0) {
    for (std::size_t i = 0; i < n; ++i) {  // fallback: sequential max
      if (static_cast<std::uint64_t>(keys[i]) > maxk)
        maxk = static_cast<std::uint64_t>(keys[i]);
    }
  }
  parallel::parallel_for(0, n, [&](std::size_t i) {
    pairs[i] = Pair{keys[i], values[i]};
  });
  int bits = std::bit_width(static_cast<std::uint64_t>(maxk));
  if (bits == 0) bits = 1;
  radix_sort(std::span<Pair>(pairs),
             [](const Pair& p) { return static_cast<std::uint64_t>(p.k); },
             bits, arena);
  auto vals = arena.alloc<V>(n);
  parallel::parallel_for(0, n,
                         [&](std::size_t i) { vals[i] = pairs[i].v; });
  // Group boundaries as a parallel pack over indices.
  auto starts = pack_index<std::uint32_t>(
      n,
      [&](std::size_t i) { return i == 0 || pairs[i].k != pairs[i - 1].k; },
      [](std::size_t i) { return static_cast<std::uint32_t>(i); }, arena);
  std::size_t ng = starts.size();
  auto gkeys = arena.alloc<K>(ng);
  auto offs = arena.alloc<std::uint32_t>(ng + 1);
  parallel::parallel_for(0, ng, [&](std::size_t g) {
    gkeys[g] = pairs[starts[g]].k;
    offs[g] = starts[g];
  });
  offs[ng] = static_cast<std::uint32_t>(n);
  out.keys = gkeys;
  out.offsets = offs;
  out.values = vals;
  return out;
}

}  // namespace parmatch::prims
