// prims/group_by.h -- semisort: bucket values by integer key (DESIGN.md
// S3). The matcher uses this to turn a flat (vertex, edge) incidence list
// into per-vertex groups in one shot -- the Section 2 "collect by endpoint"
// primitive.
//
// Complexity contract: O(n) work via radix sort on the key bits actually
// used; deterministic output (stable sort), grouped values contiguous.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"
#include "prims/radix_sort.h"

namespace parmatch::prims {

template <typename K, typename V>
struct Grouped {
  std::vector<K> keys;                  // distinct keys, ascending
  std::vector<std::uint32_t> offsets;   // keys.size()+1 offsets into values
  std::vector<V> values;

  std::size_t num_groups() const { return keys.size(); }
  std::span<const V> group(std::size_t g) const {
    return {values.data() + offsets[g], values.data() + offsets[g + 1]};
  }
};

template <typename K, typename V>
Grouped<K, V> group_by(std::span<const K> keys, std::span<const V> values) {
  Grouped<K, V> out;
  std::size_t n = keys.size();
  if (n == 0) {
    out.offsets.push_back(0);
    return out;
  }
  struct Pair {
    K k;
    V v;
  };
  std::vector<Pair> pairs(n);
  K maxk = K{};
  for (std::size_t i = 0; i < n; ++i) {  // max is cheap; pairs fill parallel
    if (keys[i] > maxk) maxk = keys[i];
  }
  parallel::parallel_for(0, n, [&](std::size_t i) {
    pairs[i] = Pair{keys[i], values[i]};
  });
  int bits = std::bit_width(static_cast<std::uint64_t>(maxk));
  if (bits == 0) bits = 1;
  radix_sort(pairs, [](const Pair& p) { return static_cast<std::uint64_t>(p.k); },
             bits);
  out.values.resize(n);
  out.offsets.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = pairs[i].v;
    if (i == 0 || pairs[i].k != pairs[i - 1].k) {
      out.keys.push_back(pairs[i].k);
      if (i != 0) out.offsets.push_back(static_cast<std::uint32_t>(i));
    }
  }
  out.offsets.push_back(static_cast<std::uint32_t>(n));
  return out;
}

}  // namespace parmatch::prims
