// prims/radix_sort.h -- stable LSD radix sort by an integer key function
// (DESIGN.md S3). This is the O(n)-work sort the paper's primitives budget
// assumes for bucketing edges by endpoint or by priority; stability is what
// keeps downstream group_by and random_permutation deterministic regardless
// of worker count.
//
// Two entry points: the vector one (staging buffer allocated per call) and
// the arena one, whose staging buffer and histograms come from a caller
// ScratchArena so hot-path sorts allocate nothing (DESIGN.md S7).
//
// Complexity contract: O(n * bits/8) work; each 8-bit pass is a blocked
// histogram + scan + stable scatter with O(P * 256 + n/P) span.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"
#include "util/scratch_arena.h"

namespace parmatch::prims {

// Depth-model phases charged for one full-width 32-bit radix sort:
// ceil(32/8) passes, each a histogram + stable-scatter phase pair. The
// charge stays at the 32-bit worst case even when a sort only touches the
// bits its key space uses; 64-bit keys charge 2x. Every sort site uses
// this one convention so measured_depth is comparable across phases.
inline constexpr std::size_t kRadixSortPhases32 = 8;

namespace detail {

// Below this size the blocked histogram machinery (a 256-counter clear per
// pass) dwarfs the sort itself; a stable binary-insertion pass is faster
// and equally deterministic. Hot-path calls (victim dedup, settle dedup,
// bloat ordering) are usually this small.
inline constexpr std::size_t kRadixSmallCutoff = 64;

template <typename T, typename KeyFn>
void insertion_sort(T* v, std::size_t n, KeyFn&& key) {
  for (std::size_t i = 1; i < n; ++i) {
    T x = v[i];
    std::uint64_t kx = key(x);
    std::size_t j = i;
    while (j > 0 && key(v[j - 1]) > kx) {  // strict: equal keys keep order
      v[j] = v[j - 1];
      --j;
    }
    v[j] = x;
  }
}

// Core passes over (data, buf). Returns true if the sorted result ended in
// buf (odd number of passes).
template <typename T, typename KeyFn>
bool radix_passes(T* data, T* buf, std::size_t n, KeyFn&& key, int bits,
                  std::uint32_t* hist, std::size_t blocks,
                  std::size_t grain) {
  constexpr int kRadixBits = 8;
  constexpr std::size_t kBuckets = 1u << kRadixBits;
  T* src = data;
  T* dst = buf;
  bool swapped = false;
  for (int shift = 0; shift < bits; shift += kRadixBits) {
    std::uint64_t mask = kBuckets - 1;
    // Full clear: the scheduler may deliver the range as fewer, larger
    // chunks than there are blocks (e.g. the sequential fallback), so
    // zeroing only visited blocks would leave stale counts behind.
    std::memset(hist, 0, blocks * kBuckets * sizeof(std::uint32_t));
    parallel::parallel_for_blocked(
        0, n,
        [&](std::size_t b, std::size_t e) {
          std::uint32_t* h = hist + (b / grain) * kBuckets;
          for (std::size_t i = b; i < e; ++i)
            ++h[(key(src[i]) >> shift) & mask];
        },
        grain);
    // Column-major exclusive scan over (bucket, block) so the scatter below
    // is stable: all of bucket b's elements from block 0 precede block 1's.
    std::uint32_t total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket)
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        std::uint32_t& h = hist[blk * kBuckets + bucket];
        std::uint32_t c = h;
        h = total;
        total += c;
      }
    parallel::parallel_for_blocked(
        0, n,
        [&](std::size_t b, std::size_t e) {
          std::uint32_t* h = hist + (b / grain) * kBuckets;
          for (std::size_t i = b; i < e; ++i)
            dst[h[(key(src[i]) >> shift) & mask]++] = src[i];
        },
        grain);
    std::swap(src, dst);
    swapped = !swapped;
  }
  return swapped;
}

}  // namespace detail

// Sorts v so that key(v[i]) is non-decreasing, considering only the low
// `bits` bits of the key. Stable.
template <typename T, typename KeyFn>
void radix_sort(std::vector<T>& v, KeyFn&& key, int bits = 64) {
  constexpr std::size_t kBuckets = 256;
  std::size_t n = v.size();
  if (n <= 1) return;
  if (n <= detail::kRadixSmallCutoff) {
    detail::insertion_sort(v.data(), n, key);
    return;
  }
  std::vector<T> buf(n);
  std::size_t grain = parallel::default_grain(n);
  if (grain < 1024) grain = 1024;  // see the arena variant
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<std::uint32_t> hist(blocks * kBuckets);
  if (detail::radix_passes(v.data(), buf.data(), n, key, bits, hist.data(),
                           blocks, grain))
    v.swap(buf);
}

// In-place arena variant: staging and histograms are arena scratch. After
// an odd number of passes the result is copied back in parallel, so the
// caller's span always holds the sorted data.
template <typename T, typename KeyFn>
void radix_sort(std::span<T> v, KeyFn&& key, int bits, ScratchArena& arena) {
  constexpr std::size_t kBuckets = 256;
  std::size_t n = v.size();
  if (n <= 1) return;
  if (n <= detail::kRadixSmallCutoff) {
    detail::insertion_sort(v.data(), n, key);
    return;
  }
  auto buf = arena.alloc<T>(n);
  // Histogram memory is blocks * 1 KiB and every pass clears it; a grain
  // floor keeps small sorts from paying for parallelism they cannot use.
  std::size_t grain = parallel::default_grain(n);
  if (grain < 1024) grain = 1024;
  std::size_t blocks = (n + grain - 1) / grain;
  auto hist = arena.alloc<std::uint32_t>(blocks * kBuckets);
  if (detail::radix_passes(v.data(), buf.data(), n, key, bits, hist.data(),
                           blocks, grain)) {
    parallel::parallel_for_blocked(0, n, [&](std::size_t b, std::size_t e) {
      std::memcpy(v.data() + b, buf.data() + b, (e - b) * sizeof(T));
    });
  }
}

}  // namespace parmatch::prims
