// prims/radix_sort.h -- stable LSD radix sort by an integer key function
// (DESIGN.md S3). This is the O(n)-work sort the paper's primitives budget
// assumes for bucketing edges by endpoint or by priority; stability is what
// keeps downstream group_by and random_permutation deterministic regardless
// of worker count.
//
// Complexity contract: O(n * bits/8) work; each 8-bit pass is a blocked
// histogram + scan + stable scatter with O(P * 256 + n/P) span.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace parmatch::prims {

// Sorts v so that key(v[i]) is non-decreasing, considering only the low
// `bits` bits of the key. Stable.
template <typename T, typename KeyFn>
void radix_sort(std::vector<T>& v, KeyFn&& key, int bits = 64) {
  constexpr int kRadixBits = 8;
  constexpr std::size_t kBuckets = 1u << kRadixBits;
  std::size_t n = v.size();
  if (n <= 1) return;

  std::vector<T> buf(n);
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<std::uint32_t> hist(blocks * kBuckets);

  T* src = v.data();
  T* dst = buf.data();
  bool swapped = false;
  for (int shift = 0; shift < bits; shift += kRadixBits) {
    std::uint64_t mask = kBuckets - 1;
    // Full clear: the scheduler may deliver the range as fewer, larger
    // chunks than there are blocks (e.g. the sequential fallback), so
    // zeroing only visited blocks would leave stale counts behind.
    std::fill(hist.begin(), hist.end(), 0);
    parallel::parallel_for_blocked(
        0, n,
        [&](std::size_t b, std::size_t e) {
          std::uint32_t* h = hist.data() + (b / grain) * kBuckets;
          for (std::size_t i = b; i < e; ++i)
            ++h[(key(src[i]) >> shift) & mask];
        },
        grain);
    // Column-major exclusive scan over (bucket, block) so the scatter below
    // is stable: all of bucket b's elements from block 0 precede block 1's.
    std::uint32_t total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket)
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        std::uint32_t& h = hist[blk * kBuckets + bucket];
        std::uint32_t c = h;
        h = total;
        total += c;
      }
    parallel::parallel_for_blocked(
        0, n,
        [&](std::size_t b, std::size_t e) {
          std::uint32_t* h = hist.data() + (b / grain) * kBuckets;
          for (std::size_t i = b; i < e; ++i)
            dst[h[(key(src[i]) >> shift) & mask]++] = src[i];
        },
        grain);
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) v.swap(buf);
}

}  // namespace parmatch::prims
