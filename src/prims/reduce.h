// prims/reduce.h -- reduction, exclusive scan, and iota (DESIGN.md S3).
// These are the textbook O(n) work / O(log n) span building blocks the
// paper's Section 2 primitives table assumes; here they are blocked
// two-pass implementations over the scheduler.
//
// Complexity contract: reduce and scan_exclusive do O(n) work, O(P + n/P)
// span on P workers; iota is O(n) work.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"
#include "util/scratch_arena.h"

namespace parmatch::prims {

namespace detail {

template <typename T>
T reduce_blocked(std::span<const T> in, std::span<T> partial,
                 std::size_t grain) {
  // Zero first: the sequential fast path delivers one [0, n) chunk and
  // writes only partial[0]; arena scratch arrives uninitialized.
  std::fill(partial.begin(), partial.end(), T{});
  parallel::parallel_for_blocked(
      0, in.size(),
      [&](std::size_t b, std::size_t e) {
        T acc{};
        for (std::size_t i = b; i < e; ++i) acc = acc + in[i];
        partial[b / grain] = acc;
      },
      grain);
  T total{};
  for (T p : partial) total = total + p;
  return total;
}

}  // namespace detail

template <typename T>
T reduce(std::span<const T> in) {
  std::size_t n = in.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<T> partial(blocks, T{});
  return detail::reduce_blocked(in, std::span<T>(partial), grain);
}

// Allocation-free variant: block partials live in the arena.
template <typename T>
T reduce(std::span<const T> in, ScratchArena& arena) {
  std::size_t n = in.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  auto partial = arena.alloc<T>(blocks);
  return detail::reduce_blocked(in, partial, grain);
}

namespace detail {

template <typename T>
T scan_exclusive_blocked(std::span<T> v, std::span<T> partial,
                         std::size_t grain) {
  std::size_t n = v.size();
  std::size_t blocks = partial.size();
  std::fill(partial.begin(), partial.end(), T{});  // see reduce_blocked
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        T acc{};
        for (std::size_t i = b; i < e; ++i) acc = acc + v[i];
        partial[b / grain] = acc;
      },
      grain);
  T total{};
  for (std::size_t i = 0; i < blocks; ++i) {
    T next = total + partial[i];
    partial[i] = total;
    total = next;
  }
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        T acc = partial[b / grain];
        for (std::size_t i = b; i < e; ++i) {
          T next = acc + v[i];
          v[i] = acc;
          acc = next;
        }
      },
      grain);
  return total;
}

}  // namespace detail

// In-place exclusive prefix sum; returns the total.
template <typename T>
T scan_exclusive(std::span<T> v) {
  std::size_t n = v.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<T> partial(blocks, T{});
  return detail::scan_exclusive_blocked(v, std::span<T>(partial), grain);
}

// Allocation-free variant: block partials live in the arena.
template <typename T>
T scan_exclusive(std::span<T> v, ScratchArena& arena) {
  std::size_t n = v.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  auto partial = arena.alloc<T>(blocks);
  return detail::scan_exclusive_blocked(v, partial, grain);
}

template <typename T>
std::vector<T> iota(std::size_t n) {
  std::vector<T> v(n);
  parallel::parallel_for(0, n,
                         [&](std::size_t i) { v[i] = static_cast<T>(i); });
  return v;
}

}  // namespace parmatch::prims
