// prims/reduce.h -- reduction, exclusive scan, and iota (DESIGN.md S3).
// These are the textbook O(n) work / O(log n) span building blocks the
// paper's Section 2 primitives table assumes; here they are blocked
// two-pass implementations over the scheduler.
//
// Complexity contract: reduce and scan_exclusive do O(n) work, O(P + n/P)
// span on P workers; iota is O(n) work.
#pragma once

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"

namespace parmatch::prims {

template <typename T>
T reduce(std::span<const T> in) {
  std::size_t n = in.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<T> partial(blocks, T{});
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        T acc{};
        for (std::size_t i = b; i < e; ++i) acc = acc + in[i];
        partial[b / grain] = acc;
      },
      grain);
  T total{};
  for (T p : partial) total = total + p;
  return total;
}

// In-place exclusive prefix sum; returns the total.
template <typename T>
T scan_exclusive(std::span<T> v) {
  std::size_t n = v.size();
  if (n == 0) return T{};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<T> partial(blocks, T{});
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        T acc{};
        for (std::size_t i = b; i < e; ++i) acc = acc + v[i];
        partial[b / grain] = acc;
      },
      grain);
  T total{};
  for (std::size_t i = 0; i < blocks; ++i) {
    T next = total + partial[i];
    partial[i] = total;
    total = next;
  }
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        T acc = partial[b / grain];
        for (std::size_t i = b; i < e; ++i) {
          T next = acc + v[i];
          v[i] = acc;
          acc = next;
        }
      },
      grain);
  return total;
}

template <typename T>
std::vector<T> iota(std::size_t n) {
  std::vector<T> v(n);
  parallel::parallel_for(0, n,
                         [&](std::size_t i) { v[i] = static_cast<T>(i); });
  return v;
}

}  // namespace parmatch::prims
