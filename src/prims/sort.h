// prims/sort.h -- comparison sort with parallel block-sort + merge tree
// (DESIGN.md S3). Used where keys are not small integers (radix_sort.h is
// the O(n) path for those).
//
// Complexity contract: O(n log n) work, O((n/P) log n + n) span -- the
// merge tree is sequential per level, which is fine at the sizes and worker
// counts this library targets; swap in a parallel merge if P grows.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"

namespace parmatch::prims {

template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  std::size_t n = v.size();
  std::size_t p = static_cast<std::size_t>(parallel::num_workers());
  if (p == 1 || n < (1u << 14)) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  std::size_t blocks = 2 * p;
  std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::size_t> bounds;
  for (std::size_t b = 0; b <= n; b += chunk) bounds.push_back(std::min(b, n));
  if (bounds.back() != n) bounds.push_back(n);
  parallel::parallel_for(
      0, bounds.size() - 1,
      [&](std::size_t i) {
        std::sort(v.begin() + bounds[i], v.begin() + bounds[i + 1], cmp);
      },
      1);
  // Merge tree: pairwise inplace_merge until one run remains.
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.push_back(bounds[0]);
    parallel::parallel_for(
        0, (bounds.size() - 1) / 2,
        [&](std::size_t i) {
          std::size_t lo = bounds[2 * i], mid = bounds[2 * i + 1],
                      hi = bounds[2 * i + 2];
          std::inplace_merge(v.begin() + lo, v.begin() + mid, v.begin() + hi,
                             cmp);
        },
        1);
    for (std::size_t i = 2; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (bounds.size() % 2 == 0 && next.back() != bounds.back())
      next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace parmatch::prims
