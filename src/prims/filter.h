// prims/filter.h -- stable parallel pack/filter (DESIGN.md S3): the
// primitive behind every "keep the still-active edges" step in the greedy
// rounds (matching/parallel_greedy.h) and the settle loop.
//
// Complexity contract: O(n) work, O(P + n/P) span, output order preserved
// (count + scan + scatter, so results are deterministic across P).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"

namespace parmatch::prims {

template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> in, Pred&& keep) {
  std::size_t n = in.size();
  if (n == 0) return {};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<std::size_t> count(blocks, 0);
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t c = 0;
        for (std::size_t i = b; i < e; ++i) c += keep(in[i]) ? 1 : 0;
        count[b / grain] = c;
      },
      grain);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    std::size_t c = count[i];
    count[i] = total;
    total += c;
  }
  std::vector<T> out(total);
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t pos = count[b / grain];
        for (std::size_t i = b; i < e; ++i)
          if (keep(in[i])) out[pos++] = in[i];
      },
      grain);
  return out;
}

}  // namespace parmatch::prims
