// prims/filter.h -- stable parallel pack/filter (DESIGN.md S3): the
// primitive behind every "keep the still-active edges" step in the greedy
// rounds (matching/parallel_greedy.h) and the settle loop.
//
// Two families: the vector-returning originals, and allocation-free
// variants that carve output and block-count scratch out of a caller
// ScratchArena (DESIGN.md S7's zero-allocation batch contract). pack_index
// is the generic core -- filter, dedup_sorted and the matcher's
// index-space packs are all instances of it.
//
// Complexity contract: O(n) work, O(P + n/P) span, output order preserved
// (count + scan + scatter, so results are deterministic across P).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"
#include "util/scratch_arena.h"

namespace parmatch::prims {

namespace detail {

// Blocked count+scan over [0, n): after the call, count[b] is the output
// offset of block b's first kept element; returns the total kept.
template <typename KeepFn>
std::size_t pack_offsets(std::size_t n, std::size_t grain,
                         std::span<std::size_t> count, KeepFn&& keep) {
  std::size_t blocks = count.size();
  // Zero first: the sequential fast path delivers one [0, n) chunk and
  // writes only count[0]; arena scratch arrives uninitialized.
  std::fill(count.begin(), count.end(), std::size_t{0});
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t c = 0;
        for (std::size_t i = b; i < e; ++i) c += keep(i) ? 1 : 0;
        count[b / grain] = c;
      },
      grain);
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    std::size_t c = count[i];
    count[i] = total;
    total += c;
  }
  return total;
}

template <typename T, typename KeepFn, typename MapFn>
void pack_scatter(std::size_t n, std::size_t grain,
                  std::span<const std::size_t> count, T* out, KeepFn&& keep,
                  MapFn&& map) {
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t pos = count[b / grain];
        for (std::size_t i = b; i < e; ++i)
          if (keep(i)) out[pos++] = map(i);
      },
      grain);
}

}  // namespace detail

// Packs map(i) for every index i in [0, n) with keep(i), order preserved.
// Output and scratch live in the arena.
template <typename T, typename KeepFn, typename MapFn>
std::span<T> pack_index(std::size_t n, KeepFn&& keep, MapFn&& map,
                        ScratchArena& arena) {
  if (n == 0) return {};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  auto count = arena.alloc<std::size_t>(blocks);
  std::size_t total = detail::pack_offsets(n, grain, count, keep);
  auto out = arena.alloc<T>(total);
  detail::pack_scatter(n, grain, count, out.data(), keep, map);
  return out;
}

// Arena filter: keep(in[i]) elements, order preserved.
template <typename T, typename Pred>
std::span<T> filter(std::span<const T> in, Pred&& keep, ScratchArena& arena) {
  return pack_index<T>(
      in.size(), [&](std::size_t i) { return keep(in[i]); },
      [&](std::size_t i) { return in[i]; }, arena);
}

// Dual pack over one keep predicate: map_a(i) goes to the reusable vector
// out_a, map_b(i) to the returned arena span, both order-preserving and
// written by ONE count + ONE scatter (the settle loop's survivors/samples
// split). Cheaper than two pack_index calls whenever the keep sets match.
template <typename A, typename B, typename KeepFn, typename MapAFn,
          typename MapBFn>
std::span<B> pack_index2(std::size_t n, KeepFn&& keep, MapAFn&& map_a,
                         std::vector<A>& out_a, MapBFn&& map_b,
                         ScratchArena& arena) {
  out_a.clear();
  if (n == 0) return {};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  auto count = arena.alloc<std::size_t>(blocks);
  std::size_t total = detail::pack_offsets(n, grain, count, keep);
  out_a.resize(total);
  auto out_b = arena.alloc<B>(total);
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t pos = count[b / grain];
        for (std::size_t i = b; i < e; ++i)
          if (keep(i)) {
            out_a[pos] = map_a(i);
            out_b[pos] = map_b(i);
            ++pos;
          }
      },
      grain);
  return out_b;
}

// Fused dual-class pack: splits [0, n) into TWO packed outputs by a 3-way
// class mark (0 = drop, 1 = first output, 2 = second output) with one
// blocked count pass and one scatter pass -- half the launches of two
// back-to-back pack_index calls over the same marks (insert P3's
// candidate/stealer split). Both outputs preserve index order.
template <typename T, typename MapFn>
std::pair<std::span<T>, std::span<T>> pack_index_split(
    std::size_t n, std::span<const std::uint8_t> cls, MapFn&& map,
    ScratchArena& arena) {
  if (n == 0) return {};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  auto c1 = arena.alloc<std::size_t>(blocks);
  auto c2 = arena.alloc<std::size_t>(blocks);
  // Zero first: the sequential fast path delivers one [0, n) chunk.
  std::fill(c1.begin(), c1.end(), std::size_t{0});
  std::fill(c2.begin(), c2.end(), std::size_t{0});
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t a = 0, z = 0;
        for (std::size_t i = b; i < e; ++i) {
          a += cls[i] == 1 ? 1 : 0;
          z += cls[i] == 2 ? 1 : 0;
        }
        c1[b / grain] = a;
        c2[b / grain] = z;
      },
      grain);
  std::size_t t1 = 0, t2 = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    std::size_t a = c1[i], z = c2[i];
    c1[i] = t1;
    c2[i] = t2;
    t1 += a;
    t2 += z;
  }
  auto out1 = arena.alloc<T>(t1);
  auto out2 = arena.alloc<T>(t2);
  parallel::parallel_for_blocked(
      0, n,
      [&](std::size_t b, std::size_t e) {
        std::size_t p1 = c1[b / grain], p2 = c2[b / grain];
        for (std::size_t i = b; i < e; ++i) {
          if (cls[i] == 1)
            out1[p1++] = map(i);
          else if (cls[i] == 2)
            out2[p2++] = map(i);
        }
      },
      grain);
  return {out1, out2};
}

// Filter for expensive predicates: evaluates keep exactly once per element
// into a mark array, then packs on the marks -- the plain filter's
// count+scatter shape evaluates the predicate twice. Same output, same
// determinism, one extra cheap pass instead of one extra expensive one.
template <typename T, typename Pred>
std::span<T> filter_marked(std::span<const T> in, Pred&& keep,
                           ScratchArena& arena) {
  std::size_t n = in.size();
  if (n == 0) return {};
  auto marks = arena.alloc<std::uint8_t>(n);
  parallel::parallel_for(
      0, n, [&](std::size_t i) { marks[i] = keep(in[i]) ? 1 : 0; });
  return pack_index<T>(
      n, [&](std::size_t i) { return marks[i] != 0; },
      [&](std::size_t i) { return in[i]; }, arena);
}

// Parallel dedup of a sorted span: keeps the first of every run of equal
// elements. The parallel replacement for sequential std::unique on the
// batch hot paths (DESIGN.md S7).
template <typename T>
std::span<T> dedup_sorted(std::span<const T> in, ScratchArena& arena) {
  return pack_index<T>(
      in.size(),
      [&](std::size_t i) { return i == 0 || in[i] != in[i - 1]; },
      [&](std::size_t i) { return in[i]; }, arena);
}

// Original vector-returning filter (cold paths and tests).
template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> in, Pred&& keep) {
  std::size_t n = in.size();
  if (n == 0) return {};
  std::size_t grain = parallel::default_grain(n);
  std::size_t blocks = (n + grain - 1) / grain;
  std::vector<std::size_t> count(blocks, 0);
  auto keep_i = [&](std::size_t i) { return keep(in[i]); };
  std::size_t total = detail::pack_offsets(
      n, grain, std::span<std::size_t>(count), keep_i);
  std::vector<T> out(total);
  detail::pack_scatter(n, grain, std::span<const std::size_t>(count),
                       out.data(), keep_i,
                       [&](std::size_t i) { return in[i]; });
  return out;
}

}  // namespace parmatch::prims
