// prims/permutation.h -- uniformly random permutation (DESIGN.md S3), the
// source of the random edge orderings in Section 3's greedy analysis. Built
// by sorting indices by independent 64-bit random keys (ties broken by
// index), which is O(n) work via radix sort, parallel, and -- unlike
// Fisher-Yates -- gives the same permutation for a given seed regardless of
// worker count.
//
// Complexity contract: O(n) work, O(polylog) span; distribution is uniform
// up to the negligible probability of a 64-bit key collision (ties resolved
// deterministically, not adversarially).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.h"
#include "prims/radix_sort.h"
#include "util/rng.h"

namespace parmatch::prims {

inline std::vector<std::uint32_t> random_permutation(std::size_t n,
                                                     std::uint64_t seed) {
  struct Keyed {
    std::uint64_t key;
    std::uint32_t idx;
  };
  std::vector<Keyed> v(n);
  parallel::parallel_for(0, n, [&](std::size_t i) {
    v[i] = Keyed{hash64(seed, i), static_cast<std::uint32_t>(i)};
  });
  radix_sort(v, [](const Keyed& k) { return k.key; }, 64);
  std::vector<std::uint32_t> out(n);
  parallel::parallel_for(0, n, [&](std::size_t i) { out[i] = v[i].idx; });
  return out;
}

}  // namespace parmatch::prims
