// shard/sharded_service.h -- the sharded serving configuration: plugs
// shard::ShardedMatcher into the generic serving front-end
// (serve::BasicMatchService). The former/matcher/publisher pipeline,
// admission layer, journal, and checkpoint recovery are the SAME code as
// the single-matcher service -- only the matcher behind the apply/delta-
// sink/export-import surface changes, which is the whole point of the
// ownership protocol keeping that surface intact (DESIGN.md S15).
#pragma once

#include "serve/service.h"
#include "shard/sharded_matcher.h"

namespace parmatch::serve {

// The sharded matcher's config carries the shard count and mesh depth on
// top of the dyn knobs; build it from the service config's matcher block
// plus its `shards` field (PARMATCH_SHARDS via ServiceConfig::from_env).
template <>
struct MatcherTraits<shard::ShardedMatcher> {
  static shard::ShardedMatcher make(const ServiceConfig& cfg) {
    shard::Config sc;
    sc.base = cfg.matcher;
    sc.shards = cfg.shards;
    return shard::ShardedMatcher(sc);
  }
};

}  // namespace parmatch::serve

namespace parmatch::shard {

// S-shard service: drop-in for serve::MatchService, bit-identical
// trajectories across S for a fixed window partition (level-3 determinism
// contract; tests/test_shard.cpp and the determinism grid check it).
using ShardedMatchService = serve::BasicMatchService<ShardedMatcher>;

}  // namespace parmatch::shard
