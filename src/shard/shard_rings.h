// shard/shard_rings.h -- the shard-to-shard message fabric (DESIGN.md
// S15). Every ordered shard pair (src, dst) gets its own bounded SPSC ring
// (serve/update_queue.h's cache-friendly SpscRing, the same machinery the
// drain pipeline hands windows over), plus an unbounded spill vector for
// the rare burst that outruns the ring -- correctness never depends on a
// capacity guess, only the steady-state allocation-free path does.
//
// Discipline: the protocol runs in barrier-separated phases (a
// parallel_for over shards per phase). Within one phase, shard s only
// PUSHES into rings whose src is s, and only DRAINS rings whose dst is s
// and which were filled in an earlier phase -- so every ring has exactly
// one producer and one consumer per phase, and the fork/join barrier
// between phases publishes the messages (the ring's release/acquire pair
// covers the in-phase handoff too, should a drain ever overlap a fill).
//
// Determinism: a drain visits sources in ascending shard order and
// preserves per-source FIFO (ring first, then the spill, which is only
// fed after the ring filled), so the merged message order is a pure
// function of what each source pushed -- never of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/edge.h"
#include "serve/update_queue.h"

namespace parmatch::shard {

// One protocol message. `kind` selects the payload meaning; one POD type
// for every lane keeps the mesh at S^2 rings instead of S^2 per type.
enum class MsgKind : std::uint8_t {
  kGrowth,    // edge's owner: matched-neighborhood grew by `aux` inserts
  kClaim,     // endpoint home: edge `e` (priority `pri`) claims this round
  kGrant,     // edge owner: one endpoint granted; aux = its live degree
  kMatch,     // endpoint home: verdict -- e is matched, take its endpoints
  kUnmatch,   // endpoint home: verdict -- e unmatched, free its endpoints
  kDisplace,  // edge owner: a steal displaced e somewhere; unmatch it
};

struct ShardMsg {
  graph::EdgeId e = graph::kInvalidEdge;
  std::uint64_t pri = 0;   // claim priority (kClaim) -- carried so the
                           // arbitrating home never reads a foreign pri_
  std::uint64_t aux = 0;   // kGrowth: insert count; kGrant: live_deg
  MsgKind kind = MsgKind::kGrowth;
};

// Bounded ring + overflow spill, single producer / single consumer per
// phase. FIFO across the boundary: once a push spills, later pushes spill
// too until the next drain, so message order is preserved exactly.
//
// Drains are KIND-FILTERED: a phase that drains one kind and sends the
// next (verdict drains grants and emits match verdicts) may race its own
// sends against a peer shard's drain of the SAME phase -- the peer must
// not eat a message addressed to the phase after it. A non-matching
// message is retained in the lane (order preserved) and surfaces at the
// next drain; by the phase sequencing of the protocol that next drain is
// exactly the one that wants it. Handlers are commutative within a kind
// (min-arbitration, counting, guarded idempotent writes), so WHETHER a
// message was retained or consumed in place -- which can depend on
// scheduling -- never changes the resulting state.
class MsgLane {
 public:
  explicit MsgLane(std::size_t capacity) : ring_(capacity) {}

  void push(const ShardMsg& m) {
    if (spill_.empty() && ring_.try_push(m)) return;
    spill_.push_back(m);
    ++spilled_;
  }

  // The handler may push into the lane being drained (an owner that is
  // also an endpoint home sends itself next-phase verdicts through its
  // self-lane): ring self-pushes are consumed by the pop loop below and
  // retained; spill self-pushes append past the walk index and are
  // likewise retained. Hence the index walk and per-element copy -- a
  // range-for would dangle when a push reallocates the spill.
  template <typename F>
  void drain(MsgKind want, F&& f) {
    keep_.clear();
    ShardMsg m;
    while (ring_.try_pop(m)) {
      if (m.kind == want)
        f(m);
      else
        keep_.push_back(m);
    }
    for (std::size_t i = 0; i < spill_.size(); ++i) {
      ShardMsg s = spill_[i];
      if (s.kind == want)
        f(s);
      else
        keep_.push_back(s);
    }
    spill_.swap(keep_);
  }

  // Overflow pushes only -- retention is not a spill.
  std::uint64_t spilled() const { return spilled_; }

 private:
  serve::SpscRing<ShardMsg> ring_;
  std::vector<ShardMsg> spill_;
  std::vector<ShardMsg> keep_;
  std::uint64_t spilled_ = 0;
};

// The full S x S mesh. lane(src, dst) is the only object shard `src`
// writes and shard `dst` reads; drains walk src = 0..S-1 (determinism
// contract above). Self-lanes (src == dst) exist and are used -- a shard
// sends itself the same messages it would send a peer, so the S=1
// configuration runs the identical protocol (the differential harness's
// reference arm) instead of a special case.
class ShardMesh {
 public:
  ShardMesh(std::uint32_t shards, std::size_t capacity) : shards_(shards) {
    lanes_.reserve(static_cast<std::size_t>(shards) * shards);
    for (std::size_t i = 0; i < static_cast<std::size_t>(shards) * shards;
         ++i)
      lanes_.push_back(std::make_unique<MsgLane>(capacity));
  }

  MsgLane& lane(std::uint32_t src, std::uint32_t dst) {
    return *lanes_[static_cast<std::size_t>(src) * shards_ + dst];
  }

  // Drain every `want`-kind message addressed to dst, sources in
  // ascending order; other kinds stay queued for their own phase.
  template <typename F>
  void drain_into(std::uint32_t dst, MsgKind want, F&& f) {
    for (std::uint32_t src = 0; src < shards_; ++src)
      lane(src, dst).drain(want, f);
  }

  std::uint32_t shards() const { return shards_; }

  std::uint64_t total_spilled() const {
    std::uint64_t n = 0;
    for (const auto& l : lanes_) n += l->spilled();
    return n;
  }

 private:
  std::uint32_t shards_;
  std::vector<std::unique_ptr<MsgLane>> lanes_;
};

}  // namespace parmatch::shard
