// shard/sharded_matcher.h -- the sharded multi-matcher scale-out layer
// (DESIGN.md S15, ROADMAP "millions of users" configuration).
//
// The vertex space is partitioned across S shards by a salted hash
// (shard/shard_map.h); every vertex's match cell, live degree, and
// incidence list are owned by its home shard -- written by that shard
// only, for the whole life of the structure. Edges are owned by the
// LOWEST shard among their endpoint homes (lower-shard-owns): the owner
// runs claim bookkeeping, grant counting, and the match/unmatch decision
// for the edge, and ships (vertex, match) verdicts to the peer endpoint
// homes over the shard-to-shard message mesh (shard/shard_rings.h).
//
// A batch applies as a fixed sequence of barrier-separated phases, each a
// parallel_for over shards. Conflict resolution -- steal, greedy claim,
// and settle -- runs as iterated CROSS-SHARD ROUNDS of four phases:
//
//   claim:   the claimant (edge owner for steal/greedy; the pending
//            vertex's home for settle) picks a candidate edge and sends a
//            claim to every endpoint home.
//   grant:   each home arbitrates its own vertices -- the (priority, id)-
//            minimum claimant wins the vertex -- and sends a grant (with
//            the vertex's live degree) back to the edge's owner.
//   verdict: an owner whose edge collected a grant for every endpoint
//            occurrence declares it MATCHED (bloat threshold from the
//            granted degrees; settle matches redraw their sample keyed
//            (edge, settle epoch)) and ships match verdicts to the homes.
//   apply:   homes write their own match cells; a steal that displaced an
//            existing match routes a displace notice to the victim's
//            owner, whose unmatch verdict frees the remaining endpoints
//            into the pending-settle set (two extra sub-phases).
//
// Rounds iterate until no shard produced a claim -- the "no pending
// foreign verdicts" fixed point. The round count is bounded: in every
// round the globally (priority, id)-minimum claimed edge beats every
// competitor at each of its endpoints and every match it must displace,
// so it is granted everywhere and commits -- at least one claimant
// resolves per round, hence at most (#claimants) rounds per group
// (DESIGN.md S15 gives the full argument, including why a beaten stealer
// is permanently resolved).
//
// Determinism level 3 (thread counts AND shard counts): every input to
// every decision is keyed by data, never by schedule or by topology --
//   * edge priorities:  insert_pri(global insert epoch, batch slot)
//   * settle draws:     settle_draw(vertex, global settle epoch)
//   * settle resamples: settle_pri(edge, global settle epoch)
//   * arbitration:      (priority, id) minimum -- order-free
//   * message order:    per-source FIFO, drains merge sources in
//                       ascending shard order; scratch emission loops
//                       sort their touched lists
// The RNG streams are the stateless keyed hashes of DESIGN.md S2: every
// shard holds its own stream handle, but a draw depends only on (master
// seed, key, epoch), so S cannot perturb it. Changing S changes WHERE
// each per-vertex/per-edge step executes, never WHAT it computes -- the
// trajectory, epoch counters, and final matching are bit-identical across
// S for a fixed batch partition (tests/test_shard.cpp drives the
// differential harness; S=1 runs the identical protocol through its
// self-lanes, so it is the reference arm, not a special case).
//
// Surface: drop-in for dyn::DynamicMatcher where the serving layer is
// concerned -- insert_edges / delete_edges / match_of / matching /
// matched_count / set_delta_sink / export_state / import_state /
// state_fingerprint / insert_epochs / settle_epochs -- so
// BasicMatchService<ShardedMatcher> composes with the former/matcher/
// publisher pipeline, admission, journal, and checkpoint recovery
// unchanged (serve/service.h).
//
// Complexity contract: a batch of k updates costs O(k) routing, O(k)
// expected conflict-resolution work under the paper's oblivious-adversary
// model (each shard runs the constant-work-per-update machinery over its
// own partition), plus O(rounds * S) phase-barrier overhead. Messages are
// O(1) words each; the mesh's steady-state path allocates nothing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "parallel/parallel_for.h"
#include "parallel/rng_stream.h"
#include "shard/shard_map.h"
#include "shard/shard_rings.h"
#include "util/rng.h"

namespace parmatch::shard {

struct Config {
  dyn::Config base;          // seed, max_rank, levels -- the per-shard knobs
  std::uint32_t shards = 1;  // S; PARMATCH_SHARDS from the environment
  std::size_t ring_capacity = 1024;  // per-lane mesh ring depth

  static Config from_env() {
    Config c;
    c.shards = shards_from_env();
    return c;
  }
};

// Per-shard protocol counters (single-writer: shard s writes slot s during
// phases; read them only between batches). The bench's conservation gate
// checks sent == received, per class, after every drain.
struct ShardCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t cross_sent = 0;      // src != dst
  std::uint64_t cross_recv = 0;
  std::uint64_t claims_sent = 0;
  std::uint64_t verdicts_sent = 0;   // kMatch + kUnmatch out of this owner
  std::uint64_t verdicts_applied = 0;  // kMatch + kUnmatch drained here
};

// Aggregated protocol statistics (idle-time reads).
struct ShardStats {
  std::uint64_t insert_batches = 0;
  std::uint64_t delete_batches = 0;
  std::uint64_t steal_rounds = 0;
  std::uint64_t greedy_rounds = 0;
  std::uint64_t settle_rounds = 0;
};

class ShardedMatcher {
  using VertexId = graph::VertexId;
  using EdgeId = graph::EdgeId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  explicit ShardedMatcher(const Config& cfg)
      : cfg_(cfg),
        shards_(cfg.shards < 1 ? 1 : cfg.shards),
        pool_(cfg.base.max_rank),
        mesh_(shards_, cfg.ring_capacity),
        insert_pri_(hash64(cfg.base.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 1)),
        settle_draw_(hash64(cfg.base.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 2)),
        settle_pri_(hash64(cfg.base.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 3)),
        per_(shards_) {}

  const Config& config() const { return cfg_; }
  std::uint32_t shards() const { return shards_; }
  const graph::EdgePool& pool() const { return pool_; }

  // ---- update surface (mirrors dyn::DynamicMatcher) --------------------

  // The batch's delta sink: every vertex whose match changed is appended,
  // in deterministic (phase, shard, drain) order. Same contract as the
  // plain matcher's sink -- the service snapshots exactly these.
  void set_delta_sink(std::vector<VertexId>* sink) { delta_sink_ = sink; }

  std::span<const EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    ids_.clear();
    if (batch.size() == 0) return {ids_.data(), std::size_t{0}};
    std::uint64_t epoch = ++insert_epoch_;
    pool_.add_edges(batch, ids_);
    ensure_bounds();
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      EdgeId e = ids_[i];
      pri_[e] = insert_pri_.word(epoch, i);
      ehot_[e] = EdgeHot{};
    }

    // Route: per-home incidence appends in batch order, per-owner
    // inserted-edge lists (claim candidates for steal and greedy).
    for (auto& in : append_inbox_) in.clear();
    for (auto& own : inserted_owned_) own.clear();
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      EdgeId e = ids_[i];
      auto vs = pool_.vertices(e);
      for (VertexId v : vs)
        append_inbox_[shard_of(v, shards_)].push_back({v, e});
      inserted_owned_[owner_of(vs, shards_)].push_back(e);
    }

    // Phase I1: homes apply their appends; inserts landing next to a
    // matched vertex bump the match's growth at its OWNER via the mesh.
    for_shards([&](std::uint32_t s) {
      for (const auto& [v, e] : append_inbox_[s]) {
        adj_[v].push_back(e);
        ++vh_[v].deg;
        if (!cfg_.base.light_only) {
          EdgeId m = vh_[v].match;
          if (m != kInvalid)
            send(s, owner_shard(m), {m, 0, 1, MsgKind::kGrowth});
        }
      }
    });

    // Phase I2+I3: owners fold the growth bumps, detect threshold
    // crossings (exactly once per crossing: the sum is order-free and the
    // before/after straddle check fires at the crossing message), unmatch
    // the bloated edges, and ship unmatch verdicts; homes free the
    // endpoints into the pending-settle set.
    if (!cfg_.base.light_only) {
      for_shards([&](std::uint32_t s) {
        drain(s, MsgKind::kGrowth, [&](const ShardMsg& m) {
          EdgeHot& h = ehot_[m.e];
          std::uint64_t before = h.growth;
          h.growth += static_cast<std::uint32_t>(m.aux);
          if (before <= h.threshold && before + m.aux > h.threshold &&
              h.matched) {
            h.matched = false;
            --per_[s].matched_owned;
            send_verdict(s, m.e, MsgKind::kUnmatch);
          }
        });
      });
      unmatch_apply_phase();
    }

    run_steal_rounds();
    run_greedy_rounds();
    run_settle_rounds();
    flush_deltas();
    ++stats_.insert_batches;
    return {ids_.data(), ids_.size()};
  }

  void delete_edges(std::span<const EdgeId> ids) {
    del_.clear();
    for (EdgeId e : ids)
      if (e != kInvalid && pool_.live(e)) del_.push_back(e);
    std::sort(del_.begin(), del_.end());
    del_.erase(std::unique(del_.begin(), del_.end()), del_.end());
    if (del_.empty()) return;

    for (auto& in : append_inbox_) in.clear();
    for (auto& own : inserted_owned_) own.clear();  // reused: owner lists
    for (EdgeId e : del_) {
      auto vs = pool_.vertices(e);
      for (VertexId v : vs)
        append_inbox_[shard_of(v, shards_)].push_back({v, e});
      inserted_owned_[owner_of(vs, shards_)].push_back(e);
    }

    // Phase D1: homes drop incidence counts and free endpoints whose
    // match dies (every endpoint home hears about the delete directly, so
    // no unmatch verdicts are needed); owners clear the edge-level state.
    for_shards([&](std::uint32_t s) {
      for (const auto& [v, e] : append_inbox_[s]) {
        --vh_[v].deg;
        if (vh_[v].match == e) {
          vh_[v].match = kInvalid;
          deltas_[s].push_back(v);
          pending_[s].push_back(v);
        }
      }
      for (EdgeId e : inserted_owned_[s]) {
        if (ehot_[e].matched) {
          ehot_[e].matched = false;
          --per_[s].matched_owned;
        }
      }
    });

    pool_.remove_edges(std::span<const EdgeId>(del_));
    run_settle_rounds();
    flush_deltas();
    ++stats_.delete_batches;
  }

  // ---- read surface ----------------------------------------------------

  EdgeId match_of(VertexId v) const {
    return v < vh_.size() ? vh_[v].match : kInvalid;
  }

  bool is_matched(EdgeId e) const {
    return pool_.live(e) && ehot_[e].matched;
  }

  std::size_t matched_count() const {
    std::size_t n = 0;
    for (const PerShard& p : per_) n += p.matched_owned;
    return n;
  }

  // Canonical (ascending edge id) matched list -- shard-count-invariant
  // by construction, which is what the differential harness compares.
  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out;
    out.reserve(matched_count());
    for (std::size_t id = 0; id < pool_.id_bound(); ++id) {
      EdgeId e = static_cast<EdgeId>(id);
      if (pool_.live(e) && ehot_[e].matched) out.push_back(e);
    }
    return out;
  }

  std::uint64_t insert_epochs() const { return insert_epoch_; }
  std::uint64_t settle_epochs() const { return settle_epoch_; }

  const ShardStats& protocol_stats() const { return stats_; }
  const ShardCounters& counters(std::uint32_t s) const {
    return per_[s].counters;
  }
  std::size_t matched_owned(std::uint32_t s) const {
    return per_[s].matched_owned;
  }
  std::uint64_t ring_spills() const { return mesh_.total_spilled(); }

  std::size_t memory_bytes() const {
    std::size_t b = pool_.memory_bytes();
    b += pri_.capacity() * sizeof(std::uint64_t);
    b += ehot_.capacity() * sizeof(EdgeHot);
    b += vh_.capacity() * sizeof(VertexHot);
    for (const auto& a : adj_) b += a.capacity() * sizeof(EdgeId);
    b += adj_.capacity() * sizeof(std::vector<EdgeId>);
    return b;
  }

  // Full consistency audit (test/bench gate, O(live graph)): every
  // matched edge's endpoints all point back at it, every taken vertex's
  // edge is live and matched, per-owner matched counts add up, and the
  // matching is maximal (no live edge with every endpoint free).
  bool check_consistent() const {
    std::size_t matched_edges = 0;
    for (std::size_t id = 0; id < pool_.id_bound(); ++id) {
      EdgeId e = static_cast<EdgeId>(id);
      if (!pool_.live(e)) continue;
      bool all_free = true;
      for (VertexId v : pool_.vertices(e)) {
        if (vh_[v].match != kInvalid) all_free = false;
        if (ehot_[e].matched && vh_[v].match != e) return false;
      }
      if (ehot_[e].matched) ++matched_edges;
      if (!ehot_[e].matched && all_free) return false;  // not maximal
    }
    if (matched_edges != matched_count()) return false;
    for (std::size_t v = 0; v < vh_.size(); ++v) {
      EdgeId m = vh_[v].match;
      if (m == kInvalid) continue;
      if (!pool_.live(m) || !ehot_[m].matched) return false;
    }
    return true;
  }

  // ---- durability surface (serve/checkpoint.h contract) ----------------

  void export_state(std::vector<std::uint64_t>& out) const {
    out.push_back(kStateMagic);
    out.push_back(kStateVersion);
    out.push_back(shards_);
    out.push_back(cfg_.base.seed);
    out.push_back(cfg_.base.max_rank);
    out.push_back(cfg_.base.level_gap);
    out.push_back(cfg_.base.heavy_factor);
    out.push_back(cfg_.base.light_only ? 1 : 0);
    out.push_back(insert_epoch_);
    out.push_back(settle_epoch_);
    pool_.export_state(out);
    std::size_t ib = pool_.id_bound();
    out.push_back(pool_.live_count());
    for (std::size_t id = 0; id < ib; ++id)
      if (pool_.live(static_cast<EdgeId>(id))) out.push_back(pri_[id]);
    out.push_back(matched_count());
    for (std::size_t id = 0; id < ib; ++id) {
      EdgeId e = static_cast<EdgeId>(id);
      if (!pool_.live(e) || !ehot_[e].matched) continue;
      out.push_back(e);
      out.push_back(ehot_[e].threshold);
      out.push_back(ehot_[e].growth);
    }
    std::size_t vb = vh_.size();
    out.push_back(vb);
    for (std::size_t v = 0; v < vb; ++v) {
      std::size_t cnt_pos = out.size();
      out.push_back(0);
      std::uint64_t cnt = 0;
      for (EdgeId e : adj_[v]) {
        if (!pool_.live(e)) continue;  // lazy tombstones are not state
        out.push_back(e);
        ++cnt;
      }
      out[cnt_pos] = cnt;
    }
  }

  // Restore into a FRESHLY constructed matcher with the same Config
  // (shard count included: resharding a checkpoint would silently move
  // every ownership boundary). False on malformed or mismatched streams.
  bool import_state(std::span<const std::uint64_t> in) {
    assert(pool_.live_count() == 0 && insert_epoch_ == 0 &&
           "import into a used matcher");
    std::size_t p = 0;
    auto need = [&](std::uint64_t n) { return in.size() - p >= n; };
    if (!need(10)) return false;
    if (in[p++] != kStateMagic || in[p++] != kStateVersion) return false;
    if (in[p++] != shards_ || in[p++] != cfg_.base.seed ||
        in[p++] != cfg_.base.max_rank || in[p++] != cfg_.base.level_gap ||
        in[p++] != cfg_.base.heavy_factor ||
        in[p++] != static_cast<std::uint64_t>(cfg_.base.light_only ? 1 : 0))
      return false;
    insert_epoch_ = in[p++];
    settle_epoch_ = in[p++];
    std::size_t consumed = 0;
    if (!pool_.import_state(in.subspan(p), &consumed)) return false;
    p += consumed;
    ensure_bounds();
    std::size_t ib = pool_.id_bound();
    if (!need(1)) return false;
    std::uint64_t nlive = in[p++];
    if (nlive != pool_.live_count() || !need(nlive)) return false;
    for (std::size_t id = 0; id < ib; ++id)
      if (pool_.live(static_cast<EdgeId>(id))) pri_[id] = in[p++];
    if (!need(1)) return false;
    std::uint64_t nm = in[p++];
    if (nm > nlive || !need(3 * nm)) return false;
    for (std::uint64_t i = 0; i < nm; ++i) {
      EdgeId e = static_cast<EdgeId>(in[p++]);
      if (!pool_.live(e)) return false;
      auto vs = pool_.vertices(e);
      for (VertexId v : vs)
        if (vh_[v].match != kInvalid) return false;
      ehot_[e].matched = true;
      ehot_[e].threshold = in[p++];
      ehot_[e].growth = static_cast<std::uint32_t>(in[p++]);
      for (VertexId v : vs) vh_[v].match = e;
      ++per_[owner_of(vs, shards_)].matched_owned;
    }
    if (!need(1)) return false;
    std::uint64_t vb = in[p++];
    if (vb != vh_.size()) return false;
    for (std::uint64_t v = 0; v < vb; ++v) {
      if (!need(1)) return false;
      std::uint64_t cnt = in[p++];
      if (!need(cnt)) return false;
      auto& a = adj_[static_cast<std::size_t>(v)];
      a.clear();
      a.reserve(cnt);
      for (std::uint64_t j = 0; j < cnt; ++j) {
        EdgeId e = static_cast<EdgeId>(in[p++]);
        if (!pool_.live(e)) return false;
        a.push_back(e);
      }
      vh_[static_cast<std::size_t>(v)].deg =
          static_cast<std::uint32_t>(cnt);
    }
    return p == in.size();
  }

  // Order-sensitive fold of exactly the exported logical state -- the
  // recovery bit-identity check's digest (same fold as the plain matcher).
  std::uint64_t state_fingerprint() const {
    std::vector<std::uint64_t> words;
    export_state(words);
    std::uint64_t h = 0x5EED'F00D'CAFE'D00Dull;
    for (std::uint64_t w : words) h = hash64(h, w);
    return h;
  }

 private:
  static constexpr std::uint64_t kStateMagic = 0x5348'4152'444D'4154ull;
  static constexpr std::uint64_t kStateVersion = 1;

  struct EdgeHot {
    std::uint64_t threshold = 0;
    std::uint32_t growth = 0;
    bool matched = false;
  };
  struct VertexHot {
    EdgeId match = kInvalid;
    std::uint32_t deg = 0;
  };
  // Shard-local mutable state, one slot per shard; every field is written
  // only by its own shard inside phases (single-writer discipline).
  struct PerShard {
    ShardCounters counters;
    std::size_t matched_owned = 0;
    std::uint64_t claims_this_round = 0;
  };

  void ensure_bounds() {
    std::size_t ib = pool_.id_bound();
    if (pri_.size() < ib) {
      pri_.resize(ib, 0);
      ehot_.resize(ib);
      grant_cnt_.resize(ib, 0);
      grant_deg_.resize(ib, 0);
    }
    std::size_t vb = pool_.vertex_bound();
    if (vh_.size() < vb) {
      vh_.resize(vb);
      adj_.resize(vb);
      claim_id_.resize(vb, kInvalid);
      claim_pri_.resize(vb, 0);
    }
    if (append_inbox_.empty()) {
      append_inbox_.resize(shards_);
      inserted_owned_.resize(shards_);
      pending_.resize(shards_);
      pending_next_.resize(shards_);
      deltas_.resize(shards_);
      vtouched_.resize(shards_);
      etouched_.resize(shards_);
      cand_.resize(shards_);
    }
  }

  // One iteration = one shard: every phase is a parallel_for over shards
  // with grain 1, and the fork/join barrier between phases is the
  // protocol's round barrier. Shard bodies are sequential and
  // deterministic; cross-shard data moves only through the mesh.
  template <typename F>
  void for_shards(F&& f) {
    parallel::parallel_for(
        0, shards_,
        [&](std::size_t s) { f(static_cast<std::uint32_t>(s)); },
        /*grain=*/1);
  }

  std::uint32_t owner_shard(EdgeId e) const {
    return owner_of(pool_.vertices(e), shards_);
  }

  void send(std::uint32_t src, std::uint32_t dst, const ShardMsg& m) {
    mesh_.lane(src, dst).push(m);
    ShardCounters& c = per_[src].counters;
    ++c.msgs_sent;
    if (src != dst) ++c.cross_sent;
    if (m.kind == MsgKind::kClaim) ++c.claims_sent;
    if (m.kind == MsgKind::kMatch || m.kind == MsgKind::kUnmatch)
      ++c.verdicts_sent;
  }

  // Kind-filtered drain (see shard_rings.h): consumes exactly the phase's
  // own message kind; anything a peer sent ahead for a later phase stays
  // queued. Receive counters tick on consumption, so sent == received
  // holds per kind once the batch's phases have all run.
  template <typename F>
  void drain(std::uint32_t dst, MsgKind want, F&& f) {
    ShardCounters& c = per_[dst].counters;
    for (std::uint32_t src = 0; src < shards_; ++src) {
      mesh_.lane(src, dst).drain(want, [&](const ShardMsg& m) {
        ++c.msgs_recv;
        if (src != dst) ++c.cross_recv;
        if (m.kind == MsgKind::kMatch || m.kind == MsgKind::kUnmatch)
          ++c.verdicts_applied;
        f(m);
      });
    }
  }

  // One verdict per DISTINCT endpoint home (the home applies it to every
  // endpoint occurrence it owns).
  void send_verdict(std::uint32_t src, EdgeId e, MsgKind kind) {
    auto vs = pool_.vertices(e);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      std::uint32_t h = shard_of(vs[i], shards_);
      bool dup = false;
      for (std::size_t j = 0; j < i; ++j)
        if (shard_of(vs[j], shards_) == h) { dup = true; break; }
      if (!dup) send(src, h, {e, 0, 0, kind});
    }
  }

  void send_claim(std::uint32_t src, EdgeId e) {
    auto vs = pool_.vertices(e);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      std::uint32_t h = shard_of(vs[i], shards_);
      bool dup = false;
      for (std::size_t j = 0; j < i; ++j)
        if (shard_of(vs[j], shards_) == h) { dup = true; break; }
      if (!dup) send(src, h, {e, pri_[e], 0, MsgKind::kClaim});
    }
  }

  std::uint64_t total_claims() const {
    std::uint64_t n = 0;
    for (const PerShard& p : per_) n += p.claims_this_round;
    return n;
  }

  // Level quantization of the settle-time neighborhood (same saturation
  // rules as the plain matcher's commit_arrays).
  void set_threshold(EdgeId e, std::uint64_t nbhd) {
    EdgeHot& h = ehot_[e];
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    if (cfg_.base.light_only) {
      h.threshold = kMax;
      h.growth = 0;
      return;
    }
    std::uint64_t gap = cfg_.base.level_gap < 2 ? 2 : cfg_.base.level_gap;
    std::uint64_t cap = gap;
    bool saturated = false;
    while (cap < nbhd) {
      if (cap > kMax / gap) {
        saturated = true;
        break;
      }
      cap *= gap;
    }
    std::uint64_t hf = cfg_.base.heavy_factor;
    h.threshold = (saturated || (hf != 0 && cap > kMax / hf)) ? kMax
                                                              : hf * cap;
    h.growth = 0;
  }

  // ---- the four round phases ------------------------------------------

  // Homes arbitrate the drained claims per vertex ((priority, id) min,
  // order-free) and grant to the winner's owner. `steal` allows a claim
  // to beat an existing match; settle/greedy grants require a free
  // vertex. One grant per endpoint OCCURRENCE, so a duplicate-vertex edge
  // still collects rank(e) grants.
  void grant_phase(bool steal) {
    for_shards([&](std::uint32_t s) {
      auto& touched = vtouched_[s];
      touched.clear();
      drain(s, MsgKind::kClaim, [&](const ShardMsg& m) {
        for (VertexId u : pool_.vertices(m.e)) {
          if (shard_of(u, shards_) != s) continue;
          if (claim_id_[u] == kInvalid) {
            touched.push_back(u);
            claim_id_[u] = m.e;
            claim_pri_[u] = m.pri;
          } else if (matching::detail::beats(m.pri, m.e, claim_pri_[u],
                                             claim_id_[u])) {
            claim_id_[u] = m.e;
            claim_pri_[u] = m.pri;
          }
        }
      });
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (VertexId u : touched) {
        EdgeId w = claim_id_[u];
        EdgeId m = vh_[u].match;
        bool ok =
            m == kInvalid ||
            (steal && matching::detail::beats(claim_pri_[u], w, pri_[m], m));
        if (ok) {
          std::uint32_t dst = owner_shard(w);
          for (VertexId x : pool_.vertices(w))
            if (x == u) {
                  send(s, dst, {w, 0, vh_[u].deg, MsgKind::kGrant});
            }
        }
        claim_id_[u] = kInvalid;
      }
    });
  }

  // Owners count grants; a fully granted edge matches. settle_epoch != 0
  // marks a settle round: the committed match redraws its sample keyed
  // (edge, epoch), exactly like the plain matcher's settle finalize.
  void verdict_phase(std::uint64_t settle_epoch) {
    for_shards([&](std::uint32_t s) {
      auto& et = etouched_[s];
      et.clear();
      drain(s, MsgKind::kGrant, [&](const ShardMsg& m) {
        if (grant_cnt_[m.e] == 0) et.push_back(m.e);
        ++grant_cnt_[m.e];
        grant_deg_[m.e] += m.aux;
      });
      std::sort(et.begin(), et.end());
      for (EdgeId e : et) {
        if (grant_cnt_[e] == pool_.rank(e) && !ehot_[e].matched) {
          ehot_[e].matched = true;
          ++per_[s].matched_owned;
          set_threshold(e, grant_deg_[e]);
          if (settle_epoch != 0 && !cfg_.base.light_only)
            pri_[e] = settle_pri_.word(e, settle_epoch);
          send_verdict(s, e, MsgKind::kMatch);
        }
        grant_cnt_[e] = 0;
        grant_deg_[e] = 0;
      }
    });
  }

  // Homes take the match verdicts. A displaced match (steal rounds only)
  // is routed to its owner, which unmatches it everywhere next sub-phase.
  void apply_phase() {
    for_shards([&](std::uint32_t s) {
      drain(s, MsgKind::kMatch, [&](const ShardMsg& m) {
        for (VertexId u : pool_.vertices(m.e)) {
          if (shard_of(u, shards_) != s) continue;
          EdgeId old = vh_[u].match;
          if (old == m.e) continue;
          vh_[u].match = m.e;
          deltas_[s].push_back(u);
          if (old != kInvalid)
            send(s, owner_shard(old), {old, 0, 0, MsgKind::kDisplace});
        }
      });
    });
  }

  void displace_owner_phase() {
    for_shards([&](std::uint32_t s) {
      drain(s, MsgKind::kDisplace, [&](const ShardMsg& m) {
        if (ehot_[m.e].matched) {  // dedup: both endpoints may report it
          ehot_[m.e].matched = false;
          --per_[s].matched_owned;
          send_verdict(s, m.e, MsgKind::kUnmatch);
        }
      });
    });
  }

  void unmatch_apply_phase() {
    for_shards([&](std::uint32_t s) {
      drain(s, MsgKind::kUnmatch, [&](const ShardMsg& m) {
        for (VertexId u : pool_.vertices(m.e)) {
          if (shard_of(u, shards_) != s) continue;
          if (vh_[u].match == m.e) {
            vh_[u].match = kInvalid;
            deltas_[s].push_back(u);
            pending_[s].push_back(u);
          }
        }
      });
    });
  }

  // ---- round groups ----------------------------------------------------

  // Steal-to-fixed-point over this batch's inserted edges: an edge with
  // at least one taken endpoint whose priority beats EVERY endpoint match
  // claims; winners displace their victims, whose freed endpoints join
  // the pending-settle set. Bounded by the resolve-the-minimum argument
  // in the header comment.
  void run_steal_rounds() {
    for (;;) {
      for_shards([&](std::uint32_t s) {
        std::uint64_t n = 0;
        for (EdgeId e : inserted_owned_[s]) {
          if (!pool_.live(e) || ehot_[e].matched) continue;
          bool any_taken = false, eligible = true;
          for (VertexId u : pool_.vertices(e)) {
            EdgeId m = vh_[u].match;
            if (m == kInvalid) continue;
            any_taken = true;
            if (!matching::detail::beats(pri_[e], e, pri_[m], m)) {
              eligible = false;
              break;
            }
          }
          if (!any_taken || !eligible) continue;
          ++n;
          send_claim(s, e);
        }
        per_[s].claims_this_round = n;
      });
      if (total_claims() == 0) break;
      grant_phase(/*steal=*/true);
      verdict_phase(0);
      apply_phase();
      displace_owner_phase();
      unmatch_apply_phase();
      ++stats_.steal_rounds;
    }
  }

  // Greedy claim over the batch's all-endpoints-free inserted edges, by
  // insert priority; losers whose endpoints stay free retry next round.
  void run_greedy_rounds() {
    for (;;) {
      for_shards([&](std::uint32_t s) {
        std::uint64_t n = 0;
        for (EdgeId e : inserted_owned_[s]) {
          if (!pool_.live(e) || ehot_[e].matched) continue;
          bool all_free = true;
          for (VertexId u : pool_.vertices(e))
            if (vh_[u].match != kInvalid) {
              all_free = false;
              break;
            }
          if (!all_free) continue;
          ++n;
          send_claim(s, e);
        }
        per_[s].claims_this_round = n;
      });
      if (total_claims() == 0) break;
      grant_phase(/*steal=*/false);
      verdict_phase(0);
      apply_phase();
      ++stats_.greedy_rounds;
    }
  }

  // Cross-shard settle: every pending free vertex draws one uniform
  // candidate among its live free-beyond incident edges, keyed (vertex,
  // global settle epoch); arbitration and verdicts as above. Iterates
  // until no shard produced a claim -- at most (#pending) rounds, since
  // the globally minimum claimed edge commits every round.
  void run_settle_rounds() {
    std::size_t backlog = 0;
    for (const auto& p : pending_) backlog += p.size();
    if (backlog == 0) return;
    for (;;) {
      std::uint64_t epoch = ++settle_epoch_;
      for_shards([&](std::uint32_t s) {
        auto& p = pending_[s];
        std::sort(p.begin(), p.end());
        p.erase(std::unique(p.begin(), p.end()), p.end());
        auto& next = pending_next_[s];
        next.clear();
        auto& cand = cand_[s];
        std::uint64_t n = 0;
        for (VertexId v : p) {
          if (vh_[v].match != kInvalid) continue;  // settled meanwhile
          auto& a = adj_[v];
          a.erase(std::remove_if(a.begin(), a.end(),
                                 [&](EdgeId e) { return !pool_.live(e); }),
                  a.end());
          cand.clear();
          for (EdgeId e : a) {
            bool free_beyond = true;
            for (VertexId u : pool_.vertices(e))
              if (u != v && vh_[u].match != kInvalid) {
                free_beyond = false;
                break;
              }
            if (free_beyond) cand.push_back(e);
          }
          if (cand.empty()) continue;  // maximality holds for v; drop it
          EdgeId e;
          if (cfg_.base.light_only) {
            e = cand[0];
            for (EdgeId c : cand)
              if (matching::detail::beats(pri_[c], c, pri_[e], e)) e = c;
          } else {
            std::uint64_t w = cand.size();
            e = cand[settle_draw_.stream(v, epoch).next_below(w)];
          }
          ++n;
          send_claim(s, e);
          next.push_back(v);  // retry until matched or out of candidates
        }
        p.swap(next);
        per_[s].claims_this_round = n;
      });
      if (total_claims() == 0) break;
      grant_phase(/*steal=*/false);
      verdict_phase(epoch);
      apply_phase();
      ++stats_.settle_rounds;
    }
    for (auto& p : pending_) p.clear();
  }

  // Batch-end delta publication. Per-shard lists concatenate shard 0..S-1
  // into one sorted, deduplicated run: within a phase the retain-vs-drain
  // timing of the mesh can reorder a shard's pushes under parallel
  // execution, so the raw order is schedule-dependent -- the sorted set
  // is not, which keeps the sink (and the service's snapshot capture)
  // inside the determinism contract.
  void flush_deltas() {
    if (delta_sink_ != nullptr) {
      std::size_t base = delta_sink_->size();
      for (auto& d : deltas_)
        delta_sink_->insert(delta_sink_->end(), d.begin(), d.end());
      auto lo = delta_sink_->begin() + static_cast<std::ptrdiff_t>(base);
      std::sort(lo, delta_sink_->end());
      delta_sink_->erase(std::unique(lo, delta_sink_->end()),
                         delta_sink_->end());
    }
    for (auto& d : deltas_) d.clear();
  }

  Config cfg_;
  std::uint32_t shards_;
  graph::EdgePool pool_;
  ShardMesh mesh_;

  // Stateless keyed streams (DESIGN.md S2): a draw depends only on
  // (master, key, epoch), so any shard can evaluate any key -- the
  // topology cannot perturb the randomness.
  parallel::RngStream insert_pri_;
  parallel::RngStream settle_draw_;
  parallel::RngStream settle_pri_;
  std::uint64_t insert_epoch_ = 0;  // insert batches seen
  std::uint64_t settle_epoch_ = 0;  // cross-shard settle rounds seen

  // Global arrays under single-writer-per-owner discipline: vertex slots
  // are written only by the vertex's home shard, edge slots only by the
  // edge's owner shard (claim_/grant_ scratch included).
  std::vector<std::uint64_t> pri_;
  std::vector<EdgeHot> ehot_;
  std::vector<VertexHot> vh_;
  std::vector<std::vector<EdgeId>> adj_;
  std::vector<EdgeId> claim_id_;         // per-vertex arbitration scratch
  std::vector<std::uint64_t> claim_pri_;
  std::vector<std::uint32_t> grant_cnt_;  // per-edge grant scratch
  std::vector<std::uint64_t> grant_deg_;

  // Per-shard lists (slot s touched only by shard s inside phases, by the
  // coordinator between phases).
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> append_inbox_;
  std::vector<std::vector<EdgeId>> inserted_owned_;
  std::vector<std::vector<VertexId>> pending_;
  std::vector<std::vector<VertexId>> pending_next_;
  std::vector<std::vector<VertexId>> deltas_;
  std::vector<std::vector<VertexId>> vtouched_;
  std::vector<std::vector<EdgeId>> etouched_;
  std::vector<std::vector<EdgeId>> cand_;
  std::vector<PerShard> per_;

  std::vector<EdgeId> ids_;  // insert_edges return buffer
  std::vector<EdgeId> del_;
  std::vector<VertexId>* delta_sink_ = nullptr;
  ShardStats stats_;
};

}  // namespace parmatch::shard
