// shard/shard_map.h -- vertex -> shard routing for the sharded matcher
// (DESIGN.md S15). The vertex space is partitioned by a salted hash, so
// shard populations stay balanced for any vertex-id distribution (a modulo
// split would alias generator striding into shard skew). Edge ownership
// follows the lower-shard-owns rule: the owning shard of an edge is the
// MINIMUM shard index among its endpoint homes -- a total, symmetric rule
// both sides of a cross-shard edge can evaluate locally from the endpoint
// list alone, with no negotiation messages.
//
// shard_of is pure in (vertex, shard count): routing never depends on
// thread count, arrival order, or which shard evaluates it -- the first
// brick of the level-3 determinism contract (bit-identical final matchings
// across thread counts AND shard counts).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <span>

#include "graph/edge.h"
#include "util/rng.h"

namespace parmatch::shard {

// Salt for the routing hash: fixed (not config.seed) so the partition is a
// property of the deployment topology, not of the matcher's RNG stream --
// re-seeding the matcher must not resharded the graph.
inline constexpr std::uint64_t kShardSalt = 0x5AAD'0F00'37E1'D00Dull;

inline std::uint32_t shard_of(graph::VertexId v, std::uint32_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::uint32_t>(hash64(kShardSalt, v) % shards);
}

// Lower-shard-owns: the owner runs claim/arbitration bookkeeping for the
// edge and ships (vertex, match) verdicts to the peer endpoint homes.
inline std::uint32_t owner_of(std::span<const graph::VertexId> vs,
                              std::uint32_t shards) {
  std::uint32_t o = shard_of(vs[0], shards);
  for (std::size_t i = 1; i < vs.size(); ++i) {
    std::uint32_t s = shard_of(vs[i], shards);
    if (s < o) o = s;
  }
  return o;
}

// True when the edge spans more than one shard (at least one endpoint home
// differs from another) -- the protocol's "foreign verdict" case.
inline bool crosses_shards(std::span<const graph::VertexId> vs,
                           std::uint32_t shards) {
  std::uint32_t s0 = shard_of(vs[0], shards);
  for (std::size_t i = 1; i < vs.size(); ++i)
    if (shard_of(vs[i], shards) != s0) return true;
  return false;
}

// PARMATCH_SHARDS=N (default 1). Clamped to [1, 64]: the mesh is S^2
// rings, and past a few dozen shards the protocol's round barriers
// dominate on any realistic core count.
inline std::uint32_t shards_from_env() {
  const char* e = std::getenv("PARMATCH_SHARDS");
  if (e == nullptr) return 1;
  long v = std::strtol(e, nullptr, 10);
  if (v < 1) return 1;
  if (v > 64) return 64;
  return static_cast<std::uint32_t>(v);
}

}  // namespace parmatch::shard
