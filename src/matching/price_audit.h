// matching/price_audit.h -- the coin-per-edge deletion-price accounting of
// paper Lemmas 3.3, 3.4 and 5.8, replayed against a static MatchResult.
//
// Every edge carries exactly one coin, collected exactly once:
//  * deleting a matched edge d ("root") collects d's own coin plus the coin
//    of every live edge whose eliminator is d and whose coin is still
//    uncollected -- these are the edges the repair must re-examine;
//  * deleting an unmatched edge e whose eliminator is still alive ("early"
//    delete, Lemma 5.8) collects e's own coin: its sample was still charged
//    to a live repair obligation;
//  * deleting an unmatched edge whose eliminator was already deleted pays
//    0: its coin was collected when the eliminator fell ("late" delete).
//
// Consequences audited by bench E6: payment is positive iff the delete is
// early (Lemma 5.8); a full teardown in ANY order pays exactly m, every
// run (Lemma 3.4); and for an order chosen without looking at the realized
// matching, the expected payment per early delete is at most 2 (Lemma 3.3)
// -- an adaptive adversary that reads the matching and deletes it first
// concentrates all m coins on the matched deletes and blows the bound.
//
// Complexity contract: O(id_bound) to build, O(1) per on_delete.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.h"
#include "matching/match_result.h"

namespace parmatch::matching {

class PriceAuditor {
 public:
  explicit PriceAuditor(const MatchResult& r)
      : elim_(r.eliminator),
        deleted_(r.eliminator.size(), 0),
        unpaid_children_(r.eliminator.size(), 0) {
    for (graph::EdgeId e = 0; e < elim_.size(); ++e) {
      graph::EdgeId d = elim_[e];
      if (d != graph::kInvalidEdge && d != e) ++unpaid_children_[d];
    }
  }

  // Processes the deletion of edge e; returns the payment it collects.
  std::int64_t on_delete(graph::EdgeId e) {
    std::int64_t pay = 0;
    graph::EdgeId d = elim_[e];
    if (d == e) {
      // Root: collect its own coin and every still-uncollected child coin.
      pay = 1 + unpaid_children_[e];
      unpaid_children_[e] = 0;
    } else if (d != graph::kInvalidEdge && !deleted_[d]) {
      // Early child delete: its coin is still charged to the live root.
      pay = 1;
      --unpaid_children_[d];
    }
    deleted_[e] = 1;
    total_ += pay;
    return pay;
  }

  std::int64_t total_payment() const { return total_; }

 private:
  std::vector<graph::EdgeId> elim_;
  std::vector<std::uint8_t> deleted_;
  std::vector<std::int64_t> unpaid_children_;
  std::int64_t total_ = 0;
};

}  // namespace parmatch::matching
