// matching/sequential_greedy.h -- the reference greedy matcher (paper
// Section 3): draw a uniform priority per edge, process edges in ascending
// priority order, match an edge iff every endpoint is still free. For the
// same pool, ids and seed this produces the IDENTICAL matched set to
// matching/parallel_greedy.h (the parallel rounds compute the same greedy
// fixed point) -- the cross-check bench E5 and the tests rely on that.
//
// Complexity contract: O(m' + m log m) work (the sort dominates),
// sequential.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_pool.h"
#include "matching/match_result.h"
#include "util/rng.h"

namespace parmatch::matching {

inline MatchResult sequential_greedy_match(
    const graph::EdgePool& pool, const std::vector<graph::EdgeId>& ids,
    std::uint64_t seed) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  MatchResult r;
  r.rounds = 1;
  r.samples.assign(pool.id_bound(), kNoSample);
  r.eliminator.assign(pool.id_bound(), kInvalidEdge);
  for (EdgeId e : ids) r.samples[e] = parmatch::hash64(seed, e);

  std::vector<EdgeId> order = ids;
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return r.samples[a] < r.samples[b] ||
           (r.samples[a] == r.samples[b] && a < b);
  });

  std::vector<EdgeId> taken_by(pool.vertex_bound(), kInvalidEdge);
  for (EdgeId e : order) {
    bool free_all = true;
    for (graph::VertexId v : pool.vertices(e))
      free_all = free_all && taken_by[v] == kInvalidEdge;
    if (!free_all) continue;
    for (graph::VertexId v : pool.vertices(e)) taken_by[v] = e;
    r.matched.push_back(e);
  }
  std::sort(r.matched.begin(), r.matched.end());

  for (EdgeId e : ids) {
    EdgeId elim = kInvalidEdge;
    for (graph::VertexId v : pool.vertices(e)) {
      EdgeId t = taken_by[v];
      if (t == kInvalidEdge) continue;
      if (t == e) {
        elim = e;
        break;
      }
      if (elim == kInvalidEdge || r.samples[t] < r.samples[elim] ||
          (r.samples[t] == r.samples[elim] && t < elim))
        elim = t;
    }
    r.eliminator[e] = elim;
  }
  return r;
}

}  // namespace parmatch::matching
