// matching/vertex_hot.h -- the packed per-vertex hot record shared by the
// greedy claim rounds (matching/parallel_greedy.h) and the batch-dynamic
// matcher (dyn/dynamic_matcher.h). DESIGN.md S11.
//
// The claim/commit/settle loops touch, per endpoint: its current match
// (taken_by), the claim scratch slot (min_edge), its live incident count
// (live_deg), and -- on the adjacency-owning paths (insert P2's appends,
// settle's sampling scan) -- the vertex's incidence-chain header. As
// separate std::vector arrays that is three to four cache misses per
// batch-random vertex; packed into one 32-byte record it is one line
// shared by two vertices, and the loops software-prefetch the whole record
// a few iterations ahead (util/prefetch.h). The embedded graph::AdjHead is
// what lets the settle pipeline start a vertex's scan with zero extra
// header miss.
//
// Concurrency contract: min_edge is the only contended field -- claim
// rounds CAS-min it via std::atomic_ref (4-byte aligned by layout below);
// taken_by, live_deg, and adj follow the matcher's per-vertex ownership
// phases. Plain-memory fallbacks apply whenever the phase runs inline
// (parallel::run_phase_seq).
#pragma once

#include <cstdint>

#include "graph/adjacency.h"
#include "graph/edge.h"

namespace parmatch::matching {

struct VertexHot {
  graph::EdgeId taken_by = graph::kInvalidEdge;  // vertex -> its match
  graph::EdgeId min_edge = graph::kInvalidEdge;  // claim-round scratch
  std::uint32_t live_deg = 0;                    // live incident edges
  std::uint32_t reserved = 0;
  graph::AdjHead adj;                            // incidence-chain header
  std::uint32_t pad_ = 0;                        // pads the record to 32B

  bool free() const { return taken_by == graph::kInvalidEdge; }
};

// 32 bytes so records never straddle a cache line (allocations are 16-byte
// aligned, so records sit at 0/32 within every line) and vector growth
// stays a flat memcpy; the claim loops' atomic_ref on min_edge needs its
// natural 4-byte alignment, which the layout guarantees.
static_assert(sizeof(VertexHot) == 32 && alignof(VertexHot) == 4);

}  // namespace parmatch::matching
