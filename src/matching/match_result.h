// matching/match_result.h -- the output contract shared by the sequential
// and parallel static matchers (paper Section 3). Besides the matched set,
// a result exposes the random sample space that produced it:
//
//  * samples[e]     -- the 64-bit priority drawn for edge e (the paper's
//                      "sample"); the matching is exactly greedy in
//                      ascending priority order;
//  * eliminator[e]  -- the matched edge that removed e from contention: the
//                      minimum-priority matched edge sharing a vertex with
//                      e (necessarily of lower priority than e); matched
//                      edges eliminate themselves. This is the object the
//                      price audit (Lemmas 3.3/3.4) charges against.
//
// Arrays are indexed by EdgeId up to the pool's id_bound(); slots for ids
// not in the matched instance hold kInvalidEdge / kNoSample.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge.h"

namespace parmatch::matching {

inline constexpr std::uint64_t kNoSample =
    std::numeric_limits<std::uint64_t>::max();

struct MatchResult {
  std::vector<graph::EdgeId> matched;      // matched edge ids
  std::vector<std::uint64_t> samples;      // id-indexed priorities
  std::vector<graph::EdgeId> eliminator;   // id-indexed; self iff matched
  std::size_t rounds = 0;                  // parallel rounds taken (1 if seq)
};

}  // namespace parmatch::matching
