// matching/parallel_greedy.h -- parallelGreedyMatch (paper Lemma 1.3 /
// Theorem 3.2): maximal hypergraph matching by random priorities, computed
// as exactly the sequential greedy matching for those priorities.
//
// The claim loop is an instance of the deterministic-reservations engine
// (prims/speculative_for.h): the active edges are sorted by (priority, id)
// -- two stable radix passes, O(n) work -- and the engine runs reserve/
// commit rounds over a sliding prefix of that order. An edge reserves every
// endpoint's VertexHot::min_edge slot with its ORDER INDEX (index-min =
// priority-min, because the prefix order IS the priority order); holding
// all slots at commit means no better in-flight edge wants any endpoint,
// so the edge matches and takes its vertices. Losers retry in the next
// round's prefix; edges that see a taken endpoint drop out. Lower index
// always winning makes the result sequentially equivalent, and O(log m)
// rounds whp follow from Fischer-Noever exactly as for the local-minima
// formulation.
//
// Per-vertex state lives in the packed VertexHot record
// (matching/vertex_hot.h): taken_by and the min_edge reservation slot share
// a cache line. Execution strategy per round comes from
// parallel::run_spec_round_seq (fused plain-memory rounds below the
// speculation break-even, forked phases with CAS-min reservations above);
// either way the matching, rounds, and retries are bit-identical.
//
// Complexity contract: O(m' + retries) work with E[retries] = O(m'), depth
// O(log^2 m') whp: O(log m') rounds of O(log) span phases.
// greedy_match_rounds is the reusable core the dynamic matcher drives with
// its own persistent vertex state.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_pool.h"
#include "matching/match_result.h"
#include "matching/vertex_hot.h"
#include "parallel/parallel_for.h"
#include "prims/radix_sort.h"
#include "prims/speculative_for.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

namespace parmatch::matching {

namespace detail {

// (priority, id) lexicographic compare so ties cannot double-match a vertex.
inline bool beats(std::uint64_t pa, graph::EdgeId a, std::uint64_t pb,
                  graph::EdgeId b) {
  return pa < pb || (pa == pb && a < b);
}

// The greedy claim loop's reservation step (contract in
// prims/speculative_for.h). Items are positions in the (priority, id)-
// sorted order, so index-min reservations implement priority-min claims.
struct GreedyClaimStep {
  const graph::EdgePool& pool;
  std::span<const graph::EdgeId> order;
  VertexHot* vstate;
  std::vector<graph::EdgeId>* matched_out;
  bool seq = true;

  void begin_round(std::uint64_t, bool s) { seq = s; }

  prims::SpecStatus reserve(std::size_t i, bool) {
    graph::EdgeId e = order[i];
    // taken_by is stable within a round (written only in commit, behind a
    // phase barrier), so this read is race-free and mode-identical.
    for (graph::VertexId v : pool.vertices(e))
      if (vstate[v].taken_by != graph::kInvalidEdge)
        return prims::SpecStatus::kDone;
    for (graph::VertexId v : pool.vertices(e))
      prims::reserve_slot(vstate[v].min_edge, static_cast<std::uint32_t>(i),
                          seq);
    return prims::SpecStatus::kTryCommit;
  }

  bool commit(std::size_t i) {
    graph::EdgeId e = order[i];
    auto idx = static_cast<std::uint32_t>(i);
    bool owns = true;
    for (graph::VertexId v : pool.vertices(e))
      owns = owns && prims::slot_holds(vstate[v].min_edge, idx, seq);
    // Release every slot this edge holds (the winner holds all of them),
    // restoring the min_edge == kInvalidEdge invariant for the next round;
    // slots this edge lost are the new owner's to release.
    for (graph::VertexId v : pool.vertices(e))
      if (owns || prims::slot_holds(vstate[v].min_edge, idx, seq))
        prims::release_slot(vstate[v].min_edge, seq);
    if (!owns) return false;
    // Winners are vertex-disjoint (each owned ALL its slots), so the
    // taken_by writes are unconcurrent even in a forked commit phase.
    for (graph::VertexId v : pool.vertices(e)) vstate[v].taken_by = e;
    return true;
  }

  void finalize(std::size_t i) {
    if (matched_out) matched_out->push_back(order[i]);
  }
};

}  // namespace detail

// Phases charged for the (priority, id) ordering sort: an id-width radix
// pass (1x the 32-bit radix model) plus a full 64-bit priority pass (2x)
// -- the same charging convention as the dynamic matcher's steal-order
// sort, so measured_depth compares across the two claim loops.
inline constexpr std::size_t kGreedySortPhases = 3 * prims::kRadixSortPhases32;

// Runs the deterministic-reservations claim loop over `active` against
// caller-owned vertex state.
//  * pri(e)      -- priority of edge e (stable within the call);
//  * vstate      -- packed per-vertex records, sized >= pool.vertex_bound();
//                   taken_by of newly matched edges is written; min_edge
//                   must be kInvalidEdge on entry and is restored on exit;
//  * matched_out -- newly matched ids are appended (if non-null) in commit
//                   order: ascending (priority, id) within each engine
//                   round (a retried edge can land after a later-sorted one
//                   that committed a round earlier);
//  * arena       -- scratch for the sort and the engine's retry queues; the
//                   caller must keep it alive (and not reset it) for the
//                   duration of the call;
//  * work        -- accumulates item-rounds processed, n + retries (if
//                   non-null);
//  * depth       -- accumulates measured span (if non-null): the ordering
//                   sort plus prims::kSpecRoundPhases primitives per
//                   engine round, regardless of execution strategy;
//  * retries     -- accumulates the engine's retry count (if non-null).
// Returns the number of reserve/commit rounds. Allocation-free given warm
// buffers: all scratch comes from the arena, matched_out reuses capacity.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::span<const graph::EdgeId> active,
                                PriFn&& pri, std::vector<VertexHot>& vstate,
                                std::vector<graph::EdgeId>* matched_out,
                                ScratchArena& arena,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr,
                                std::size_t* retries = nullptr) {
  using graph::EdgeId;
  std::size_t n = active.size();
  if (n == 0) return 0;
  if (work) *work += n;
  if (n == 1) {
    // A lone candidate claims every (free, by the caller's contract)
    // endpoint unopposed: the whole engine collapses to the commit. Taken
    // in every exec mode, so counters stay mode-identical -- the k=1
    // serving fast path (DESIGN.md S11).
    EdgeId e = active[0];
    for (graph::VertexId v : pool.vertices(e)) vstate[v].taken_by = e;
    if (matched_out) matched_out->push_back(e);
    if (depth) *depth += prims::kSpecRoundPhases * parallel::model_depth(1);
    return 1;
  }
  // Prefix order = priority order: copy, then two stable radix passes
  // (by id, then by priority) give ascending (pri, id). The engine's
  // index-min reservations are then exactly priority-min claims.
  auto order = arena.alloc<EdgeId>(n);
  parallel::parallel_for_blocked(0, n, [&](std::size_t b, std::size_t e) {
    std::memcpy(order.data() + b, active.data() + b, (e - b) * sizeof(EdgeId));
  });
  int id_bits = pool.id_bound() <= 1
                    ? 1
                    : static_cast<int>(std::bit_width(pool.id_bound() - 1));
  prims::radix_sort(
      std::span<EdgeId>(order),
      [](EdgeId e) { return static_cast<std::uint64_t>(e); }, id_bits, arena);
  prims::radix_sort(
      std::span<EdgeId>(order), [&](EdgeId e) { return pri(e); }, 64, arena);
  if (depth) *depth += kGreedySortPhases * parallel::model_depth(n);
  detail::GreedyClaimStep step{pool, order, vstate.data(), matched_out};
  prims::SpecStats st = prims::speculative_for(step, 0, n, arena, 0, depth);
  if (work) *work += st.retries;
  if (retries) *retries += st.retries;
  return st.rounds;
}

// Vector-friendly wrapper (static matcher and tests): scratch comes from a
// call-local arena.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::vector<graph::EdgeId> active,
                                PriFn&& pri, std::vector<VertexHot>& vstate,
                                std::vector<graph::EdgeId>* matched_out,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr) {
  ScratchArena arena;
  return greedy_match_rounds(pool, std::span<const graph::EdgeId>(active),
                             pri, vstate, matched_out, arena, work, depth);
}

// Static maximal matching over `ids` with fresh priorities drawn from
// `seed`. Fills the full MatchResult contract (samples + eliminators).
inline MatchResult parallel_greedy_match(const graph::EdgePool& pool,
                                         const std::vector<graph::EdgeId>& ids,
                                         std::uint64_t seed) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  MatchResult r;
  r.samples.assign(pool.id_bound(), kNoSample);
  r.eliminator.assign(pool.id_bound(), kInvalidEdge);
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    r.samples[ids[i]] = parmatch::hash64(seed, ids[i]);
  });
  std::vector<VertexHot> vstate(pool.vertex_bound());
  r.rounds = greedy_match_rounds(
      pool, ids, [&](EdgeId e) { return r.samples[e]; }, vstate, &r.matched);
  std::sort(r.matched.begin(), r.matched.end());
  // Eliminators: for an unmatched edge, the minimum-priority matched edge at
  // any of its vertices (it exists, else the edge would have matched).
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    EdgeId e = ids[i];
    EdgeId elim = kInvalidEdge;
    for (graph::VertexId v : pool.vertices(e)) {
      EdgeId t = vstate[v].taken_by;
      if (t == kInvalidEdge) continue;
      if (t == e) {
        elim = e;
        break;
      }
      if (elim == kInvalidEdge ||
          detail::beats(r.samples[t], t, r.samples[elim], elim))
        elim = t;
    }
    r.eliminator[e] = elim;
  });
  return r;
}

}  // namespace parmatch::matching
