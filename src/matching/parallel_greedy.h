// matching/parallel_greedy.h -- parallelGreedyMatch (paper Lemma 1.3 /
// Theorem 3.2): maximal hypergraph matching by random-priority local-minima
// rounds. Every edge draws a uniform priority; each round, an edge whose
// priority is the minimum among the still-active edges at every one of its
// vertices joins the matching, and edges with a newly matched vertex drop
// out. This computes exactly the sequential greedy matching for the same
// priorities (deterministic reservations sense), in O(log m) rounds whp
// (Fischer-Noever).
//
// Per-vertex state lives in the packed VertexHot record
// (matching/vertex_hot.h): taken_by and the min_edge claim slot share a
// cache line, and the claim loop prefetches the records kPrefetchAhead
// iterations ahead so the batch-random vertex misses overlap.
//
// Each round is adaptive (parallel/cost_model.h): below the calibrated
// cutover it runs as one fused sequential pass -- claim, winner commit, and
// scratch reset with plain memory ops, no barriers -- above it as the
// 5-phase data-parallel schedule. Both produce the identical matching (the
// CAS-min and the sequential min agree by construction), so the choice is
// invisible to everything but the clock.
//
// Complexity contract: O(m') expected work (the active set shrinks
// geometrically in expectation), O(log^2 m') depth whp: O(log m') rounds of
// O(log) span primitives. greedy_match_rounds is the reusable core the
// dynamic matcher drives with its own persistent vertex state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_pool.h"
#include "matching/match_result.h"
#include "matching/vertex_hot.h"
#include "parallel/parallel_for.h"
#include "prims/filter.h"
#include "util/prefetch.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

namespace parmatch::matching {

namespace detail {

// (priority, id) lexicographic compare so ties cannot double-match a vertex.
inline bool beats(std::uint64_t pa, graph::EdgeId a, std::uint64_t pb,
                  graph::EdgeId b) {
  return pa < pb || (pa == pb && a < b);
}

}  // namespace detail

// Runs local-minimum rounds over `active` against caller-owned vertex state.
//  * pri(e)      -- priority of edge e (stable within the call);
//  * vstate      -- packed per-vertex records, sized >= pool.vertex_bound();
//                   taken_by of newly matched edges is written; min_edge
//                   must be kInvalidEdge on entry and is restored on exit;
//  * matched_out -- newly matched ids are appended (if non-null);
//  * arena       -- scratch for the per-round winner/survivor packs; the
//                   caller must keep it alive (and not reset it) for the
//                   duration of the call;
//  * work        -- accumulates edges touched (if non-null);
//  * depth       -- accumulates measured span (if non-null): each round is
//                   charged as five data-parallel primitives over the
//                   active set, 5 * parallel::model_depth(|active|),
//                   regardless of which execution strategy ran it.
// Returns the number of rounds. Allocation-free given warm buffers: round
// scratch comes from the arena, matched_out reuses its capacity.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::span<const graph::EdgeId> active,
                                PriFn&& pri, std::vector<VertexHot>& vstate,
                                std::vector<graph::EdgeId>* matched_out,
                                ScratchArena& arena,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  std::size_t rounds = 0;
  while (!active.empty()) {
    ++rounds;
    std::size_t n = active.size();
    if (work) *work += n;
    if (depth) *depth += 5 * parallel::model_depth(n);
    if (parallel::run_phase_seq(n)) {
      if (n == 1) {
        // A lone active edge claims every (free, by the survivor
        // invariant) endpoint unopposed and wins: the whole round
        // collapses to the commit. min_edge is logically written and
        // reset within the round, so it needs no touching.
        EdgeId e = active[0];
        for (graph::VertexId v : pool.vertices(e)) vstate[v].taken_by = e;
        if (matched_out) matched_out->push_back(e);
        return rounds;
      }
      // Fused sequential round: one pass claims, one pass commits winners
      // (the winner test reads only min_edge, so committing taken_by as
      // winners are found cannot change later tests), one pass resets and
      // packs the survivors. Plain memory everywhere.
      for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n)
          for (graph::VertexId v : pool.vertices(active[i + kPrefetchAhead]))
            prefetch_write(&vstate[v]);
        EdgeId e = active[i];
        for (graph::VertexId v : pool.vertices(e)) {
          EdgeId cur = vstate[v].min_edge;
          if (cur == kInvalidEdge || detail::beats(pri(e), e, pri(cur), cur))
            vstate[v].min_edge = e;
        }
      }
      auto winners = arena.alloc<EdgeId>(n);
      std::size_t nw = 0;
      for (EdgeId e : active) {
        bool owns = true;
        for (graph::VertexId v : pool.vertices(e))
          owns = owns && vstate[v].min_edge == e;
        if (!owns) continue;
        winners[nw++] = e;
        for (graph::VertexId v : pool.vertices(e)) vstate[v].taken_by = e;
      }
      if (matched_out)
        matched_out->insert(matched_out->end(), winners.begin(),
                            winners.begin() + nw);
      auto survivors = arena.alloc<EdgeId>(n);
      std::size_t ns = 0;
      for (EdgeId e : active) {
        bool free_all = true;
        for (graph::VertexId v : pool.vertices(e)) {
          vstate[v].min_edge = kInvalidEdge;
          free_all = free_all && vstate[v].taken_by == kInvalidEdge;
        }
        if (free_all) survivors[ns++] = e;
      }
      active = std::span<const EdgeId>(survivors.data(), ns);
      continue;
    }
    // Claim: each active edge CAS-mins itself into every endpoint slot,
    // with the records for a few edges ahead prefetched so the random
    // vertex misses overlap instead of serializing.
    parallel::parallel_for_blocked(0, n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (i + kPrefetchAhead < e)
          for (graph::VertexId v : pool.vertices(active[i + kPrefetchAhead]))
            prefetch_write(&vstate[v]);
        EdgeId ed = active[i];
        for (graph::VertexId v : pool.vertices(ed)) {
          std::atomic_ref<EdgeId> slot(vstate[v].min_edge);
          EdgeId cur = slot.load(std::memory_order_relaxed);
          while (cur == kInvalidEdge ||
                 detail::beats(pri(ed), ed, pri(cur), cur)) {
            if (slot.compare_exchange_weak(cur, ed,
                                           std::memory_order_acq_rel))
              break;
          }
        }
      }
    });
    // Commit: winners own every endpoint slot.
    auto winners = prims::filter_marked(
        active,
        [&](EdgeId e) {
          for (graph::VertexId v : pool.vertices(e))
            if (vstate[v].min_edge != e) return false;
          return true;
        },
        arena);
    parallel::parallel_for(0, winners.size(), [&](std::size_t i) {
      EdgeId e = winners[i];
      for (graph::VertexId v : pool.vertices(e)) vstate[v].taken_by = e;
    });
    if (matched_out)
      matched_out->insert(matched_out->end(), winners.begin(), winners.end());
    // Reset scratch, then keep only edges with all endpoints still free.
    // Atomic store: several active edges share a vertex, so the same slot
    // is reset concurrently (same value, but a race without the atomic).
    parallel::parallel_for(0, n, [&](std::size_t i) {
      for (graph::VertexId v : pool.vertices(active[i]))
        std::atomic_ref<EdgeId>(vstate[v].min_edge)
            .store(kInvalidEdge, std::memory_order_relaxed);
    });
    active = prims::filter_marked(
        active,
        [&](EdgeId e) {
          for (graph::VertexId v : pool.vertices(e))
            if (vstate[v].taken_by != kInvalidEdge) return false;
          return true;
        },
        arena);
  }
  return rounds;
}

// Vector-friendly wrapper (static matcher and tests): scratch comes from a
// call-local arena.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::vector<graph::EdgeId> active,
                                PriFn&& pri, std::vector<VertexHot>& vstate,
                                std::vector<graph::EdgeId>* matched_out,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr) {
  ScratchArena arena;
  return greedy_match_rounds(pool, std::span<const graph::EdgeId>(active),
                             pri, vstate, matched_out, arena, work, depth);
}

// Static maximal matching over `ids` with fresh priorities drawn from
// `seed`. Fills the full MatchResult contract (samples + eliminators).
inline MatchResult parallel_greedy_match(const graph::EdgePool& pool,
                                         const std::vector<graph::EdgeId>& ids,
                                         std::uint64_t seed) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  MatchResult r;
  r.samples.assign(pool.id_bound(), kNoSample);
  r.eliminator.assign(pool.id_bound(), kInvalidEdge);
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    r.samples[ids[i]] = parmatch::hash64(seed, ids[i]);
  });
  std::vector<VertexHot> vstate(pool.vertex_bound());
  r.rounds = greedy_match_rounds(
      pool, ids, [&](EdgeId e) { return r.samples[e]; }, vstate, &r.matched);
  std::sort(r.matched.begin(), r.matched.end());
  // Eliminators: for an unmatched edge, the minimum-priority matched edge at
  // any of its vertices (it exists, else the edge would have matched).
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    EdgeId e = ids[i];
    EdgeId elim = kInvalidEdge;
    for (graph::VertexId v : pool.vertices(e)) {
      EdgeId t = vstate[v].taken_by;
      if (t == kInvalidEdge) continue;
      if (t == e) {
        elim = e;
        break;
      }
      if (elim == kInvalidEdge ||
          detail::beats(r.samples[t], t, r.samples[elim], elim))
        elim = t;
    }
    r.eliminator[e] = elim;
  });
  return r;
}

}  // namespace parmatch::matching
