// matching/parallel_greedy.h -- parallelGreedyMatch (paper Lemma 1.3 /
// Theorem 3.2): maximal hypergraph matching by random-priority local-minima
// rounds. Every edge draws a uniform priority; each round, an edge whose
// priority is the minimum among the still-active edges at every one of its
// vertices joins the matching, and edges with a newly matched vertex drop
// out. This computes exactly the sequential greedy matching for the same
// priorities (deterministic reservations sense), in O(log m) rounds whp
// (Fischer-Noever).
//
// Complexity contract: O(m') expected work (the active set shrinks
// geometrically in expectation), O(log^2 m') depth whp: O(log m') rounds of
// O(log) span primitives. greedy_match_rounds is the reusable core the
// dynamic matcher drives with its own persistent vertex state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_pool.h"
#include "matching/match_result.h"
#include "parallel/parallel_for.h"
#include "prims/filter.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

namespace parmatch::matching {

namespace detail {

// (priority, id) lexicographic compare so ties cannot double-match a vertex.
inline bool beats(std::uint64_t pa, graph::EdgeId a, std::uint64_t pb,
                  graph::EdgeId b) {
  return pa < pb || (pa == pb && a < b);
}

}  // namespace detail

// Runs local-minimum rounds over `active` against caller-owned vertex state.
//  * pri(e)      -- priority of edge e (stable within the call);
//  * taken_by    -- vertex -> matching edge (kInvalidEdge == free); entries
//                   for newly matched edges are written;
//  * min_edge    -- scratch, sized >= pool.vertex_bound(), all kInvalidEdge
//                   on entry and restored to kInvalidEdge on exit;
//  * matched_out -- newly matched ids are appended (if non-null);
//  * arena       -- scratch for the per-round winner/survivor packs; the
//                   caller must keep it alive (and not reset it) for the
//                   duration of the call;
//  * work        -- accumulates edges touched (if non-null);
//  * depth       -- accumulates measured span (if non-null): each round is
//                   five data-parallel primitives over the active set, so it
//                   charges 5 * parallel::model_depth(|active|).
// Returns the number of rounds. Allocation-free given warm buffers: round
// scratch comes from the arena, matched_out reuses its capacity.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::span<const graph::EdgeId> active,
                                PriFn&& pri,
                                std::vector<graph::EdgeId>& taken_by,
                                std::vector<graph::EdgeId>& min_edge,
                                std::vector<graph::EdgeId>* matched_out,
                                ScratchArena& arena,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  const bool seq = parallel::sequential_mode();
  std::size_t rounds = 0;
  while (!active.empty()) {
    ++rounds;
    if (work) *work += active.size();
    if (depth) *depth += 5 * parallel::model_depth(active.size());
    // Claim: each active edge CAS-mins itself into every endpoint slot
    // (plain compare-and-store when the pool is sequential).
    parallel::parallel_for(0, active.size(), [&](std::size_t i) {
      EdgeId e = active[i];
      for (graph::VertexId v : pool.vertices(e)) {
        if (seq) {
          EdgeId cur = min_edge[v];
          if (cur == kInvalidEdge || detail::beats(pri(e), e, pri(cur), cur))
            min_edge[v] = e;
          continue;
        }
        std::atomic_ref<EdgeId> slot(min_edge[v]);
        EdgeId cur = slot.load(std::memory_order_relaxed);
        while (cur == kInvalidEdge ||
               detail::beats(pri(e), e, pri(cur), cur)) {
          if (slot.compare_exchange_weak(cur, e, std::memory_order_acq_rel))
            break;
        }
      }
    });
    // Commit: winners own every endpoint slot.
    auto winners = prims::filter_marked(
        active,
        [&](EdgeId e) {
          for (graph::VertexId v : pool.vertices(e))
            if (min_edge[v] != e) return false;
          return true;
        },
        arena);
    parallel::parallel_for(0, winners.size(), [&](std::size_t i) {
      EdgeId e = winners[i];
      for (graph::VertexId v : pool.vertices(e)) taken_by[v] = e;
    });
    if (matched_out)
      matched_out->insert(matched_out->end(), winners.begin(), winners.end());
    // Reset scratch, then keep only edges with all endpoints still free.
    // Atomic store: several active edges share a vertex, so the same slot
    // is reset concurrently (same value, but a race without the atomic).
    parallel::parallel_for(0, active.size(), [&](std::size_t i) {
      for (graph::VertexId v : pool.vertices(active[i])) {
        if (seq)
          min_edge[v] = kInvalidEdge;
        else
          std::atomic_ref<EdgeId>(min_edge[v])
              .store(kInvalidEdge, std::memory_order_relaxed);
      }
    });
    active = prims::filter_marked(
        active,
        [&](EdgeId e) {
          for (graph::VertexId v : pool.vertices(e))
            if (taken_by[v] != kInvalidEdge) return false;
          return true;
        },
        arena);
  }
  return rounds;
}

// Vector-friendly wrapper (static matcher and tests): scratch comes from a
// call-local arena.
template <typename PriFn>
std::size_t greedy_match_rounds(const graph::EdgePool& pool,
                                std::vector<graph::EdgeId> active,
                                PriFn&& pri,
                                std::vector<graph::EdgeId>& taken_by,
                                std::vector<graph::EdgeId>& min_edge,
                                std::vector<graph::EdgeId>* matched_out,
                                std::size_t* work = nullptr,
                                std::size_t* depth = nullptr) {
  ScratchArena arena;
  return greedy_match_rounds(pool, std::span<const graph::EdgeId>(active),
                             pri, taken_by, min_edge, matched_out, arena,
                             work, depth);
}

// Static maximal matching over `ids` with fresh priorities drawn from
// `seed`. Fills the full MatchResult contract (samples + eliminators).
inline MatchResult parallel_greedy_match(const graph::EdgePool& pool,
                                         const std::vector<graph::EdgeId>& ids,
                                         std::uint64_t seed) {
  using graph::EdgeId;
  using graph::kInvalidEdge;
  MatchResult r;
  r.samples.assign(pool.id_bound(), kNoSample);
  r.eliminator.assign(pool.id_bound(), kInvalidEdge);
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    r.samples[ids[i]] = parmatch::hash64(seed, ids[i]);
  });
  std::vector<EdgeId> taken_by(pool.vertex_bound(), kInvalidEdge);
  std::vector<EdgeId> min_edge(pool.vertex_bound(), kInvalidEdge);
  r.rounds = greedy_match_rounds(
      pool, ids, [&](EdgeId e) { return r.samples[e]; }, taken_by, min_edge,
      &r.matched);
  std::sort(r.matched.begin(), r.matched.end());
  // Eliminators: for an unmatched edge, the minimum-priority matched edge at
  // any of its vertices (it exists, else the edge would have matched).
  parallel::parallel_for(0, ids.size(), [&](std::size_t i) {
    EdgeId e = ids[i];
    EdgeId elim = kInvalidEdge;
    for (graph::VertexId v : pool.vertices(e)) {
      EdgeId t = taken_by[v];
      if (t == kInvalidEdge) continue;
      if (t == e) {
        elim = e;
        break;
      }
      if (elim == kInvalidEdge ||
          detail::beats(r.samples[t], t, r.samples[elim], elim))
        elim = t;
    }
    r.eliminator[e] = elim;
  });
  return r;
}

}  // namespace parmatch::matching
