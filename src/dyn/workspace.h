// dyn/workspace.h -- reusable scratch state for one DynamicMatcher
// (DESIGN.md S7's allocation-free batch contract). Every transient buffer
// the insert/delete/settle pipeline needs lives here: either as a named
// std::vector whose capacity survives across batches (results that must
// outlive an arena reset, e.g. the returned id buffer or the settle
// ping-pong sets), or inside the bump ScratchArena (everything consumed
// within a batch phase). After warm-up -- once every vector has reached its
// high-water capacity and the arena its high-water footprint -- a
// steady-state batch performs zero heap allocations
// (tests/test_alloc_free.cpp pins this with a counting operator new).
//
// Arena reset points: the start of every batch and the start of settle
// (once, before the candidate harvest -- NOT per settle round: the engine's
// retry queues and the harvested candidate slices live across rounds).
// Spans handed out by the arena are dead at those points by construction of
// the phase order; cross-batch state rides in the named vectors.
//
// Both execution strategies of the adaptive engine (DESIGN.md S11) draw
// from the same workspace: the fused sequential fast path carves its pair
// staging, class splits, and settle draws out of the identical arena the
// forked phases would have used, so the zero-allocation contract holds for
// every PARMATCH_EXEC_MODE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/edge.h"
#include "util/scratch_arena.h"

namespace parmatch::dyn {

struct BatchWorkspace {
  ScratchArena arena;

  std::vector<graph::EdgeId> ids;      // insert: ids handed back to the caller
                                       // (valid until the next batch)
  std::vector<graph::VertexId> freed;  // vertices freed this batch; doubles as
                                       // the settle pending set
  std::vector<graph::EdgeId> victims;  // matches displaced by steal winners
  std::vector<graph::EdgeId> matched;  // winners of one greedy invocation

  // Settle candidate cache (DynamicMatcher::settle): one adjacency harvest
  // per pending vertex fills cand_pool with its live candidates at
  // [cand_off[i], cand_off[i] + cand_len[i]); the reservation rounds then
  // prune each slice in place instead of rescanning adjacency every round.
  // cand_off is size_t: it is the exclusive scan of the pending vertices'
  // live degrees, whose sum can exceed 32 bits even though any one slice
  // (cand_len) cannot.
  std::vector<graph::EdgeId> cand_pool;
  std::vector<std::size_t> cand_off;
  std::vector<std::uint32_t> cand_len;
};

}  // namespace parmatch::dyn
