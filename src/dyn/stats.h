// dyn/stats.h -- observable counters for the batch-dynamic matcher. These
// are what the experiment harnesses (DESIGN.md Section 4) read: E1/E2
// divide work_units and samples_created by total_updates() to check the
// amortized O(1) / O(r^3) claims, E3 reads the per-batch depth counters
// against the O(log^3 m) bound, E10 reads stolen/bloated to show the lazy
// machinery engaging.
#pragma once

#include <cstddef>

namespace parmatch::dyn {

struct CumulativeStats {
  std::size_t inserts = 0;          // edges inserted
  std::size_t deletes = 0;          // edges deleted
  std::size_t work_units = 0;       // edges touched across all phases
  std::size_t samples_created = 0;  // random priorities drawn
  std::size_t settle_rounds = 0;    // settle reserve/commit rounds, all
                                    // batches
  std::size_t steal_rounds = 0;     // steal reserve/commit rounds, all
                                    // batches (1 per non-empty stealer set
                                    // on the PARMATCH_STEAL_FIXPOINT=0
                                    // legacy path)
  std::size_t spec_retries = 0;     // deterministic-reservations retries
                                    // (prims/speculative_for.h) across the
                                    // settle, steal, and greedy engines
  std::size_t stolen = 0;           // matches displaced by a lower-priority
                                    // inserted edge (greedy-order repair)
  std::size_t bloated = 0;          // matches resettled because their
                                    // neighborhood outgrew the level bound
  std::size_t max_batch_depth = 0;  // deepest measured batch span so far
  std::size_t fused_batches = 0;    // batches the cost model ran on the
                                    // fused sequential fast path. Execution
                                    // diagnostics only: this is the ONE
                                    // counter that legitimately differs
                                    // across PARMATCH_EXEC_MODE settings
                                    // (tests/test_exec_modes.cpp excludes
                                    // it from the bit-identical contract).

  std::size_t total_updates() const { return inserts + deletes; }
};

// Per-batch observables, reset at the start of every insert/delete batch.
// measured_depth is instrumented span, not a proxy: every data-parallel
// phase the batch launches charges parallel::model_depth(n) -- the
// binary-forking fork-tree depth over its n items -- so the value is
// (phases executed) x (primitive depth), the quantity Theorem 1.1 bounds
// by O(log^3 m) whp.
struct BatchStats {
  std::size_t settle_rounds = 0;      // settle reserve/commit rounds
  std::size_t steal_rounds = 0;       // steal reserve/commit rounds
  std::size_t spec_retries = 0;       // reservation retries, all engines
  std::size_t max_greedy_rounds = 0;  // deepest greedy invocation this batch
  std::size_t parallel_phases = 0;    // data-parallel phase launches
  std::size_t measured_depth = 0;     // sum of model_depth over phases
};

}  // namespace parmatch::dyn
