// dyn/stats.h -- observable counters for the batch-dynamic matcher. These
// are the proxies the experiment harnesses (DESIGN.md Section 4) read:
// E1/E2 divide work_units and samples_created by total_updates() to check
// the amortized O(1) / O(r^3) claims, E3 reads settle_rounds and
// max_greedy_rounds as depth proxies, E10 reads stolen/bloated to show the
// lazy machinery engaging.
#pragma once

#include <cstddef>

namespace parmatch::dyn {

struct CumulativeStats {
  std::size_t inserts = 0;          // edges inserted
  std::size_t deletes = 0;          // edges deleted
  std::size_t work_units = 0;       // edges touched across all phases
  std::size_t samples_created = 0;  // random priorities drawn
  std::size_t settle_rounds = 0;    // randomSettle rounds, all batches
  std::size_t stolen = 0;           // matches displaced by a lower-priority
                                    // inserted edge (greedy-order repair)
  std::size_t bloated = 0;          // matches resettled because their
                                    // neighborhood outgrew the level bound

  std::size_t total_updates() const { return inserts + deletes; }
};

struct BatchStats {
  std::size_t settle_rounds = 0;      // randomSettle rounds this batch
  std::size_t max_greedy_rounds = 0;  // deepest greedy invocation this batch
};

}  // namespace parmatch::dyn
