// dyn/dynamic_matcher.h -- the paper's parallel batch-dynamic maximal
// matching structure (Sections 4-5): O(1) amortized work per update at rank
// 2 (O(r^3) general, Theorem 1.1) against an oblivious adversary, with
// O(log^3 m) depth per batch whp.
//
// The structure maintains, per vertex, a lazily compacted incidence list,
// and per live edge a random priority (its "sample"). Invariant after every
// batch: the matched set is maximal. The three mechanisms that make the
// amortized bound work:
//
//  * randomSettle (Section 4): when deletions free the vertices of a
//    matched edge, each freed vertex samples a uniformly random free
//    incident edge and the sampled edges run one claim round of
//    random-priority greedy; losers resample next round. Because the new
//    match is uniform over ~d candidates, an oblivious adversary needs ~d
//    more deletions in the neighborhood before it hits it, which pays for
//    the O(d) rescan (Lemma 3.3's 2-coins-per-early-delete argument --
//    matching/price_audit.h replays the static version of the accounting).
//
//  * levels with gap alpha = Config::level_gap (Section 5): a match settled
//    when its neighborhood had size s gets level floor(log_alpha s), i.e.
//    the size is remembered only up to the gap. If inserts grow the
//    neighborhood past Config::heavy_factor * alpha^(level+1), the match is
//    "bloated": its sample is stale relative to the neighborhood, so it is
//    resettled (unmatched + resampled) to restore the randomness the
//    adversary argument needs. Config::light_only disables levels, bloat
//    tracking and resampling (footnote 8's "treat everything as light"
//    variant): still maximal, but settling becomes deterministic and the
//    adversarial benches show the work blowup.
//
//  * steal on insert: a batch-inserted edge whose priority beats the
//    priority of every matched edge on its taken vertices displaces them
//    (stats.stolen) and the freed vertices resettle. This keeps the
//    matching close to the greedy fixed point for the current samples, so
//    insertions cannot park adversarially useful edges behind stale
//    matches.
//
// Every batch runs as a fixed sequence of data-parallel phases over batch
// primitives (group_by / filter / claim rounds), never as a per-edge
// sequential loop:
//
//   insert: [P1] draw priorities  [P2] group the batch by endpoint and
//   apply adjacency appends / live_deg / growth bumps per vertex-group
//   [P3] classify edges into all-free candidates and steal candidates
//   [P4] resolve steals with one claim round (CAS-min per endpoint,
//   winners displace their victims)  [P5] resettle bloated matches
//   [P6] greedy over the candidates  [P7] settle the freed vertices.
//
//   delete: filter live ids -> unmatch deleted matches -> parallel
//   live_deg decrements -> batch slot free -> settle.
//
//   settle round: all pending vertices compact + reservoir-sample
//   concurrently, sampled edges dedup and redraw priorities, one greedy
//   claim round; losers resample next round.
//
// All randomness is keyed, not sequenced: priority and reservoir draws come
// from parallel::RngStream keyed by (epoch, position) / (vertex, round), so
// the structure's entire trajectory -- matching, stats, work counters -- is
// bit-identical at any worker count (tests/test_thread_determinism.cpp).
// Shared counters (growth bumps, live_deg decrements, work units) use
// atomic fetch-add; everything else is per-vertex or per-edge ownership.
//
// Complexity contract per batch of k updates: expected O(k * r^3) amortized
// work, O(log^3 m) depth whp (settle rounds x greedy claim rounds x O(log)
// primitives); lazy incidence compaction charges each dead entry once to
// the deletion that killed it. BatchStats::measured_depth instruments the
// depth claim directly: every phase charges parallel::model_depth(n).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "dyn/stats.h"
#include "matching/parallel_greedy.h"
#include "parallel/parallel_for.h"
#include "parallel/rng_stream.h"
#include "prims/filter.h"
#include "prims/group_by.h"
#include "prims/radix_sort.h"
#include "prims/reduce.h"
#include "util/rng.h"

namespace parmatch::dyn {

struct Config {
  std::uint64_t seed = 1;
  std::size_t max_rank = 2;      // r: maximum hyperedge rank accepted
  std::size_t level_gap = 2;     // alpha: geometric gap between levels
  std::size_t heavy_factor = 4;  // resettle when growth exceeds this times
                                 // the level-quantized settle size
  bool light_only = false;       // footnote-8 ablation: no levels/resampling
};

class DynamicMatcher {
  using EdgeId = graph::EdgeId;
  using VertexId = graph::VertexId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  DynamicMatcher() : DynamicMatcher(Config{}) {}
  explicit DynamicMatcher(const Config& cfg)
      : cfg_(cfg),
        pool_(cfg.max_rank),
        insert_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 1)),
        settle_draw_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 2)),
        settle_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 3)) {}

  // Inserts a batch; returns the id assigned to each edge, batch order.
  std::vector<EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    batch_ = BatchStats{};
    std::uint64_t epoch = ++insert_epoch_;
    auto ids = pool_.add_edges(batch);
    ensure_bounds();
    std::size_t k = ids.size();
    stats_.inserts += k;
    stats_.work_units += batch.total_cardinality();
    if (k == 0) return ids;

    // P1: every inserted edge draws its sample, keyed (batch epoch, slot).
    charge_phase(k);
    parallel::parallel_for(
        0, k, [&](std::size_t i) { pri_[ids[i]] = insert_pri_.word(epoch, i); });
    stats_.samples_created += k;

    // P2: adjacency -- group the flat (endpoint, edge-ref) incidence of the
    // batch by endpoint; each vertex-group is then applied by one owner, so
    // appends and live_deg bumps race-free; growth bumps target per-edge
    // counters shared between groups and use fetch-add.
    std::vector<EdgeId> bloated = apply_adjacency(batch, ids);

    // P3: classify against the pre-batch matching. An edge is a greedy
    // candidate if every endpoint is free, a steal candidate if some
    // endpoint is taken and its sample beats every match it touches.
    charge_phases(2, k);
    auto candidates =
        prims::filter(std::span<const EdgeId>(ids),
                      [&](EdgeId e) { return all_endpoints_free(e); });
    auto stealers =
        prims::filter(std::span<const EdgeId>(ids), [&](EdgeId e) {
          bool any_taken = false;
          for (VertexId v : pool_.vertices(e)) {
            EdgeId t = taken_by_[v];
            if (t == kInvalid) continue;
            any_taken = true;
            if (!matching::detail::beats(pri_[e], e, pri_[t], t)) return false;
          }
          return any_taken;
        });

    // P4: steal claim round -- winners displace their victims.
    std::vector<VertexId> freed;
    resolve_steals(stealers, freed);

    // P5: resettle bloated matches through the random-sampling path (not
    // run_greedy with the stale sample): the whole point is a fresh draw
    // over the grown neighborhood, so the freed vertices go through
    // settle() below.
    for (EdgeId b : bloated) {
      if (taken_by_[pool_.vertices(b)[0]] != b) continue;  // displaced
      ++stats_.bloated;
      unmatch(b, freed);
    }

    run_greedy(std::move(candidates));
    settle(std::move(freed));
    finish_batch();
    return ids;
  }

  // Deletes previously returned ids (each must be live).
  void delete_edges(const std::vector<EdgeId>& ids) {
    batch_ = BatchStats{};
    stats_.deletes += ids.size();
    charge_phase(ids.size());
    auto lv = prims::filter(std::span<const EdgeId>(ids),
                            [&](EdgeId id) { return pool_.live(id); });
    // The same id may legally appear more than once in a batch; deletion
    // order is immaterial, so dedup by sorting.
    charge_phases(kRadixPhases, lv.size());
    prims::radix_sort(lv, [](EdgeId e) { return std::uint64_t(e); }, 32);
    lv.erase(std::unique(lv.begin(), lv.end()), lv.end());
    if (lv.empty()) {
      finish_batch();
      return;
    }

    // Blocked map + reduce: a single shared atomic would serialize the
    // phase on one cache line.
    std::vector<std::size_t> ranks(lv.size());
    charge_phases(2, lv.size());
    parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
      ranks[i] = pool_.rank(lv[i]);
    });
    stats_.work_units += prims::reduce(std::span<const std::size_t>(ranks));

    // Deleted matches free their vertices (matched edges are disjoint, so
    // the victim set needs no dedup).
    charge_phase(lv.size());
    auto victims =
        prims::filter(std::span<const EdgeId>(lv), [&](EdgeId e) {
          return taken_by_[pool_.vertices(e)[0]] == e;
        });
    std::vector<VertexId> freed;
    for (EdgeId e : victims) unmatch(e, freed);

    // live_deg decrements: an endpoint may lose several edges of this
    // batch, hence fetch-sub rather than per-vertex ownership.
    charge_phase(lv.size());
    parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
      for (VertexId v : pool_.vertices(lv[i]))
        std::atomic_ref<std::uint32_t>(live_deg_[v])
            .fetch_sub(1, std::memory_order_relaxed);
    });
    charge_phase(lv.size());
    pool_.remove_edges(lv);
    settle(std::move(freed));
    finish_batch();
  }

  // The current matching (ascending ids). O(|M| log |M|): the matched set
  // is maintained explicitly, never rebuilt by scanning the id space.
  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out(matched_edges_);
    std::sort(out.begin(), out.end());
    return out;
  }

  bool is_matched(EdgeId id) const {
    return pool_.live(id) && taken_by_[pool_.vertices(id)[0]] == id;
  }

  std::size_t matched_count() const { return matched_edges_.size(); }
  const graph::EdgePool& pool() const { return pool_; }
  const Config& config() const { return cfg_; }
  const CumulativeStats& cumulative_stats() const { return stats_; }
  const BatchStats& last_batch_stats() const { return batch_; }

 private:
  // ---- id/vertex array maintenance -------------------------------------

  void ensure_bounds() {
    std::size_t ib = pool_.id_bound();
    if (pri_.size() < ib) {
      pri_.resize(ib, 0);
      growth_.resize(ib, 0);
      threshold_.resize(ib, 0);
      settle_size_.resize(ib, 0);
      matched_pos_.resize(ib, 0);
    }
    std::size_t vb = pool_.vertex_bound();
    if (taken_by_.size() < vb) {
      taken_by_.resize(vb, kInvalid);
      min_edge_.resize(vb, kInvalid);
      live_deg_.resize(vb, 0);
      adj_.resize(vb);
    }
  }

  // ---- depth instrumentation ------------------------------------------

  // Every data-parallel phase charges its binary-forking span; the sum is
  // the batch's measured depth (dyn/stats.h). Multi-pass primitives (radix
  // sort, scan, semisort) charge one phase per internal parallel loop.
  void charge_phase(std::size_t n) { charge_phases(1, n); }

  void charge_phases(std::size_t count, std::size_t n) {
    batch_.parallel_phases += count;
    batch_.measured_depth += count * parallel::model_depth(n);
  }

  // A 32-bit-key radix sort is ceil(32/8) passes of histogram + scatter.
  static constexpr std::size_t kRadixPhases = 8;

  // prims::group_by = pair fill + radix over the key bits actually used.
  std::size_t group_by_phases(std::uint64_t max_key) const {
    return 1 + 2 * ((std::bit_width(max_key | 1) + 7) / 8);
  }

  void finish_batch() {
    if (batch_.measured_depth > stats_.max_batch_depth)
      stats_.max_batch_depth = batch_.measured_depth;
  }

  // ---- match bookkeeping ----------------------------------------------

  // Per-edge/per-vertex state of a new match. Safe to run in parallel over
  // a vertex-disjoint winner set; the matched-edge set itself is appended
  // sequentially by the caller (matched_add).
  void commit_arrays(EdgeId e) {
    std::size_t nbhd = 0;
    for (VertexId v : pool_.vertices(e)) {
      taken_by_[v] = e;
      nbhd += live_deg_[v];
    }
    growth_[e] = 0;
    settle_size_[e] = static_cast<std::uint32_t>(nbhd);
    // Level quantization: remember the settle size only up to the gap.
    // Saturate instead of wrapping: a pathological neighborhood (or a huge
    // heavy_factor) must yield "never bloats", not a tiny threshold.
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t gap = cfg_.level_gap < 2 ? 2 : cfg_.level_gap;
    std::uint64_t cap = gap;
    bool saturated = false;
    while (cap < nbhd) {
      if (cap > kMax / gap) {
        saturated = true;
        break;
      }
      cap *= gap;
    }
    std::uint64_t hf = cfg_.heavy_factor;
    threshold_[e] =
        (saturated || (hf != 0 && cap > kMax / hf)) ? kMax : hf * cap;
  }

  void matched_add(EdgeId e) {
    matched_pos_[e] = static_cast<std::uint32_t>(matched_edges_.size());
    matched_edges_.push_back(e);
  }

  void unmatch(EdgeId e, std::vector<VertexId>& freed) {
    for (VertexId v : pool_.vertices(e)) {
      if (taken_by_[v] == e) {
        taken_by_[v] = kInvalid;
        freed.push_back(v);
      }
    }
    std::uint32_t idx = matched_pos_[e];
    EdgeId last = matched_edges_.back();
    matched_edges_[idx] = last;
    matched_pos_[last] = idx;
    matched_edges_.pop_back();
  }

  bool all_endpoints_free(EdgeId e) const {
    for (VertexId v : pool_.vertices(e))
      if (taken_by_[v] != kInvalid) return false;
    return true;
  }

  // ---- insert phases ---------------------------------------------------

  // P2 of insert_edges: semisort the batch incidence by endpoint and let
  // one owner per vertex-group apply appends and live_deg; growth bumps
  // fetch-add shared per-edge counters and report the (unique) group that
  // observed the bloat-threshold crossing. Returns the bloated edges in
  // ascending id order, so downstream processing is schedule-independent.
  std::vector<EdgeId> apply_adjacency(const graph::EdgeBatch& batch,
                                      const std::vector<EdgeId>& ids) {
    std::size_t k = ids.size();
    std::size_t total = batch.total_cardinality();
    std::vector<std::uint32_t> offs(k);
    charge_phase(k);
    parallel::parallel_for(
        0, k, [&](std::size_t i) {
          offs[i] = static_cast<std::uint32_t>(batch.edge(i).size());
        });
    charge_phases(2, k);  // scan = up-sweep + down-sweep
    prims::scan_exclusive(std::span<std::uint32_t>(offs));
    std::vector<VertexId> gkeys(total);
    std::vector<std::uint64_t> gvals(total);
    charge_phase(total);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      auto vs = batch.edge(i);
      std::uint64_t ref = pool_.packed_ref(ids[i]);
      std::uint32_t base = offs[i];
      for (std::size_t j = 0; j < vs.size(); ++j) {
        gkeys[base + j] = vs[j];
        gvals[base + j] = ref;
      }
    });
    charge_phases(group_by_phases(pool_.vertex_bound()), total);
    auto groups = prims::group_by<VertexId, std::uint64_t>(gkeys, gvals);

    std::size_t ng = groups.num_groups();
    std::vector<EdgeId> bloat_mark(ng, kInvalid);
    charge_phase(ng);
    parallel::parallel_for(0, ng, [&](std::size_t g) {
      VertexId v = groups.keys[g];
      auto vals = groups.group(g);
      auto& list = adj_[v];
      list.insert(list.end(), vals.begin(), vals.end());
      std::uint32_t cnt = static_cast<std::uint32_t>(vals.size());
      live_deg_[v] += cnt;
      EdgeId t = taken_by_[v];
      if (t == kInvalid || cfg_.light_only) return;
      // The neighborhood of match t grew; check the level bound. Exactly
      // one fetch-add interval straddles the threshold, so each bloated
      // edge is reported by exactly one group.
      std::uint64_t before = std::atomic_ref<std::uint32_t>(growth_[t])
                                 .fetch_add(cnt, std::memory_order_relaxed);
      if (before <= threshold_[t] && before + cnt > threshold_[t])
        bloat_mark[g] = t;
    });
    charge_phase(ng);
    auto bloated = prims::filter(std::span<const EdgeId>(bloat_mark),
                                 [](EdgeId e) { return e != kInvalid; });
    std::sort(bloated.begin(), bloated.end());
    return bloated;
  }

  // P4 of insert_edges: one claim round over the steal candidates. Each
  // stealer CAS-mins itself into every endpoint slot; an edge owning all
  // its slots wins, displaces the matches it touches, and commits. Losers
  // do not retry: any vertex they could still want is either taken by a
  // better edge or freed into settle(), which restores maximality.
  void resolve_steals(const std::vector<EdgeId>& stealers,
                      std::vector<VertexId>& freed) {
    if (stealers.empty()) return;
    charge_phase(stealers.size());
    parallel::parallel_for(0, stealers.size(), [&](std::size_t i) {
      EdgeId e = stealers[i];
      for (VertexId v : pool_.vertices(e)) {
        std::atomic_ref<EdgeId> slot(min_edge_[v]);
        EdgeId cur = slot.load(std::memory_order_relaxed);
        while (cur == kInvalid ||
               matching::detail::beats(pri_[e], e, pri_[cur], cur)) {
          if (slot.compare_exchange_weak(cur, e, std::memory_order_acq_rel))
            break;
        }
      }
    });
    auto winners =
        prims::filter(std::span<const EdgeId>(stealers), [&](EdgeId e) {
          for (VertexId v : pool_.vertices(e))
            if (min_edge_[v] != e) return false;
          return true;
        });
    charge_phase(stealers.size());
    parallel::parallel_for(0, stealers.size(), [&](std::size_t i) {
      for (VertexId v : pool_.vertices(stealers[i]))
        std::atomic_ref<EdgeId>(min_edge_[v])
            .store(kInvalid, std::memory_order_relaxed);
    });
    if (winners.empty()) return;
    // A victim can touch two winners at different vertices; dedup before
    // unmatching so each is displaced exactly once.
    std::vector<EdgeId> victims;
    for (EdgeId e : winners)
      for (VertexId v : pool_.vertices(e)) {
        EdgeId t = taken_by_[v];
        if (t != kInvalid) victims.push_back(t);
      }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    for (EdgeId t : victims) unmatch(t, freed);
    charge_phase(winners.size());
    parallel::parallel_for(0, winners.size(),
                           [&](std::size_t i) { commit_arrays(winners[i]); });
    for (EdgeId e : winners) matched_add(e);
    stats_.stolen += winners.size();
  }

  // ---- greedy over a candidate set ------------------------------------

  void run_greedy(std::vector<EdgeId> candidates) {
    if (candidates.empty()) return;
    charge_phase(candidates.size());
    candidates = prims::filter(std::span<const EdgeId>(candidates),
                               [&](EdgeId e) { return all_endpoints_free(e); });
    if (candidates.empty()) return;
    std::vector<EdgeId> matched;
    std::size_t rounds = matching::greedy_match_rounds(
        pool_, std::move(candidates), [&](EdgeId e) { return pri_[e]; },
        taken_by_, min_edge_, &matched, &stats_.work_units,
        &batch_.measured_depth);
    batch_.parallel_phases += 5 * rounds;
    if (rounds > batch_.max_greedy_rounds) batch_.max_greedy_rounds = rounds;
    charge_phase(matched.size());
    parallel::parallel_for(0, matched.size(),
                           [&](std::size_t i) { commit_arrays(matched[i]); });
    for (EdgeId e : matched) matched_add(e);
  }

  // ---- randomSettle (Section 4) ---------------------------------------

  // Compacts adj_[v] (each dead entry is dropped exactly once) and returns
  // one settle candidate: a uniformly random free incident edge (or the
  // minimum-priority one under light_only). `rng` is this vertex's private
  // stream for the round, so concurrent vertices never share state.
  // `scanned` reports the scan length for the caller's work accounting.
  EdgeId sample_candidate(VertexId v, Rng rng, std::size_t& scanned) {
    auto& list = adj_[v];
    std::size_t kept = 0, seen = 0;
    EdgeId pick = kInvalid;
    for (std::size_t i = 0; i < list.size(); ++i) {
      std::uint64_t entry = list[i];
      if (!pool_.ref_valid(entry)) continue;  // stale: compact it away
      list[kept++] = entry;
      EdgeId e = graph::EdgePool::ref_id(entry);
      if (!all_endpoints_free(e)) continue;
      ++seen;
      if (cfg_.light_only) {
        if (pick == kInvalid ||
            matching::detail::beats(pri_[e], e, pri_[pick], pick))
          pick = e;
      } else if (rng.next_below(seen) == 0) {
        pick = e;
      }
    }
    scanned = list.size();
    list.resize(kept);
    return pick;
  }

  void settle(std::vector<VertexId> pending) {
    struct Draw {
      VertexId v;
      EdgeId c;
    };
    while (!pending.empty()) {
      std::uint64_t round = ++settle_epoch_;
      // Phase: every still-free pending vertex compacts + samples
      // concurrently, each on its own (vertex, round)-keyed stream.
      charge_phases(2, pending.size());  // sample + scanned-length reduce
      std::vector<Draw> draws(pending.size());
      std::vector<std::size_t> scanned(pending.size());
      parallel::parallel_for(0, pending.size(), [&](std::size_t i) {
        VertexId v = pending[i];
        EdgeId c = kInvalid;
        std::size_t len = 0;
        if (taken_by_[v] == kInvalid)
          c = sample_candidate(v, settle_draw_.stream(v, round), len);
        draws[i] = Draw{v, c};
        scanned[i] = len;
      });
      stats_.work_units +=
          prims::reduce(std::span<const std::size_t>(scanned));
      // Vertices with no free incident edge are settled free and drop out.
      charge_phase(draws.size());
      auto kept = prims::filter(std::span<const Draw>(draws),
                                [](const Draw& d) { return d.c != kInvalid; });
      if (kept.empty()) return;
      charge_phase(kept.size());
      std::vector<VertexId> still(kept.size());
      std::vector<EdgeId> sampled(kept.size());
      parallel::parallel_for(0, kept.size(), [&](std::size_t i) {
        still[i] = kept[i].v;
        sampled[i] = kept[i].c;
      });
      // Two freed vertices may sample the same edge; run it once.
      charge_phases(kRadixPhases, sampled.size());
      prims::radix_sort(sampled, [](EdgeId e) { return std::uint64_t(e); },
                        32);
      sampled.erase(std::unique(sampled.begin(), sampled.end()),
                    sampled.end());
      if (!cfg_.light_only) {
        // Fresh samples (the lazy machinery's coin), keyed (edge, round) so
        // the draw is one word regardless of who sampled the edge.
        charge_phase(sampled.size());
        parallel::parallel_for(0, sampled.size(), [&](std::size_t i) {
          pri_[sampled[i]] = settle_pri_.word(sampled[i], round);
        });
        stats_.samples_created += sampled.size();
      }
      ++stats_.settle_rounds;
      ++batch_.settle_rounds;
      run_greedy(std::move(sampled));
      pending = std::move(still);
    }
  }

  Config cfg_;
  graph::EdgePool pool_;
  // Independent keyed streams (parallel/rng_stream.h): insert priorities
  // by (batch epoch, slot), settle reservoir draws by (vertex, round),
  // resettle priorities by (edge, round). No shared sequential RNG state
  // survives anywhere in the batch path.
  parallel::RngStream insert_pri_;
  parallel::RngStream settle_draw_;
  parallel::RngStream settle_pri_;
  std::uint64_t insert_epoch_ = 0;  // insert batches seen
  std::uint64_t settle_epoch_ = 0;  // settle rounds seen, all batches
  CumulativeStats stats_;
  BatchStats batch_;

  std::vector<std::uint64_t> pri_;          // id -> current sample
  std::vector<std::uint32_t> growth_;       // id -> inserts since settle
  std::vector<std::uint64_t> threshold_;    // id -> bloat threshold
  std::vector<std::uint32_t> settle_size_;  // id -> neighborhood @ settle
  std::vector<std::uint32_t> matched_pos_;  // id -> index in matched_edges_
  std::vector<EdgeId> taken_by_;            // vertex -> its match
  std::vector<EdgeId> min_edge_;            // vertex scratch for claiming
  std::vector<std::uint32_t> live_deg_;     // vertex -> live incident edges
  std::vector<std::vector<std::uint64_t>> adj_;  // vertex -> (gen, id) packed
  std::vector<EdgeId> matched_edges_;       // the matching, unordered
};

}  // namespace parmatch::dyn
