// dyn/dynamic_matcher.h -- the paper's parallel batch-dynamic maximal
// matching structure (Sections 4-5): O(1) amortized work per update at rank
// 2 (O(r^3) general, Theorem 1.1) against an oblivious adversary, with
// O(log^3 m) depth per batch whp.
//
// The structure maintains, per vertex, a lazily compacted incidence list
// (graph/adjacency.h's chunked arena), and per live edge a random priority
// (its "sample"). Invariant after every batch: the matched set is maximal.
// The three mechanisms that make the amortized bound work:
//
//  * randomSettle (Section 4): when deletions free the vertices of a
//    matched edge, each freed vertex samples a uniformly random free
//    incident edge and the sampled edges run one claim round of
//    random-priority greedy; losers resample next round. Because the new
//    match is uniform over ~d candidates, an oblivious adversary needs ~d
//    more deletions in the neighborhood before it hits it, which pays for
//    the O(d) rescan (Lemma 3.3's 2-coins-per-early-delete argument --
//    matching/price_audit.h replays the static version of the accounting).
//
//  * levels with gap alpha = Config::level_gap (Section 5): a match settled
//    when its neighborhood had size s gets level floor(log_alpha s), i.e.
//    the size is remembered only up to the gap. If inserts grow the
//    neighborhood past Config::heavy_factor * alpha^(level+1), the match is
//    "bloated": its sample is stale relative to the neighborhood, so it is
//    resettled (unmatched + resampled) to restore the randomness the
//    adversary argument needs. Config::light_only disables levels, bloat
//    tracking and resampling (footnote 8's "treat everything as light"
//    variant): still maximal, but settling becomes deterministic and the
//    adversarial benches show the work blowup.
//
//  * steal on insert: a batch-inserted edge whose priority beats the
//    priority of every matched edge on its taken vertices displaces them
//    (stats.stolen) and the freed vertices resettle. This keeps the
//    matching close to the greedy fixed point for the current samples, so
//    insertions cannot park adversarially useful edges behind stale
//    matches.
//
// Every batch runs as a fixed sequence of data-parallel phases over batch
// primitives (group_by / filter / claim rounds), never as a per-edge
// sequential loop:
//
//   insert: [P1] draw priorities  [P2] group the batch by endpoint and
//   apply adjacency appends / live_deg / growth bumps per vertex-group
//   [P3] classify edges into all-free candidates and steal candidates
//   [P4] resolve steals with one claim round (CAS-min per endpoint,
//   winners displace their victims)  [P5] resettle bloated matches
//   [P6] greedy over the candidates  [P7] settle the freed vertices.
//
//   delete: filter live ids -> unmatch deleted matches -> parallel
//   live_deg decrements -> batch slot free -> settle.
//
//   settle round: all pending vertices compact + reservoir-sample
//   concurrently, sampled edges dedup and redraw priorities, one greedy
//   claim round; losers resample next round.
//
// All randomness is keyed, not sequenced: priority and reservoir draws come
// from parallel::RngStream draws (util/rng.h 3-arg hash64) keyed by
// (epoch, position) / (vertex, round), so the structure's entire trajectory
// -- matching, stats, work counters -- is bit-identical at any worker count
// (tests/test_thread_determinism.cpp). Shared counters (growth bumps,
// live_deg decrements, work units) use atomic fetch-add; everything else is
// per-vertex or per-edge ownership.
//
// Allocation discipline (DESIGN.md S7): every transient buffer comes from
// the per-matcher BatchWorkspace (dyn/workspace.h) -- named vectors that
// keep their capacity plus a bump ScratchArena reset at batch/settle-round
// boundaries -- and every hot-path sort/dedup is prims::radix_sort plus a
// parallel dedup_sorted pack, so a steady-state batch touches the heap
// zero times (tests/test_alloc_free.cpp).
//
// Complexity contract per batch of k updates: expected O(k * r^3) amortized
// work, O(log^3 m) depth whp (settle rounds x greedy claim rounds x O(log)
// primitives); lazy incidence compaction charges each dead entry once to
// the deletion that killed it. BatchStats::measured_depth instruments the
// depth claim directly: every phase charges parallel::model_depth(n).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <vector>

#include "graph/adjacency.h"
#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "dyn/stats.h"
#include "dyn/workspace.h"
#include "matching/parallel_greedy.h"
#include "parallel/parallel_for.h"
#include "parallel/rng_stream.h"
#include "prims/filter.h"
#include "prims/group_by.h"
#include "prims/radix_sort.h"
#include "prims/reduce.h"
#include "util/rng.h"

namespace parmatch::dyn {

struct Config {
  std::uint64_t seed = 1;
  std::size_t max_rank = 2;      // r: maximum hyperedge rank accepted
  std::size_t level_gap = 2;     // alpha: geometric gap between levels
  std::size_t heavy_factor = 4;  // resettle when growth exceeds this times
                                 // the level-quantized settle size
  bool light_only = false;       // footnote-8 ablation: no levels/resampling
};

class DynamicMatcher {
  using EdgeId = graph::EdgeId;
  using VertexId = graph::VertexId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  DynamicMatcher() : DynamicMatcher(Config{}) {}
  explicit DynamicMatcher(const Config& cfg)
      : cfg_(cfg),
        pool_(cfg.max_rank),
        insert_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 1)),
        settle_draw_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 2)),
        settle_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 3)) {}

  // Inserts a batch; returns the id assigned to each edge, batch order.
  // The span aliases workspace storage: valid until the next batch call.
  std::span<const EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    begin_batch();
    std::uint64_t epoch = ++insert_epoch_;
    pool_.add_edges(batch, ws_.ids);
    ensure_bounds();
    std::span<const EdgeId> ids(ws_.ids);
    std::size_t k = ids.size();
    stats_.inserts += k;
    stats_.work_units += batch.total_cardinality();
    if (k == 0) return ids;

    // P1: every inserted edge draws its sample, keyed (batch epoch, slot).
    charge_phase(k);
    parallel::parallel_for(
        0, k, [&](std::size_t i) { pri_[ids[i]] = insert_pri_.word(epoch, i); });
    stats_.samples_created += k;

    // P2: adjacency -- group the flat (endpoint, edge-ref) incidence of the
    // batch by endpoint; each vertex-group is then applied by one owner, so
    // appends and live_deg bumps race-free; growth bumps target per-edge
    // counters shared between groups and use fetch-add.
    std::span<const EdgeId> bloated = apply_adjacency(batch, ids);

    // P3: classify against the pre-batch matching. An edge is a greedy
    // candidate if every endpoint is free, a steal candidate if some
    // endpoint is taken and its sample beats every match it touches. One
    // endpoint scan per edge (the classification mark), then two cheap
    // packs on the marks.
    charge_phases(3, k);
    auto cls = ws_.arena.alloc<std::uint8_t>(k);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      EdgeId e = ids[i];
      bool any_taken = false, steals_all = true;
      for (VertexId v : pool_.vertices(e)) {
        EdgeId t = taken_by_[v];
        if (t == kInvalid) continue;
        any_taken = true;
        if (!matching::detail::beats(pri_[e], e, pri_[t], t)) {
          steals_all = false;
          break;
        }
      }
      cls[i] = !any_taken ? 1 : (steals_all ? 2 : 0);
    });
    auto candidates = prims::pack_index<EdgeId>(
        k, [&](std::size_t i) { return cls[i] == 1; },
        [&](std::size_t i) { return ids[i]; }, ws_.arena);
    auto stealers = prims::pack_index<EdgeId>(
        k, [&](std::size_t i) { return cls[i] == 2; },
        [&](std::size_t i) { return ids[i]; }, ws_.arena);

    // P4: steal claim round -- winners displace their victims.
    resolve_steals(stealers);

    // P5: resettle bloated matches through the random-sampling path (not
    // run_greedy with the stale sample): the whole point is a fresh draw
    // over the grown neighborhood, so the freed vertices go through
    // settle() below.
    for (EdgeId b : bloated) {
      if (taken_by_[pool_.vertices(b)[0]] != b) continue;  // displaced
      ++stats_.bloated;
      unmatch(b);
    }

    run_greedy(candidates);
    settle();
    finish_batch();
    return ids;
  }

  // Braced-list convenience: delete_edges({a, b}).
  void delete_edges(std::initializer_list<EdgeId> ids) {
    delete_edges(std::span<const EdgeId>(ids.begin(), ids.size()));
  }

  // Deletes previously returned ids (each must be live).
  void delete_edges(std::span<const EdgeId> ids) {
    begin_batch();
    stats_.deletes += ids.size();
    charge_phase(ids.size());
    auto lv = prims::filter(
        ids, [&](EdgeId id) { return pool_.live(id); }, ws_.arena);
    // The same id may legally appear more than once in a batch; deletion
    // order is immaterial, so dedup by radix sort + parallel pack.
    charge_phases(kRadixPhases + 1, lv.size());
    prims::radix_sort(lv, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits(), ws_.arena);
    lv = prims::dedup_sorted(std::span<const EdgeId>(lv), ws_.arena);
    if (lv.empty()) {
      finish_batch();
      return;
    }

    // Blocked map + reduce: a single shared atomic would serialize the
    // phase on one cache line.
    auto ranks = ws_.arena.alloc<std::size_t>(lv.size());
    charge_phases(2, lv.size());
    parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
      ranks[i] = pool_.rank(lv[i]);
    });
    stats_.work_units +=
        prims::reduce(std::span<const std::size_t>(ranks), ws_.arena);

    // Deleted matches free their vertices (matched edges are disjoint, so
    // the victim set needs no dedup).
    charge_phase(lv.size());
    auto victims = prims::filter(
        std::span<const EdgeId>(lv),
        [&](EdgeId e) { return taken_by_[pool_.vertices(e)[0]] == e; },
        ws_.arena);
    for (EdgeId e : victims) unmatch(e);

    // live_deg decrements: an endpoint may lose several edges of this
    // batch, hence fetch-sub rather than per-vertex ownership (plain when
    // the pool is sequential).
    charge_phase(lv.size());
    const bool seq = parallel::sequential_mode();
    parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
      for (VertexId v : pool_.vertices(lv[i])) {
        if (seq)
          --live_deg_[v];
        else
          std::atomic_ref<std::uint32_t>(live_deg_[v])
              .fetch_sub(1, std::memory_order_relaxed);
      }
    });
    charge_phase(lv.size());
    pool_.remove_edges(lv);
    settle();
    finish_batch();
  }

  // The current matching (ascending ids). O(|M|): the matched set is
  // maintained explicitly, never rebuilt by scanning the id space.
  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out(matched_edges_);
    prims::radix_sort(out, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits());
    return out;
  }

  bool is_matched(EdgeId id) const {
    return pool_.live(id) && taken_by_[pool_.vertices(id)[0]] == id;
  }

  std::size_t matched_count() const { return matched_edges_.size(); }
  const graph::EdgePool& pool() const { return pool_; }
  const Config& config() const { return cfg_; }
  const CumulativeStats& cumulative_stats() const { return stats_; }
  const BatchStats& last_batch_stats() const { return batch_; }

  // Scratch high-water diagnostics (tests/test_alloc_free.cpp).
  const BatchWorkspace& workspace() const { return ws_; }

 private:
  // ---- batch lifecycle -------------------------------------------------

  void begin_batch() {
    batch_ = BatchStats{};
    ws_.arena.reset();
    ws_.freed.clear();
  }

  void finish_batch() {
    if (batch_.measured_depth > stats_.max_batch_depth)
      stats_.max_batch_depth = batch_.measured_depth;
  }

  // ---- id/vertex array maintenance -------------------------------------

  void ensure_bounds() {
    std::size_t ib = pool_.id_bound();
    if (pri_.size() < ib) {
      pri_.resize(ib, 0);
      growth_.resize(ib, 0);
      threshold_.resize(ib, 0);
      settle_size_.resize(ib, 0);
      matched_pos_.resize(ib, 0);
    }
    std::size_t vb = pool_.vertex_bound();
    if (taken_by_.size() < vb) {
      taken_by_.resize(vb, kInvalid);
      min_edge_.resize(vb, kInvalid);
      live_deg_.resize(vb, 0);
      adj_.ensure_vertex_bound(vb);
    }
  }

  // ---- depth instrumentation ------------------------------------------

  // Every data-parallel phase charges its binary-forking span; the sum is
  // the batch's measured depth (dyn/stats.h). Multi-pass primitives (radix
  // sort, scan, semisort) charge one phase per internal parallel loop.
  void charge_phase(std::size_t n) { charge_phases(1, n); }

  void charge_phases(std::size_t count, std::size_t n) {
    batch_.parallel_phases += count;
    batch_.measured_depth += count * parallel::model_depth(n);
  }

  // A full-width id radix sort is <= ceil(32/8) passes of histogram +
  // scatter; the model charge stays at the 32-bit worst case even though
  // the sorts themselves only touch the bits the id space uses.
  static constexpr std::size_t kRadixPhases = 8;

  // Bits needed to cover every allocated edge id (radix sort key width).
  int id_bits() const {
    return std::bit_width(static_cast<std::uint64_t>(pool_.id_bound()) | 1);
  }

  // prims::group_by = pair fill + radix over the key bits actually used +
  // value copy + boundary pack + key/offset fill.
  std::size_t group_by_phases(std::uint64_t max_key) const {
    return 4 + 2 * ((std::bit_width(max_key | 1) + 7) / 8);
  }

  // ---- match bookkeeping ----------------------------------------------

  // Per-edge/per-vertex state of a new match. Safe to run in parallel over
  // a vertex-disjoint winner set; the matched-edge set itself is appended
  // sequentially by the caller (matched_add).
  void commit_arrays(EdgeId e) {
    std::size_t nbhd = 0;
    for (VertexId v : pool_.vertices(e)) {
      taken_by_[v] = e;
      nbhd += live_deg_[v];
    }
    growth_[e] = 0;
    settle_size_[e] = static_cast<std::uint32_t>(nbhd);
    // Level quantization: remember the settle size only up to the gap.
    // Saturate instead of wrapping: a pathological neighborhood (or a huge
    // heavy_factor) must yield "never bloats", not a tiny threshold.
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t gap = cfg_.level_gap < 2 ? 2 : cfg_.level_gap;
    std::uint64_t cap = gap;
    bool saturated = false;
    while (cap < nbhd) {
      if (cap > kMax / gap) {
        saturated = true;
        break;
      }
      cap *= gap;
    }
    std::uint64_t hf = cfg_.heavy_factor;
    threshold_[e] =
        (saturated || (hf != 0 && cap > kMax / hf)) ? kMax : hf * cap;
  }

  void matched_add(EdgeId e) {
    matched_pos_[e] = static_cast<std::uint32_t>(matched_edges_.size());
    matched_edges_.push_back(e);
  }

  // Frees e's vertices into the batch's pending-settle set (ws_.freed).
  void unmatch(EdgeId e) {
    for (VertexId v : pool_.vertices(e)) {
      if (taken_by_[v] == e) {
        taken_by_[v] = kInvalid;
        ws_.freed.push_back(v);
      }
    }
    std::uint32_t idx = matched_pos_[e];
    EdgeId last = matched_edges_.back();
    matched_edges_[idx] = last;
    matched_pos_[last] = idx;
    matched_edges_.pop_back();
  }

  bool all_endpoints_free(EdgeId e) const {
    for (VertexId v : pool_.vertices(e))
      if (taken_by_[v] != kInvalid) return false;
    return true;
  }

  // ---- insert phases ---------------------------------------------------

  // P2 of insert_edges: semisort the batch incidence by endpoint and let
  // one owner per vertex-group apply appends and live_deg; growth bumps
  // fetch-add shared per-edge counters and report the (unique) group that
  // observed the bloat-threshold crossing. Returns the bloated edges in
  // ascending id order, so downstream processing is schedule-independent.
  std::span<const EdgeId> apply_adjacency(const graph::EdgeBatch& batch,
                                          std::span<const EdgeId> ids) {
    std::size_t k = ids.size();
    std::size_t total = batch.total_cardinality();
    auto offs = ws_.arena.alloc<std::uint32_t>(k);
    charge_phase(k);
    parallel::parallel_for(
        0, k, [&](std::size_t i) {
          offs[i] = static_cast<std::uint32_t>(batch.edge(i).size());
        });
    charge_phases(2, k);  // scan = up-sweep + down-sweep
    prims::scan_exclusive(offs, ws_.arena);
    auto gkeys = ws_.arena.alloc<VertexId>(total);
    auto gvals = ws_.arena.alloc<std::uint64_t>(total);
    charge_phase(total);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      auto vs = batch.edge(i);
      std::uint64_t ref = pool_.packed_ref(ids[i]);
      std::uint32_t base = offs[i];
      for (std::size_t j = 0; j < vs.size(); ++j) {
        gkeys[base + j] = vs[j];
        gvals[base + j] = ref;
      }
    });
    charge_phases(group_by_phases(pool_.vertex_bound()), total);
    auto groups = prims::group_by<VertexId, std::uint64_t>(
        gkeys, gvals, ws_.arena, pool_.vertex_bound());

    std::size_t ng = groups.num_groups();
    // Slab headroom for the appends below, sized before the parallel phase
    // so chunk allocation is a pure bump (graph/adjacency.h).
    adj_.reserve_for(total, ng);
    auto bloat_mark = ws_.arena.alloc<EdgeId>(ng);
    auto comp_scan = ws_.arena.alloc<std::size_t>(ng);
    charge_phases(2, ng);  // group apply + compaction-scan reduce
    const bool seq = parallel::sequential_mode();
    parallel::parallel_for(0, ng, [&](std::size_t g) {
      VertexId v = groups.keys[g];
      auto vals = groups.group(g);
      std::uint32_t cnt = static_cast<std::uint32_t>(vals.size());
      // Amortized owner-side compaction: valid entries number exactly
      // live_deg, so a chain more than twice that (plus slack) is mostly
      // stale refs -- drop them now, charged to the appends that grew the
      // chain. This bounds every chain (and the arena) to O(live incident
      // edges), which is what keeps steady-state batches allocation-free;
      // the trigger depends only on schedule-independent lengths, so the
      // trajectory stays deterministic (DESIGN.md S2). Settle's lazy
      // compaction still handles the vertices this owner never touches.
      comp_scan[g] = 0;
      std::size_t len = adj_.length(v);
      if (len >= 16 + 2 * (static_cast<std::size_t>(live_deg_[v]) + cnt))
        comp_scan[g] = adj_.compact_visit(
            v, [&](std::uint64_t ref) { return pool_.ref_valid(ref); });
      for (std::uint64_t ref : vals) adj_.append(v, ref);
      live_deg_[v] += cnt;
      bloat_mark[g] = kInvalid;
      EdgeId t = taken_by_[v];
      if (t == kInvalid || cfg_.light_only) return;
      // The neighborhood of match t grew; check the level bound. Exactly
      // one fetch-add interval straddles the threshold, so each bloated
      // edge is reported by exactly one group (plain add when sequential).
      std::uint64_t before;
      if (seq) {
        before = growth_[t];
        growth_[t] += cnt;
      } else {
        before = std::atomic_ref<std::uint32_t>(growth_[t])
                     .fetch_add(cnt, std::memory_order_relaxed);
      }
      if (before <= threshold_[t] && before + cnt > threshold_[t])
        bloat_mark[g] = t;
    });
    stats_.work_units +=
        prims::reduce(std::span<const std::size_t>(comp_scan), ws_.arena);
    charge_phase(ng);
    auto bloated = prims::filter(
        std::span<const EdgeId>(bloat_mark),
        [](EdgeId e) { return e != kInvalid; }, ws_.arena);
    charge_phases(kRadixPhases, bloated.size());
    prims::radix_sort(bloated, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits(), ws_.arena);
    return bloated;
  }

  // P4 of insert_edges: one claim round over the steal candidates. Each
  // stealer CAS-mins itself into every endpoint slot; an edge owning all
  // its slots wins, displaces the matches it touches, and commits. Losers
  // do not retry: any vertex they could still want is either taken by a
  // better edge or freed into settle(), which restores maximality.
  void resolve_steals(std::span<const EdgeId> stealers) {
    if (stealers.empty()) return;
    charge_phase(stealers.size());
    const bool seq = parallel::sequential_mode();
    parallel::parallel_for(0, stealers.size(), [&](std::size_t i) {
      EdgeId e = stealers[i];
      for (VertexId v : pool_.vertices(e)) {
        if (seq) {
          EdgeId cur = min_edge_[v];
          if (cur == kInvalid ||
              matching::detail::beats(pri_[e], e, pri_[cur], cur))
            min_edge_[v] = e;
          continue;
        }
        std::atomic_ref<EdgeId> slot(min_edge_[v]);
        EdgeId cur = slot.load(std::memory_order_relaxed);
        while (cur == kInvalid ||
               matching::detail::beats(pri_[e], e, pri_[cur], cur)) {
          if (slot.compare_exchange_weak(cur, e, std::memory_order_acq_rel))
            break;
        }
      }
    });
    auto winners = prims::filter_marked(
        stealers,
        [&](EdgeId e) {
          for (VertexId v : pool_.vertices(e))
            if (min_edge_[v] != e) return false;
          return true;
        },
        ws_.arena);
    charge_phase(stealers.size());
    parallel::parallel_for(0, stealers.size(), [&](std::size_t i) {
      for (VertexId v : pool_.vertices(stealers[i])) {
        if (seq)
          min_edge_[v] = kInvalid;
        else
          std::atomic_ref<EdgeId>(min_edge_[v])
              .store(kInvalid, std::memory_order_relaxed);
      }
    });
    if (winners.empty()) return;
    // A victim can touch two winners at different vertices; dedup (radix +
    // parallel pack) before unmatching so each is displaced exactly once.
    ws_.victims.clear();
    for (EdgeId e : winners)
      for (VertexId v : pool_.vertices(e)) {
        EdgeId t = taken_by_[v];
        if (t != kInvalid) ws_.victims.push_back(t);
      }
    charge_phases(kRadixPhases + 1, ws_.victims.size());
    prims::radix_sort(std::span<EdgeId>(ws_.victims),
                      [](EdgeId e) { return std::uint64_t(e); }, id_bits(),
                      ws_.arena);
    auto victims = prims::dedup_sorted(
        std::span<const EdgeId>(ws_.victims), ws_.arena);
    for (EdgeId t : victims) unmatch(t);
    charge_phase(winners.size());
    parallel::parallel_for(0, winners.size(),
                           [&](std::size_t i) { commit_arrays(winners[i]); });
    for (EdgeId e : winners) matched_add(e);
    stats_.stolen += winners.size();
  }

  // ---- greedy over a candidate set ------------------------------------

  void run_greedy(std::span<const EdgeId> candidates) {
    if (candidates.empty()) return;
    charge_phase(candidates.size());
    candidates = prims::filter_marked(
        candidates, [&](EdgeId e) { return all_endpoints_free(e); },
        ws_.arena);
    if (candidates.empty()) return;
    ws_.matched.clear();
    std::size_t rounds = matching::greedy_match_rounds(
        pool_, candidates, [&](EdgeId e) { return pri_[e]; }, taken_by_,
        min_edge_, &ws_.matched, ws_.arena, &stats_.work_units,
        &batch_.measured_depth);
    batch_.parallel_phases += 5 * rounds;
    if (rounds > batch_.max_greedy_rounds) batch_.max_greedy_rounds = rounds;
    charge_phase(ws_.matched.size());
    parallel::parallel_for(0, ws_.matched.size(), [&](std::size_t i) {
      commit_arrays(ws_.matched[i]);
    });
    for (EdgeId e : ws_.matched) matched_add(e);
  }

  // ---- randomSettle (Section 4) ---------------------------------------

  // Compacts adj_'s chain for v (each dead entry is dropped exactly once)
  // and returns one settle candidate: a uniformly random free incident edge
  // (or the minimum-priority one under light_only). `rng` is this vertex's
  // private stream for the round, so concurrent vertices never share state.
  // `scanned` reports the scan length for the caller's work accounting.
  EdgeId sample_candidate(VertexId v, Rng rng, std::size_t& scanned) {
    std::size_t seen = 0;
    EdgeId pick = kInvalid;
    scanned = adj_.compact_visit(v, [&](std::uint64_t entry) {
      if (!pool_.ref_valid(entry)) return false;  // stale: compact it away
      EdgeId e = graph::EdgePool::ref_id(entry);
      if (all_endpoints_free(e)) {
        ++seen;
        if (cfg_.light_only) {
          if (pick == kInvalid ||
              matching::detail::beats(pri_[e], e, pri_[pick], pick))
            pick = e;
        } else if (rng.next_below(seen) == 0) {
          pick = e;
        }
      }
      return true;
    });
    return pick;
  }

  // Settles ws_.freed: rounds of concurrent sampling + one greedy claim
  // round each, ping-ponging the pending set between ws_.freed and
  // ws_.still. The arena resets at every round boundary (no span crosses
  // it; the pending sets ride in the named vectors).
  void settle() {
    std::vector<VertexId>& pending = ws_.freed;
    std::vector<VertexId>& still = ws_.still;
    while (!pending.empty()) {
      ws_.arena.reset();
      std::uint64_t round = ++settle_epoch_;
      std::size_t np = pending.size();
      // Phase: every still-free pending vertex compacts + samples
      // concurrently, each on its own (vertex, round)-keyed stream.
      charge_phases(2, np);  // sample + scanned-length reduce
      auto draws = ws_.arena.alloc<EdgeId>(np);
      auto scanned = ws_.arena.alloc<std::size_t>(np);
      parallel::parallel_for(0, np, [&](std::size_t i) {
        VertexId v = pending[i];
        EdgeId c = kInvalid;
        std::size_t len = 0;
        if (taken_by_[v] == kInvalid)
          c = sample_candidate(v, settle_draw_.stream(v, round), len);
        draws[i] = c;
        scanned[i] = len;
      });
      stats_.work_units +=
          prims::reduce(std::span<const std::size_t>(scanned), ws_.arena);
      // Vertices with no free incident edge are settled free and drop out;
      // the rest carry to the next round (still) and their draws run this
      // round's claim (sampled). Both packs share one keep predicate, so
      // one dual pack emits the two arrays with a single count + scatter.
      charge_phases(2, np);
      auto sampled = prims::pack_index2<VertexId, EdgeId>(
          np, [&](std::size_t i) { return draws[i] != kInvalid; },
          [&](std::size_t i) { return pending[i]; }, still,
          [&](std::size_t i) { return draws[i]; }, ws_.arena);
      if (sampled.empty()) {
        pending.clear();
        return;
      }
      // Two freed vertices may sample the same edge; run it once (radix +
      // parallel dedup).
      charge_phases(kRadixPhases + 1, sampled.size());
      prims::radix_sort(sampled, [](EdgeId e) { return std::uint64_t(e); },
                        id_bits(), ws_.arena);
      auto uniq =
          prims::dedup_sorted(std::span<const EdgeId>(sampled), ws_.arena);
      if (!cfg_.light_only) {
        // Fresh samples (the lazy machinery's coin), keyed (edge, round) so
        // the draw is one word regardless of who sampled the edge.
        charge_phase(uniq.size());
        parallel::parallel_for(0, uniq.size(), [&](std::size_t i) {
          pri_[uniq[i]] = settle_pri_.word(uniq[i], round);
        });
        stats_.samples_created += uniq.size();
      }
      ++stats_.settle_rounds;
      ++batch_.settle_rounds;
      run_greedy(uniq);
      std::swap(pending, still);
    }
  }

  Config cfg_;
  graph::EdgePool pool_;
  // Independent keyed streams (parallel/rng_stream.h): insert priorities
  // by (batch epoch, slot), settle reservoir draws by (vertex, round),
  // resettle priorities by (edge, round). No shared sequential RNG state
  // survives anywhere in the batch path.
  parallel::RngStream insert_pri_;
  parallel::RngStream settle_draw_;
  parallel::RngStream settle_pri_;
  std::uint64_t insert_epoch_ = 0;  // insert batches seen
  std::uint64_t settle_epoch_ = 0;  // settle rounds seen, all batches
  CumulativeStats stats_;
  BatchStats batch_;
  BatchWorkspace ws_;

  std::vector<std::uint64_t> pri_;          // id -> current sample
  std::vector<std::uint32_t> growth_;       // id -> inserts since settle
  std::vector<std::uint64_t> threshold_;    // id -> bloat threshold
  std::vector<std::uint32_t> settle_size_;  // id -> neighborhood @ settle
  std::vector<std::uint32_t> matched_pos_;  // id -> index in matched_edges_
  std::vector<EdgeId> taken_by_;            // vertex -> its match
  std::vector<EdgeId> min_edge_;            // vertex scratch for claiming
  std::vector<std::uint32_t> live_deg_;     // vertex -> live incident edges
  graph::ChunkedAdjacency adj_;             // vertex -> (gen, id) packed refs
  std::vector<EdgeId> matched_edges_;       // the matching, unordered
};

}  // namespace parmatch::dyn
