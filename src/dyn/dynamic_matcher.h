// dyn/dynamic_matcher.h -- the paper's parallel batch-dynamic maximal
// matching structure (Sections 4-5): O(1) amortized work per update at rank
// 2 (O(r^3) general, Theorem 1.1) against an oblivious adversary, with
// O(log^3 m) depth per batch whp.
//
// The structure maintains, per vertex, a lazily compacted incidence list
// (graph/adjacency.h's chunked arena), and per live edge a random priority
// (its "sample"). Invariant after every batch: the matched set is maximal.
// The three mechanisms that make the amortized bound work:
//
//  * randomSettle (Section 4): when deletions free the vertices of a
//    matched edge, each freed vertex samples a uniformly random free
//    incident edge and the sampled edges run one claim round of
//    random-priority greedy; losers resample next round. Because the new
//    match is uniform over ~d candidates, an oblivious adversary needs ~d
//    more deletions in the neighborhood before it hits it, which pays for
//    the O(d) rescan (Lemma 3.3's 2-coins-per-early-delete argument --
//    matching/price_audit.h replays the static version of the accounting).
//
//  * levels with gap alpha = Config::level_gap (Section 5): a match settled
//    when its neighborhood had size s gets level floor(log_alpha s), i.e.
//    the size is remembered only up to the gap. If inserts grow the
//    neighborhood past Config::heavy_factor * alpha^(level+1), the match is
//    "bloated": its sample is stale relative to the neighborhood, so it is
//    resettled (unmatched + resampled) to restore the randomness the
//    adversary argument needs. Config::light_only disables levels, bloat
//    tracking and resampling (footnote 8's "treat everything as light"
//    variant): still maximal, but settling becomes deterministic and the
//    adversarial benches show the work blowup.
//
//  * steal on insert: a batch-inserted edge whose priority beats the
//    priority of every matched edge on its taken vertices displaces them
//    (stats.stolen) and the freed vertices resettle. The stealers run to
//    the greedy fixed point in priority order (deterministic reservations,
//    prims/speculative_for.h), so displaced chains resolve inside the
//    batch and insertions cannot park adversarially useful edges behind
//    stale matches.
//
// Every batch runs as a fixed sequence of data-parallel phases over batch
// primitives (group_by / filter / claim rounds), never as a per-edge
// sequential loop:
//
//   insert: [P1] draw priorities  [P2] group the batch by endpoint and
//   apply adjacency appends / live_deg / growth bumps per vertex-group
//   [P3] classify edges into all-free candidates and steal candidates
//   [P4] resolve steals to the greedy fixed point: priority-ordered
//   reserve/commit rounds over per-vertex reservation slots
//   (PARMATCH_STEAL_FIXPOINT=0 keeps the legacy single claim round)
//   [P5] resettle bloated matches  [P6] greedy over the candidates
//   [P7] settle the freed vertices.
//
//   delete: filter live ids -> unmatch deleted matches -> parallel
//   live_deg decrements -> batch slot free -> settle.
//
//   settle: ONE adjacency harvest caches each pending vertex's free
//   candidates (compacting the chain as it goes), then the
//   deterministic-reservations engine (prims/speculative_for.h) runs
//   reserve/commit rounds: each still-free vertex prunes its cached slice
//   in place, draws a uniform surviving candidate keyed (vertex, settle
//   epoch), and reserves its endpoints; commit winners match and redraw
//   their edge's sample, losers carry the pruned slice forward. No
//   candidate list is rescanned from adjacency after the harvest.
//
// Adaptive execution (DESIGN.md S11): that phase plan is a *logical*
// schedule. Per phase, parallel/cost_model.h decides whether the
// work-stealing path can amortize its launch + barrier latency; below the
// calibrated cutover the phase runs inline with plain memory ops. For a
// whole batch below the cutover, insert additionally takes a fused
// sequential fast path -- direct endpoint grouping and classification in
// one pass over the workspace, no semisort/scan/pack machinery -- and
// delete takes the analogous direct-loop path. Both fast paths replay the
// SAME logical phases with the SAME keyed RNG draws and charge the SAME
// model depth, so the trajectory (matching, stats, depth counters) is
// bit-identical across PARMATCH_EXEC_MODE=sequential/parallel/adaptive and
// any thread count (tests/test_exec_modes.cpp,
// tests/test_thread_determinism.cpp).
//
// All randomness is keyed, not sequenced: priority and reservoir draws come
// from parallel::RngStream draws (util/rng.h 3-arg hash64) keyed by
// (epoch, position) / (vertex, round), so the structure's entire trajectory
// -- matching, stats, work counters -- is bit-identical at any worker
// count. Shared counters (growth bumps, live_deg decrements, work units)
// use atomic fetch-add on the parallel strategy and plain memory on the
// inline one; everything else is per-vertex or per-edge ownership.
//
// Hot-state packing (DESIGN.md S11): the per-vertex fields the claim and
// settle loops touch (taken_by / min_edge / live_deg, plus the embedded
// incidence-chain header) live in one 32-byte matching::VertexHot record,
// and the per-edge fields (bloat threshold / growth / matched-list
// position) in one 16-byte EdgeHot record, so each batch-random vertex or
// match costs one cache line, prefetched kPrefetchAhead iterations early
// in the scanning loops.
//
// Allocation discipline (DESIGN.md S7): every transient buffer comes from
// the per-matcher BatchWorkspace (dyn/workspace.h) -- named vectors that
// keep their capacity plus a bump ScratchArena reset at batch start and
// settle start -- and every hot-path sort/dedup is prims::radix_sort (with
// its small-n insertion fallback) plus a dedup pack, so a steady-state
// batch touches the heap zero times (tests/test_alloc_free.cpp).
//
// Complexity contract per batch of k updates: expected O(k * r^3) amortized
// work, O(log^3 m) depth whp (settle rounds x greedy claim rounds x O(log)
// primitives); lazy incidence compaction charges each dead entry once to
// the deletion that killed it. BatchStats::measured_depth instruments the
// depth claim directly: every logical phase charges
// parallel::model_depth(n) whether it ran forked or inline.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <span>
#include <vector>

#include "graph/adjacency.h"
#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "dyn/stats.h"
#include "dyn/workspace.h"
#include "matching/parallel_greedy.h"
#include "matching/vertex_hot.h"
#include "parallel/cost_model.h"
#include "parallel/parallel_for.h"
#include "parallel/rng_stream.h"
#include "prims/filter.h"
#include "prims/group_by.h"
#include "prims/radix_sort.h"
#include "prims/reduce.h"
#include "prims/speculative_for.h"
#include "util/prefetch.h"
#include "util/rng.h"

namespace parmatch::dyn {

namespace detail {

inline std::atomic<bool>& steal_fixpoint_slot() {
  static std::atomic<bool> on{[] {
    const char* env = std::getenv("PARMATCH_STEAL_FIXPOINT");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }()};
  return on;
}

}  // namespace detail

// Steal-to-fixed-point toggle (PARMATCH_STEAL_FIXPOINT at startup; default
// on). Off keeps the pre-engine single claim round, where steal losers drop
// and displaced chains leak to the next settle -- the E10 ablation's legacy
// column. This is an ALGORITHM toggle, not an execution-mode one: flipping
// it changes trajectories, so determinism comparisons hold it fixed.
inline bool steal_fixpoint() {
  return detail::steal_fixpoint_slot().load(std::memory_order_relaxed);
}

inline void set_steal_fixpoint(bool on) {
  detail::steal_fixpoint_slot().store(on, std::memory_order_relaxed);
}

struct Config {
  std::uint64_t seed = 1;
  std::size_t max_rank = 2;      // r: maximum hyperedge rank accepted
  std::size_t level_gap = 2;     // alpha: geometric gap between levels
  std::size_t heavy_factor = 4;  // resettle when growth exceeds this times
                                 // the level-quantized settle size
  bool light_only = false;       // footnote-8 ablation: no levels/resampling
};

// Packed per-edge hot state of a *matched* edge: the bloat machinery
// (threshold already encodes the level-quantized settle size, so the raw
// size needs no slot of its own) plus the edge's position in the matched
// list -- so the growth bump, the commit, and the unmatch each touch ONE
// cache line instead of two or three vector lookups megabytes apart.
struct EdgeHot {
  std::uint64_t threshold = 0;    // bloat threshold for the current match
  std::uint32_t growth = 0;       // neighborhood inserts since settle
  std::uint32_t matched_pos = 0;  // index in matched_edges_ while matched
};
static_assert(sizeof(EdgeHot) == 16);

class DynamicMatcher {
  using EdgeId = graph::EdgeId;
  using VertexId = graph::VertexId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  DynamicMatcher() : DynamicMatcher(Config{}) {}
  explicit DynamicMatcher(const Config& cfg)
      : cfg_(cfg),
        pool_(cfg.max_rank),
        insert_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 1)),
        settle_draw_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 2)),
        settle_pri_(hash64(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull, 3)) {}

  // Inserts a batch; returns the id assigned to each edge, batch order.
  // The span aliases workspace storage: valid until the next batch call.
  std::span<const EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    begin_batch();
    std::uint64_t epoch = ++insert_epoch_;
    pool_.add_edges(batch, ws_.ids);
    ensure_bounds();
    std::span<const EdgeId> ids(ws_.ids);
    std::size_t k = ids.size();
    stats_.inserts += k;
    stats_.work_units += batch.total_cardinality();
    if (k == 0) return ids;

    // Cutover: below the calibrated phase crossover the whole batch runs
    // the fused direct-loop pipeline (same logical phases, same charges).
    const bool fused = parallel::run_phase_seq(k);
    if (fused) ++stats_.fused_batches;

    // P1: every inserted edge draws its sample, keyed (batch epoch, slot).
    // Recycled ids land at random positions in pri_; the fused path sweeps
    // all the lines first (they are about to be written back-to-back), the
    // forked path prefetches ahead inside each chunk.
    charge_phase(k);
    if (fused) {
      std::size_t sweep = k <= kSweepSmall ? k : kPrefetchAhead;
      for (std::size_t i = 0; i < sweep; ++i) prefetch_write(&pri_[ids[i]]);
      for (std::size_t i = 0; i < k; ++i) {
        if (k > kSweepSmall && i + kPrefetchAhead < k)
          prefetch_write(&pri_[ids[i + kPrefetchAhead]]);
        pri_[ids[i]] = insert_pri_.word(epoch, i);
      }
    } else {
      parallel::parallel_for_blocked(0, k, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          if (i + kPrefetchAhead < e)
            prefetch_write(&pri_[ids[i + kPrefetchAhead]]);
          pri_[ids[i]] = insert_pri_.word(epoch, i);
        }
      });
    }
    stats_.samples_created += k;

    // P2: adjacency -- group the flat (endpoint, edge-ref) incidence of the
    // batch by endpoint; each vertex-group is then applied by one owner, so
    // appends and live_deg bumps race-free; growth bumps target per-edge
    // counters shared between groups (fetch-add on the forked strategy).
    std::span<const EdgeId> bloated =
        fused ? apply_adjacency_fused(batch, ids) : apply_adjacency(batch, ids);

    // P3: classify against the pre-batch matching. An edge is a greedy
    // candidate if every endpoint is free, a steal candidate if some
    // endpoint is taken and its sample beats every match it touches. Fused:
    // one classify-and-split pass. Forked: one mark pass plus a dual pack
    // that emits both sets with a single count + scatter.
    charge_phases(3, k);
    std::span<const EdgeId> candidates, stealers;
    if (fused) {
      auto cand = ws_.arena.alloc<EdgeId>(k);
      auto steal = ws_.arena.alloc<EdgeId>(k);
      std::size_t nc = 0, nst = 0;
      // The vertex records AND the matched-edge priority lines are warm:
      // P2's group apply prefetched pri_[taken_by] for every touched
      // endpoint (apply_group), so classify runs against resident lines.
      for (std::size_t i = 0; i < k; ++i) {
        std::uint8_t c = classify(ids[i]);
        if (c == 1)
          cand[nc++] = ids[i];
        else if (c == 2)
          steal[nst++] = ids[i];
      }
      candidates = {cand.data(), nc};
      stealers = {steal.data(), nst};
    } else {
      auto cls = ws_.arena.alloc<std::uint8_t>(k);
      parallel::parallel_for_blocked(0, k, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          if (i + kPrefetchAhead < e)
            for (VertexId v : pool_.vertices(ids[i + kPrefetchAhead]))
              prefetch_read(&vh_[v]);
          cls[i] = classify(ids[i]);
        }
      });
      auto split = prims::pack_index_split<EdgeId>(
          k, cls, [&](std::size_t i) { return ids[i]; }, ws_.arena);
      candidates = split.first;
      stealers = split.second;
    }

    // P4: steal claim round -- winners displace their victims.
    resolve_steals(stealers);

    // P5: resettle bloated matches through the random-sampling path (not
    // run_greedy with the stale sample): the whole point is a fresh draw
    // over the grown neighborhood, so the freed vertices go through
    // settle() below.
    for (EdgeId b : bloated) {
      if (vh_[pool_.vertices(b)[0]].taken_by != b) continue;  // displaced
      ++stats_.bloated;
      unmatch(b);
    }

    run_greedy(candidates);
    settle();
    finish_batch();
    return ids;
  }

  // Braced-list convenience: delete_edges({a, b}).
  void delete_edges(std::initializer_list<EdgeId> ids) {
    delete_edges(std::span<const EdgeId>(ids.begin(), ids.size()));
  }

  // Deletes previously returned ids (each must be live).
  void delete_edges(std::span<const EdgeId> ids) {
    begin_batch();
    stats_.deletes += ids.size();
    const bool fused = parallel::run_phase_seq(ids.size());
    if (fused && !ids.empty()) ++stats_.fused_batches;
    charge_phase(ids.size());
    std::span<EdgeId> lv;
    if (fused) {
      // Sweep the batch's pool records into cache: every later phase of
      // the delete path reads them. Full sweep for small batches, rolling
      // window above (an unbounded sweep would evict its own lines).
      std::size_t sweep = ids.size() <= kSweepSmall ? ids.size() : kPrefetchAhead;
      for (std::size_t i = 0; i < sweep; ++i) pool_.prefetch_record(ids[i]);
      auto buf = ws_.arena.alloc<EdgeId>(ids.size());
      std::size_t n = 0;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids.size() > kSweepSmall && i + kPrefetchAhead < ids.size())
          pool_.prefetch_record(ids[i + kPrefetchAhead]);
        if (pool_.live(ids[i])) buf[n++] = ids[i];
      }
      lv = buf.first(n);
    } else {
      lv = prims::filter(
          ids, [&](EdgeId id) { return pool_.live(id); }, ws_.arena);
    }
    // The same id may legally appear more than once in a batch; deletion
    // order is immaterial, so dedup after an ascending sort.
    charge_phases(kRadixPhases + 1, lv.size());
    prims::radix_sort(lv, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits(), ws_.arena);
    if (fused) {
      std::size_t m = 0;
      for (std::size_t i = 0; i < lv.size(); ++i)
        if (i == 0 || lv[i] != lv[i - 1]) lv[m++] = lv[i];
      lv = lv.first(m);
    } else {
      lv = prims::dedup_sorted(std::span<const EdgeId>(lv), ws_.arena);
    }
    if (lv.empty()) {
      finish_batch();
      return;
    }

    // Rank sum (work accounting), victim scan, and live_deg decrements are
    // three logical phases; the fused strategy executes them as ONE pass
    // over the batch (their fields are disjoint, matched edges are
    // vertex-disjoint, and the victim test reads only taken_by, which the
    // pass never writes -- so any interleaving computes the same state).
    charge_phases(2, lv.size());  // rank map + reduce
    charge_phase(lv.size());      // victim scan
    std::span<const EdgeId> victims;
    if (fused) {
      auto buf = ws_.arena.alloc<EdgeId>(lv.size());
      std::size_t n = 0, sum = 0;
      std::size_t sweep = lv.size() <= kSweepSmall ? lv.size() : kPrefetchAhead;
      for (std::size_t i = 0; i < sweep; ++i)
        for (VertexId v : pool_.vertices(lv[i])) prefetch_write(&vh_[v]);
      for (std::size_t i = 0; i < lv.size(); ++i) {
        if (lv.size() > kSweepSmall && i + kPrefetchAhead < lv.size())
          for (VertexId v : pool_.vertices(lv[i + kPrefetchAhead]))
            prefetch_write(&vh_[v]);
        EdgeId e = lv[i];
        auto vs = pool_.vertices(e);
        sum += vs.size();
        bool is_victim = vh_[vs[0]].taken_by == e;
        for (VertexId v : vs) --vh_[v].live_deg;
        if (is_victim) buf[n++] = e;
      }
      stats_.work_units += sum;
      victims = {buf.data(), n};
      charge_phase(lv.size());  // live_deg decrements (fused above)
      unmatch_all(victims);
    } else {
      // Blocked map + reduce: a single shared atomic would serialize the
      // phase on one cache line.
      auto ranks = ws_.arena.alloc<std::size_t>(lv.size());
      parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
        ranks[i] = pool_.rank(lv[i]);
      });
      stats_.work_units +=
          prims::reduce(std::span<const std::size_t>(ranks), ws_.arena);
      // Deleted matches free their vertices (matched edges are disjoint,
      // so the victim set needs no dedup).
      victims = prims::filter(
          std::span<const EdgeId>(lv),
          [&](EdgeId e) { return vh_[pool_.vertices(e)[0]].taken_by == e; },
          ws_.arena);
      unmatch_all(victims);
      // live_deg decrements: an endpoint may lose several edges of this
      // batch, hence fetch-sub rather than per-vertex ownership.
      charge_phase(lv.size());
      parallel::parallel_for(0, lv.size(), [&](std::size_t i) {
        for (VertexId v : pool_.vertices(lv[i]))
          std::atomic_ref<std::uint32_t>(vh_[v].live_deg)
              .fetch_sub(1, std::memory_order_relaxed);
      });
    }
    charge_phase(lv.size());
    pool_.remove_edges(lv);
    settle();
    finish_batch();
  }

  // The current matching (ascending ids). O(|M|): the matched set is
  // maintained explicitly, never rebuilt by scanning the id space.
  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out(matched_edges_);
    prims::radix_sort(out, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits());
    return out;
  }

  bool is_matched(EdgeId id) const {
    return pool_.live(id) && vh_[pool_.vertices(id)[0]].taken_by == id;
  }

  // The matched edge taking vertex v, or kInvalidEdge when v is free (or
  // has never been seen). The per-vertex read the serving layer's snapshot
  // publisher (serve/service.h) republishes after each batch.
  EdgeId match_of(VertexId v) const {
    return v < vh_.size() ? vh_[v].taken_by : kInvalid;
  }

  // Optional matching-delta hook: when set, every vertex whose taken_by
  // changes (unmatch or commit) is appended to the sink, so a caller can
  // mirror the matching incrementally in O(touched) instead of O(V) per
  // batch. Duplicates are possible (a vertex freed then rematched in one
  // batch appears twice); read the final state through match_of. The sink
  // is appended from the sequential bookkeeping sites only, never from
  // inside a forked phase, and a null sink (the default) costs nothing.
  void set_delta_sink(std::vector<VertexId>* sink) { delta_sink_ = sink; }

  std::size_t matched_count() const { return matched_edges_.size(); }
  const graph::EdgePool& pool() const { return pool_; }
  const Config& config() const { return cfg_; }
  const CumulativeStats& cumulative_stats() const { return stats_; }
  const BatchStats& last_batch_stats() const { return batch_; }

  // Scratch high-water diagnostics (tests/test_alloc_free.cpp).
  const BatchWorkspace& workspace() const { return ws_; }

  // Heap bytes held by the structure proper: the edge-record pool, the
  // adjacency chunk slabs, and the per-vertex/per-edge hot arrays (the
  // benches' bytes-per-update accounting; scratch workspace excluded --
  // it is bounded by the largest batch, not the graph).
  std::size_t memory_bytes() const {
    return pool_.memory_bytes() + adj_.memory_bytes() +
           pri_.capacity() * sizeof(std::uint64_t) +
           ehot_.capacity() * sizeof(EdgeHot) +
           vh_.capacity() * sizeof(matching::VertexHot) +
           matched_edges_.capacity() * sizeof(EdgeId);
  }

  // ---- checkpoint serialization (DESIGN.md S14) ------------------------
  //
  // export_state/import_state move the matcher's LOGICAL state -- every
  // word a future batch's trajectory can depend on -- through a flat u64
  // stream: the two RNG epoch counters (the streams themselves are
  // stateless keyed hashes, so the counters ARE the stream positions), the
  // pool's slot records verbatim plus its free list in order (add_edges'
  // deterministic id assignment pops the tail back-to-front, so free-list
  // ORDER is trajectory state), each live edge's current sample, the
  // matched list in list order (unmatch swaps with the back, so order is
  // observable) with each match's bloat threshold/growth, and each
  // vertex's live incidence refs in chain order (settle's uniform draw is
  // an index into the harvest of exactly that order). Cumulative stats,
  // scratch workspace, and stale chain entries are deliberately NOT state:
  // a recovered matcher replays the same trajectory bit-for-bit but may
  // charge different compaction work_units, because import rebuilds every
  // chain pre-compacted. Shaped for shard hand-off: the stream is
  // position-independent and self-validating (ROADMAP scale-out item).
  void export_state(std::vector<std::uint64_t>& out) const {
    out.push_back(kStateMagic);
    out.push_back(kStateVersion);
    out.push_back(cfg_.seed);
    out.push_back(cfg_.max_rank);
    out.push_back(cfg_.level_gap);
    out.push_back(cfg_.heavy_factor);
    out.push_back(cfg_.light_only ? 1 : 0);
    out.push_back(insert_epoch_);
    out.push_back(settle_epoch_);
    pool_.export_state(out);
    std::size_t ib = pool_.id_bound();
    out.push_back(pool_.live_count());
    for (std::size_t id = 0; id < ib; ++id)
      if (pool_.live(static_cast<EdgeId>(id))) out.push_back(pri_[id]);
    out.push_back(matched_edges_.size());
    for (EdgeId e : matched_edges_) {
      out.push_back(e);
      out.push_back(ehot_[e].threshold);
      out.push_back(ehot_[e].growth);
    }
    std::size_t vb = vh_.size();
    out.push_back(vb);
    for (std::size_t v = 0; v < vb; ++v) {
      std::size_t cnt_pos = out.size();
      out.push_back(0);  // live-ref count, fixed up below
      std::uint64_t cnt = 0;
      adj_.visit(vh_[v].adj, [&](std::uint64_t ref) {
        if (pool_.ref_valid(ref)) {
          out.push_back(graph::EdgePool::ref_id(ref));
          ++cnt;
        }
      });
      out[cnt_pos] = cnt;  // == live_deg by the chain invariant
    }
  }

  // Restores a stream produced by export_state into a FRESHLY constructed
  // matcher with the same Config (the stream carries the config words and
  // refuses a mismatch -- replaying under different knobs would silently
  // diverge). Returns false on any malformed or inconsistent stream,
  // leaving the matcher unusable; callers treat that as a corrupt
  // checkpoint and fall back to an older one.
  bool import_state(std::span<const std::uint64_t> in) {
    assert(pool_.live_count() == 0 && insert_epoch_ == 0 &&
           settle_epoch_ == 0 && matched_edges_.empty() &&
           "import into a used matcher");
    std::size_t p = 0;
    auto need = [&](std::uint64_t n) { return in.size() - p >= n; };
    if (!need(9)) return false;
    if (in[p++] != kStateMagic || in[p++] != kStateVersion) return false;
    if (in[p++] != cfg_.seed || in[p++] != cfg_.max_rank ||
        in[p++] != cfg_.level_gap || in[p++] != cfg_.heavy_factor ||
        in[p++] != static_cast<std::uint64_t>(cfg_.light_only ? 1 : 0))
      return false;
    insert_epoch_ = in[p++];
    settle_epoch_ = in[p++];
    std::size_t consumed = 0;
    if (!pool_.import_state(in.subspan(p), &consumed)) return false;
    p += consumed;
    ensure_bounds();
    std::size_t ib = pool_.id_bound();
    if (!need(1)) return false;
    std::uint64_t nlive = in[p++];
    if (nlive != pool_.live_count() || !need(nlive)) return false;
    for (std::size_t id = 0; id < ib; ++id)
      if (pool_.live(static_cast<EdgeId>(id))) pri_[id] = in[p++];
    if (!need(1)) return false;
    std::uint64_t nm = in[p++];
    if (nm > nlive || !need(3 * nm)) return false;
    for (std::uint64_t i = 0; i < nm; ++i) {
      EdgeId e = static_cast<EdgeId>(in[p++]);
      if (!pool_.live(e) || vh_[pool_.vertices(e)[0]].taken_by != kInvalid)
        return false;
      EdgeHot& h = ehot_[e];
      h.threshold = in[p++];
      h.growth = static_cast<std::uint32_t>(in[p++]);
      matched_add(e);
      for (VertexId v : pool_.vertices(e)) vh_[v].taken_by = e;
    }
    if (!need(1)) return false;
    std::uint64_t vb = in[p++];
    if (vb != vh_.size()) return false;
    // Chain rebuild: one slab reservation for the whole incidence volume,
    // then per-vertex appends in exported order. Refs are recomputed from
    // the restored pool (slot generations included), so only edge ids
    // travel in the stream.
    std::size_t total = 0;
    for (std::size_t id = 0; id < ib; ++id)
      if (pool_.live(static_cast<EdgeId>(id)))
        total += pool_.rank(static_cast<EdgeId>(id));
    adj_.reserve_for(total, static_cast<std::size_t>(vb));
    for (std::uint64_t v = 0; v < vb; ++v) {
      if (!need(1)) return false;
      std::uint64_t cnt = in[p++];
      if (!need(cnt)) return false;
      auto& h = vh_[static_cast<std::size_t>(v)];
      for (std::uint64_t j = 0; j < cnt; ++j) {
        EdgeId e = static_cast<EdgeId>(in[p++]);
        if (!pool_.live(e)) return false;
        adj_.append(h.adj, pool_.packed_ref(e));
      }
      h.live_deg = static_cast<std::uint32_t>(cnt);
    }
    return p == in.size();
  }

  // RNG stream positions (DESIGN.md S2: the keyed streams are stateless,
  // so these counters are the complete RNG state). The journal records
  // them post-apply as a replay cross-check.
  std::uint64_t insert_epochs() const { return insert_epoch_; }
  std::uint64_t settle_epochs() const { return settle_epoch_; }

  // Order-sensitive fold of exactly the exported logical state. Equal
  // fingerprints mean equal replay trajectories (the recovery bit-identity
  // check of DESIGN.md S14); cumulative stats, which recovery legitimately
  // perturbs, are excluded by construction.
  std::uint64_t state_fingerprint() const {
    std::vector<std::uint64_t> words;
    export_state(words);
    std::uint64_t h = 0x5EED'F00D'CAFE'D00Dull;
    for (std::uint64_t w : words) h = hash64(h, w);
    return h;
  }

 private:
  static constexpr std::uint64_t kStateMagic = 0x504D'5354'4154'4531ull;
  static constexpr std::uint64_t kStateVersion = 1;

  // ---- batch lifecycle -------------------------------------------------

  void begin_batch() {
    batch_ = BatchStats{};
    ws_.arena.reset();
    ws_.freed.clear();
  }

  void finish_batch() {
    if (batch_.measured_depth > stats_.max_batch_depth)
      stats_.max_batch_depth = batch_.measured_depth;
  }

  // ---- id/vertex array maintenance -------------------------------------

  void ensure_bounds() {
    std::size_t ib = pool_.id_bound();
    if (pri_.size() < ib) {
      pri_.resize(ib, 0);
      ehot_.resize(ib);
    }
    std::size_t vb = pool_.vertex_bound();
    if (vh_.size() < vb) vh_.resize(vb);
  }

  // ---- depth instrumentation ------------------------------------------

  // Every logical data-parallel phase charges its binary-forking span; the
  // sum is the batch's measured depth (dyn/stats.h). Multi-pass primitives
  // (radix sort, scan, semisort) charge one phase per internal parallel
  // loop. Charges are independent of the execution strategy: a phase run
  // inline by the cost model charges the same span it would have forked
  // with, so depth stays a schedule property, not a clock artifact.
  void charge_phase(std::size_t n) { charge_phases(1, n); }

  void charge_phases(std::size_t count, std::size_t n) {
    batch_.parallel_phases += count;
    batch_.measured_depth += count * parallel::model_depth(n);
  }

  // Sets at most this large get a full upfront prefetch sweep instead of a
  // rolling lookahead window (which never fires when the set is shorter
  // than the window) -- the batched-miss pattern of DESIGN.md S11.
  static constexpr std::size_t kSweepSmall = 32;

  // Shared 32-bit radix-sort charge (prims/radix_sort.h); 64-bit sorts
  // charge 2x.
  static constexpr std::size_t kRadixPhases = prims::kRadixSortPhases32;

  // Bits needed to cover every allocated edge id (radix sort key width).
  int id_bits() const {
    return std::bit_width(static_cast<std::uint64_t>(pool_.id_bound()) | 1);
  }

  // prims::group_by = pair fill + radix over the key bits actually used +
  // value copy + boundary pack + key/offset fill.
  std::size_t group_by_phases(std::uint64_t max_key) const {
    return 4 + 2 * ((std::bit_width(max_key | 1) + 7) / 8);
  }

  // ---- match bookkeeping ----------------------------------------------

  // Per-edge/per-vertex state of a new match. Safe to run in parallel over
  // a vertex-disjoint winner set; the matched-edge set itself is appended
  // sequentially by the caller (commit_matches).
  void commit_arrays(EdgeId e) {
    std::size_t nbhd = 0;
    for (VertexId v : pool_.vertices(e)) {
      vh_[v].taken_by = e;
      nbhd += vh_[v].live_deg;
    }
    // Level quantization: remember the settle size only up to the gap.
    // Saturate instead of wrapping: a pathological neighborhood (or a huge
    // heavy_factor) must yield "never bloats", not a tiny threshold.
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t gap = cfg_.level_gap < 2 ? 2 : cfg_.level_gap;
    std::uint64_t cap = gap;
    bool saturated = false;
    while (cap < nbhd) {
      if (cap > kMax / gap) {
        saturated = true;
        break;
      }
      cap *= gap;
    }
    std::uint64_t hf = cfg_.heavy_factor;
    EdgeHot& h = ehot_[e];
    h.threshold =
        (saturated || (hf != 0 && cap > kMax / hf)) ? kMax : hf * cap;
    h.growth = 0;
  }

  void matched_add(EdgeId e) {
    ehot_[e].matched_pos = static_cast<std::uint32_t>(matched_edges_.size());
    matched_edges_.push_back(e);
  }

  // Applies a vertex-disjoint winner set: per-edge/per-vertex arrays in the
  // (possibly forked) phase, then the matched-edge list append in winner
  // order. The single application loop shared by the steal and greedy
  // paths.
  void commit_matches(std::span<const EdgeId> winners) {
    charge_phase(winners.size());
    if (winners.size() <= kSweepSmall && parallel::run_phase_seq(winners.size())) {
      for (EdgeId f : winners) {
        prefetch_write(&ehot_[f]);
        for (VertexId v : pool_.vertices(f)) prefetch_write(&vh_[v]);
      }
      for (EdgeId e : winners) commit_arrays(e);
    } else {
      parallel::parallel_for_blocked(
          0, winners.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              if (i + kPrefetchAhead < e) {
                EdgeId f = winners[i + kPrefetchAhead];
                prefetch_write(&ehot_[f]);
                for (VertexId v : pool_.vertices(f)) prefetch_write(&vh_[v]);
              }
              commit_arrays(winners[i]);
            }
          });
    }
    for (EdgeId e : winners) matched_add(e);
    if (delta_sink_)
      for (EdgeId e : winners)
        for (VertexId v : pool_.vertices(e)) delta_sink_->push_back(v);
  }

  // Frees e's vertices into the batch's pending-settle set (ws_.freed).
  void unmatch(EdgeId e) {
    for (VertexId v : pool_.vertices(e)) {
      if (vh_[v].taken_by == e) {
        vh_[v].taken_by = kInvalid;
        ws_.freed.push_back(v);
        if (delta_sink_) delta_sink_->push_back(v);
      }
    }
    std::uint32_t idx = ehot_[e].matched_pos;
    EdgeId last = matched_edges_.back();
    matched_edges_[idx] = last;
    ehot_[last].matched_pos = idx;
    matched_edges_.pop_back();
  }

  bool all_endpoints_free(EdgeId e) const {
    for (VertexId v : pool_.vertices(e))
      if (vh_[v].taken_by != kInvalid) return false;
    return true;
  }

  // ---- insert phases ---------------------------------------------------

  // The per-vertex-group body of insert P2, shared by both execution
  // strategies: amortized owner-side compaction, adjacency appends,
  // live_deg bump, and the bloat-threshold crossing check. `ref_at(j)` is
  // the j-th packed edge-ref of this group; `comp_scanned` reports the
  // compaction scan length; `bloat_out` the (unique) bloated match this
  // group observed crossing, or kInvalid.
  template <typename RefAt>
  void apply_group(VertexId v, std::uint32_t cnt, RefAt&& ref_at, bool seq,
                   std::size_t& comp_scanned, EdgeId& bloat_out) {
    // Amortized owner-side compaction: valid entries number exactly
    // live_deg, so a chain more than twice that (plus slack) is mostly
    // stale refs -- drop them now, charged to the appends that grew the
    // chain. This bounds every chain (and the arena) to O(live incident
    // edges), which is what keeps steady-state batches allocation-free;
    // the trigger depends only on schedule-independent lengths, so the
    // trajectory stays deterministic (DESIGN.md S2). Settle's lazy
    // compaction still handles the vertices this owner never touches.
    comp_scanned = 0;
    std::size_t len = vh_[v].adj.len;
    if (len >= 16 + 2 * (static_cast<std::size_t>(vh_[v].live_deg) + cnt))
      comp_scanned = adj_.compact_visit(
          vh_[v].adj, [&](std::uint64_t ref) { return pool_.ref_valid(ref); });
    for (std::uint32_t j = 0; j < cnt; ++j) adj_.append(vh_[v].adj, ref_at(j));
    vh_[v].live_deg += cnt;
    bloat_out = kInvalid;
    EdgeId t = vh_[v].taken_by;
    if (t == kInvalid) return;
    // P3's classify will compare against this match's priority; pull the
    // line now, while P2 still has the record in hand.
    prefetch_read(&pri_[t]);
    if (cfg_.light_only) return;
    // The neighborhood of match t grew; check the level bound. Exactly
    // one fetch-add interval straddles the threshold, so each bloated
    // edge is reported by exactly one group (plain add when inline).
    EdgeHot& h = ehot_[t];
    std::uint64_t before;
    if (seq) {
      before = h.growth;
      h.growth += cnt;
    } else {
      before = std::atomic_ref<std::uint32_t>(h.growth)
                   .fetch_add(cnt, std::memory_order_relaxed);
    }
    if (before <= h.threshold && before + cnt > h.threshold) bloat_out = t;
  }

  // P2 of insert_edges, forked strategy: semisort the batch incidence by
  // endpoint and let one owner per vertex-group apply the shared group
  // body. Returns the bloated edges in ascending id order, so downstream
  // processing is schedule-independent.
  std::span<const EdgeId> apply_adjacency(const graph::EdgeBatch& batch,
                                          std::span<const EdgeId> ids) {
    std::size_t k = ids.size();
    std::size_t total = batch.total_cardinality();
    auto offs = ws_.arena.alloc<std::uint32_t>(k);
    charge_phase(k);
    parallel::parallel_for(
        0, k, [&](std::size_t i) {
          offs[i] = static_cast<std::uint32_t>(batch.edge(i).size());
        });
    charge_phases(2, k);  // scan = up-sweep + down-sweep
    prims::scan_exclusive(offs, ws_.arena);
    auto gkeys = ws_.arena.alloc<VertexId>(total);
    auto gvals = ws_.arena.alloc<std::uint64_t>(total);
    charge_phase(total);
    parallel::parallel_for(0, k, [&](std::size_t i) {
      auto vs = batch.edge(i);
      std::uint64_t ref = pool_.packed_ref(ids[i]);
      std::uint32_t base = offs[i];
      for (std::size_t j = 0; j < vs.size(); ++j) {
        gkeys[base + j] = vs[j];
        gvals[base + j] = ref;
      }
    });
    charge_phases(group_by_phases(pool_.vertex_bound()), total);
    auto groups = prims::group_by<VertexId, std::uint64_t>(
        gkeys, gvals, ws_.arena, pool_.vertex_bound());

    std::size_t ng = groups.num_groups();
    // Slab headroom for the appends below, sized before the parallel phase
    // so chunk allocation is a pure bump (graph/adjacency.h).
    adj_.reserve_for(total, ng);
    auto bloat_mark = ws_.arena.alloc<EdgeId>(ng);
    auto comp_scan = ws_.arena.alloc<std::size_t>(ng);
    charge_phases(2, ng);  // group apply + compaction-scan reduce
    const bool seq = parallel::run_phase_seq(ng);
    parallel::parallel_for(0, ng, [&](std::size_t g) {
      auto vals = groups.group(g);
      apply_group(
          groups.keys[g], static_cast<std::uint32_t>(vals.size()),
          [&](std::size_t j) { return vals[j]; }, seq, comp_scan[g],
          bloat_mark[g]);
    });
    stats_.work_units +=
        prims::reduce(std::span<const std::size_t>(comp_scan), ws_.arena);
    charge_phase(ng);
    auto bloated = prims::filter(
        std::span<const EdgeId>(bloat_mark),
        [](EdgeId e) { return e != kInvalid; }, ws_.arena);
    charge_phases(kRadixPhases, bloated.size());
    prims::radix_sort(bloated, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits(), ws_.arena);
    return bloated;
  }

  // P2 of insert_edges, fused strategy: the same logical phases as
  // apply_adjacency -- identical charges, identical resulting state --
  // executed as direct loops, no scan/semisort staging/pack machinery.
  // Group ORDER is free: appends, live_deg, and compaction triggers are
  // per-vertex; growth is an order-independent sum whose threshold
  // crossing fires exactly once in any accumulation order; and the bloated
  // set is sorted by id before use. (The forked path already exploits
  // this: its groups are applied in whatever order the scheduler picks.)
  // So small batches group by first-occurrence bucketing -- two linear
  // passes, no sort at all -- and only large fused batches (forced
  // sequential mode) fall back to the stable pair sort.
  std::span<const EdgeId> apply_adjacency_fused(const graph::EdgeBatch& batch,
                                                std::span<const EdgeId> ids) {
    std::size_t k = ids.size();
    std::size_t total = batch.total_cardinality();
    charge_phase(k);      // (offsets fill)
    charge_phases(2, k);  // (offsets scan)
    charge_phase(total);  // flat (endpoint, ref) fill
    struct Pair {
      VertexId v;
      std::uint64_t ref;
    };
    auto pairs = ws_.arena.alloc<Pair>(total);
    std::size_t idx = 0;
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t ref = pool_.packed_ref(ids[i]);
      for (VertexId v : batch.edge(i)) {
        // Batched-miss sweep, issued before the grouping below so the
        // vertex records (which embed the adjacency headers) land while
        // it runs.
        prefetch_write(&vh_[v]);
        pairs[idx++] = Pair{v, ref};
      }
    }
    charge_phases(group_by_phases(pool_.vertex_bound()), total);
    // Group starts[g] .. starts[g+1] delimit each group's refs in `refs`.
    auto gverts = ws_.arena.alloc<VertexId>(total);
    auto starts = ws_.arena.alloc<std::uint32_t>(total + 1);
    auto refs = ws_.arena.alloc<std::uint64_t>(total);
    std::size_t ng = 0;
    if (total <= 64) {
      // First-occurrence bucketing: gather distinct vertices and counts
      // with linear probes (total is tiny), then segment the refs.
      auto cnt = ws_.arena.alloc<std::uint32_t>(total);
      auto slot_of = ws_.arena.alloc<std::uint32_t>(total);
      for (std::size_t i = 0; i < total; ++i) {
        VertexId v = pairs[i].v;
        std::size_t g = 0;
        while (g < ng && gverts[g] != v) ++g;
        if (g == ng) {
          gverts[ng] = v;
          cnt[ng++] = 0;
        }
        slot_of[i] = static_cast<std::uint32_t>(g);
        ++cnt[g];
      }
      std::uint32_t off = 0;
      for (std::size_t g = 0; g < ng; ++g) {
        starts[g] = off;
        off += cnt[g];
        cnt[g] = starts[g];  // reuse as the group's write cursor
      }
      starts[ng] = off;
      for (std::size_t i = 0; i < total; ++i)
        refs[cnt[slot_of[i]]++] = pairs[i].ref;
    } else {
      prims::radix_sort(
          std::span<Pair>(pairs),
          [](const Pair& p) { return static_cast<std::uint64_t>(p.v); },
          std::bit_width(static_cast<std::uint64_t>(pool_.vertex_bound()) | 1),
          ws_.arena);
      for (std::size_t i = 0; i < total; ++i) {
        if (i == 0 || pairs[i].v != pairs[i - 1].v) {
          gverts[ng] = pairs[i].v;
          starts[ng++] = static_cast<std::uint32_t>(i);
        }
        refs[i] = pairs[i].ref;
      }
      starts[ng] = static_cast<std::uint32_t>(total);
    }
    adj_.reserve_for(total, ng);
    charge_phases(2, ng);
    auto bloat = ws_.arena.alloc<EdgeId>(ng);
    std::size_t nb = 0, comp_total = 0;
    for (std::size_t g = 0; g < ng; ++g) {
      // The append cursor line needs the (now resident) header to locate;
      // the bloat counter of the next groups' matches needs their
      // (resident) vertex records.
      if (g + 4 < ng) adj_.prefetch_append_target(vh_[gverts[g + 4]].adj);
      if (g + 3 < ng) {
        EdgeId t = vh_[gverts[g + 3]].taken_by;
        if (t != kInvalid) prefetch_write(&ehot_[t]);
      }
      std::size_t s = starts[g];
      std::size_t comp = 0;
      EdgeId bm = kInvalid;
      apply_group(
          gverts[g], starts[g + 1] - starts[g],
          [&](std::size_t j) { return refs[s + j]; }, true, comp, bm);
      comp_total += comp;
      if (bm != kInvalid) bloat[nb++] = bm;
    }
    stats_.work_units += comp_total;
    charge_phase(ng);
    charge_phases(kRadixPhases, nb);
    auto bl = std::span<EdgeId>(bloat.data(), nb);
    prims::radix_sort(bl, [](EdgeId e) { return std::uint64_t(e); },
                      id_bits(), ws_.arena);
    return bl;
  }

  // P3 body: 0 = blocked, 1 = all-free greedy candidate, 2 = steal
  // candidate. Reads only pre-batch matching state, so both strategies
  // agree regardless of evaluation order.
  std::uint8_t classify(EdgeId e) const {
    bool any_taken = false, steals_all = true;
    for (VertexId v : pool_.vertices(e)) {
      EdgeId t = vh_[v].taken_by;
      if (t == kInvalid) continue;
      any_taken = true;
      if (!matching::detail::beats(pri_[e], e, pri_[t], t)) {
        steals_all = false;
        break;
      }
    }
    return !any_taken ? 1 : (steals_all ? 2 : 0);
  }

  // The steal engine's reservation step (contract in
  // prims/speculative_for.h). Items are positions in the (priority, id)-
  // sorted stealer order. A stealer blocked by a better match RETRIES
  // rather than dropping -- the blocker may itself be displaced through
  // its other vertices by a better stealer, freeing the vertex -- and
  // finalizes as blocked only at the frontier, where every better stealer
  // has already resolved, i.e. exactly when the sequential greedy repair
  // would have dropped it. Victims are unmatched in finalize (sequential):
  // the taken_by re-read there dedups a victim two winners displace
  // through different vertices.
  struct StealStep {
    DynamicMatcher& m;
    std::span<const EdgeId> order;
    std::size_t stolen = 0;
    bool seq = true;

    void begin_round(std::uint64_t, bool s) { seq = s; }

    prims::SpecStatus reserve(std::size_t i, bool frontier) {
      EdgeId e = order[i];
      for (VertexId v : m.pool_.vertices(e)) {
        EdgeId t = m.vh_[v].taken_by;
        if (t != kInvalid &&
            !matching::detail::beats(m.pri_[e], e, m.pri_[t], t))
          return frontier ? prims::SpecStatus::kDone
                          : prims::SpecStatus::kRetry;
      }
      for (VertexId v : m.pool_.vertices(e))
        prims::reserve_slot(m.vh_[v].min_edge, static_cast<std::uint32_t>(i),
                            seq);
      return prims::SpecStatus::kTryCommit;
    }

    bool commit(std::size_t i) {
      EdgeId e = order[i];
      auto idx = static_cast<std::uint32_t>(i);
      bool owns = true;
      for (VertexId v : m.pool_.vertices(e))
        owns = owns && prims::slot_holds(m.vh_[v].min_edge, idx, seq);
      for (VertexId v : m.pool_.vertices(e))
        if (owns || prims::slot_holds(m.vh_[v].min_edge, idx, seq))
          prims::release_slot(m.vh_[v].min_edge, seq);
      return owns;
    }

    void finalize(std::size_t i) {
      EdgeId e = order[i];
      bool displaced = false;
      for (VertexId v : m.pool_.vertices(e)) {
        EdgeId t = m.vh_[v].taken_by;
        if (t != kInvalid) {
          m.unmatch(t);
          displaced = true;
        }
      }
      if (displaced) ++stolen;
      m.commit_arrays(e);
      m.matched_add(e);
      if (m.delta_sink_)
        for (VertexId v : m.pool_.vertices(e)) m.delta_sink_->push_back(v);
    }
  };

  // P4 of insert_edges. Default: iterate the stealers to the greedy fixed
  // point. Sorted by (priority, id), the stealers run reserve/commit
  // rounds whose index-min reservations implement priority-min claims, so
  // the result is exactly the sequential greedy repair in priority order
  // -- displaced chains resolve inside the batch instead of leaking to
  // the next settle. PARMATCH_STEAL_FIXPOINT=0 keeps the legacy single
  // claim round below.
  void resolve_steals(std::span<const EdgeId> stealers) {
    if (stealers.empty()) return;
    std::size_t ns = stealers.size();
    if (!steal_fixpoint()) {
      ++stats_.steal_rounds;
      ++batch_.steal_rounds;
      resolve_steals_legacy(stealers);
      return;
    }
    stats_.work_units += ns;
    auto order = ws_.arena.alloc<EdgeId>(ns);
    charge_phase(ns);
    parallel::parallel_for_blocked(0, ns, [&](std::size_t b, std::size_t e) {
      std::memcpy(order.data() + b, stealers.data() + b,
                  (e - b) * sizeof(EdgeId));
    });
    // (pri, id) order via two stable radix passes: id width, then the full
    // 64-bit priority (charged at 2x the 32-bit radix model).
    charge_phases(3 * kRadixPhases, ns);
    prims::radix_sort(std::span<EdgeId>(order),
                      [](EdgeId e) { return std::uint64_t(e); }, id_bits(),
                      ws_.arena);
    prims::radix_sort(std::span<EdgeId>(order),
                      [&](EdgeId e) { return pri_[e]; }, 64, ws_.arena);
    StealStep step{*this, order};
    prims::SpecStats st = prims::speculative_for(step, 0, ns, ws_.arena, 0,
                                                 &batch_.measured_depth);
    batch_.parallel_phases += prims::kSpecRoundPhases * st.rounds;
    stats_.steal_rounds += st.rounds;
    batch_.steal_rounds += st.rounds;
    stats_.spec_retries += st.retries;
    batch_.spec_retries += st.retries;
    stats_.work_units += st.retries;
    stats_.stolen += step.stolen;
  }

  // P4, legacy (PARMATCH_STEAL_FIXPOINT=0): one claim round over the steal
  // candidates. Each stealer CAS-mins itself into every endpoint slot; an
  // edge owning all its slots wins, displaces the matches it touches, and
  // commits. Losers do not retry: any vertex they could still want is
  // either taken by a better edge or freed into settle(), which restores
  // maximality.
  void resolve_steals_legacy(std::span<const EdgeId> stealers) {
    std::size_t ns = stealers.size();
    const bool seq = parallel::run_phase_seq(ns);
    if (seq) {
      resolve_steals_fused(stealers);
      return;
    }
    charge_phase(ns);
    parallel::parallel_for_blocked(0, ns, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (i + kPrefetchAhead < e)
          for (VertexId v : pool_.vertices(stealers[i + kPrefetchAhead]))
            prefetch_write(&vh_[v]);
        EdgeId ed = stealers[i];
        for (VertexId v : pool_.vertices(ed)) {
          std::atomic_ref<EdgeId> slot(vh_[v].min_edge);
          EdgeId cur = slot.load(std::memory_order_relaxed);
          while (cur == kInvalid ||
                 matching::detail::beats(pri_[ed], ed, pri_[cur], cur)) {
            if (slot.compare_exchange_weak(cur, ed,
                                           std::memory_order_acq_rel))
              break;
          }
        }
      }
    });
    auto winners = prims::filter_marked(
        stealers,
        [&](EdgeId e) {
          for (VertexId v : pool_.vertices(e))
            if (vh_[v].min_edge != e) return false;
          return true;
        },
        ws_.arena);
    charge_phase(ns);
    parallel::parallel_for(0, ns, [&](std::size_t i) {
      for (VertexId v : pool_.vertices(stealers[i]))
        std::atomic_ref<EdgeId>(vh_[v].min_edge)
            .store(kInvalid, std::memory_order_relaxed);
    });
    if (winners.empty()) return;
    // A victim can touch two winners at different vertices; dedup (ascending
    // sort + pack) before unmatching so each is displaced exactly once.
    ws_.victims.clear();
    for (EdgeId e : winners)
      for (VertexId v : pool_.vertices(e)) {
        EdgeId t = vh_[v].taken_by;
        if (t != kInvalid) ws_.victims.push_back(t);
      }
    charge_phases(kRadixPhases + 1, ws_.victims.size());
    prims::radix_sort(std::span<EdgeId>(ws_.victims),
                      [](EdgeId e) { return std::uint64_t(e); }, id_bits(),
                      ws_.arena);
    auto victims = prims::dedup_sorted(
        std::span<const EdgeId>(ws_.victims), ws_.arena);
    unmatch_all(victims);
    commit_matches(winners);
    stats_.stolen += winners.size();
  }

  // P4, fused strategy: the identical claim/winner/victim logic as direct
  // plain-memory loops -- same charges, same winner and victim order, none
  // of the mark/pack machinery.
  void resolve_steals_fused(std::span<const EdgeId> stealers) {
    std::size_t ns = stealers.size();
    charge_phase(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      if (i + kPrefetchAhead < ns)
        for (VertexId v : pool_.vertices(stealers[i + kPrefetchAhead]))
          prefetch_write(&vh_[v]);
      EdgeId ed = stealers[i];
      for (VertexId v : pool_.vertices(ed)) {
        EdgeId cur = vh_[v].min_edge;
        if (cur == kInvalid ||
            matching::detail::beats(pri_[ed], ed, pri_[cur], cur))
          vh_[v].min_edge = ed;
      }
    }
    auto winners = ws_.arena.alloc<EdgeId>(ns);
    std::size_t nw = 0;
    for (EdgeId e : stealers) {
      bool owns = true;
      for (VertexId v : pool_.vertices(e)) owns = owns && vh_[v].min_edge == e;
      if (owns) winners[nw++] = e;
    }
    charge_phase(ns);
    for (EdgeId e : stealers)
      for (VertexId v : pool_.vertices(e)) vh_[v].min_edge = kInvalid;
    if (nw == 0) return;
    ws_.victims.clear();
    for (std::size_t i = 0; i < nw; ++i)
      for (VertexId v : pool_.vertices(winners[i])) {
        EdgeId t = vh_[v].taken_by;
        if (t != kInvalid) ws_.victims.push_back(t);
      }
    charge_phases(kRadixPhases + 1, ws_.victims.size());
    prims::radix_sort(std::span<EdgeId>(ws_.victims),
                      [](EdgeId e) { return std::uint64_t(e); }, id_bits(),
                      ws_.arena);
    std::size_t m = 0;
    for (std::size_t i = 0; i < ws_.victims.size(); ++i)
      if (i == 0 || ws_.victims[i] != ws_.victims[i - 1])
        ws_.victims[m++] = ws_.victims[i];
    unmatch_all({ws_.victims.data(), m});
    commit_matches({winners.data(), nw});
    stats_.stolen += nw;
  }

  // ---- greedy over a candidate set ------------------------------------

  void run_greedy(std::span<const EdgeId> candidates) {
    if (candidates.empty()) return;
    charge_phase(candidates.size());
    if (parallel::run_phase_seq(candidates.size())) {
      auto keep = ws_.arena.alloc<EdgeId>(candidates.size());
      std::size_t nk = 0;
      for (EdgeId e : candidates)
        if (all_endpoints_free(e)) keep[nk++] = e;
      candidates = {keep.data(), nk};
    } else {
      candidates = prims::filter_marked(
          candidates, [&](EdgeId e) { return all_endpoints_free(e); },
          ws_.arena);
    }
    if (candidates.empty()) return;
    ws_.matched.clear();
    std::size_t retries = 0;
    std::size_t rounds = matching::greedy_match_rounds(
        pool_, candidates, [&](EdgeId e) { return pri_[e]; }, vh_,
        &ws_.matched, ws_.arena, &stats_.work_units, &batch_.measured_depth,
        &retries);
    batch_.parallel_phases +=
        (candidates.size() > 1 ? matching::kGreedySortPhases : 0) +
        prims::kSpecRoundPhases * rounds;
    batch_.spec_retries += retries;
    stats_.spec_retries += retries;
    if (rounds > batch_.max_greedy_rounds) batch_.max_greedy_rounds = rounds;
    commit_matches(ws_.matched);
  }

  // ---- randomSettle (Section 4) ---------------------------------------

  // all_endpoints_free for an edge known to be incident to the (free)
  // vertex v: v's own record never needs re-reading, so the check chases
  // one fewer line per scanned entry at rank 2.
  bool free_beyond(VertexId v, EdgeId e) const {
    for (VertexId u : pool_.vertices(e))
      if (u != v && vh_[u].taken_by != kInvalid) return false;
    return true;
  }

  // Settle's one adjacency pass: compacts adj_'s chain for the free vertex
  // pending[i] (each dead entry is dropped exactly once) and caches every
  // free incident edge into this vertex's workspace candidate slice.
  // Returns the scan length for work accounting.
  std::size_t harvest_candidates(std::size_t i, VertexId v) {
    std::uint32_t w = 0;
    EdgeId* out = ws_.cand_pool.data() + ws_.cand_off[i];
    std::size_t scanned = adj_.compact_visit(
        vh_[v].adj,
        [&](std::uint64_t entry) {
          if (!pool_.ref_valid(entry)) return false;  // stale: compact away
          EdgeId e = graph::EdgePool::ref_id(entry);
          if (free_beyond(v, e)) out[w++] = e;
          return true;
        },
        // Far peek: the visitor's first-level loads are the packed pool
        // slot (validation) and the vertex row (free-ness check); pull
        // both kPeekAhead entries early so the misses overlap.
        [&](std::uint64_t entry) {
          EdgeId e = graph::EdgePool::ref_id(entry);
          pool_.prefetch_record(e);
        },
        // Near peek: by now the slot and vertex row are resident, so read
        // them (speculatively -- stale refs yield an empty row) and pull
        // the second-level endpoint records the free-ness check chases.
        [&](std::uint64_t entry) {
          EdgeId e = graph::EdgePool::ref_id(entry);
          for (VertexId u : pool_.vertices_if_live(e))
            if (u != v) prefetch_read(&vh_[u]);
        });
    ws_.cand_len[i] = w;
    return scanned;
  }

  // unmatch with the matched-position and matched-list lines staged ahead:
  // three tiny sweeps turn the dependent-miss chain (ehot_[e].matched_pos ->
  // matched_edges_[idx]) into overlapped misses before the serial loop.
  void unmatch_all(std::span<const EdgeId> victims) {
    for (EdgeId e : victims) prefetch_read(&ehot_[e]);
    for (EdgeId e : victims)
      prefetch_write(&matched_edges_[ehot_[e].matched_pos]);
    for (EdgeId e : victims) unmatch(e);
  }

  // The settle engine's reservation step (contract in
  // prims/speculative_for.h). Items index ws_.freed; each still-free
  // vertex prunes its cached candidate slice in place (settle only adds
  // matches, so a candidate that goes un-free never comes back -- the
  // prune is monotone and nothing is ever rescanned from adjacency),
  // draws a uniform survivor keyed (vertex, settle epoch), and reserves
  // the drawn edge's endpoints. An empty slice means settled free, which
  // is exactly maximality at this vertex. Winners match in finalize and
  // (unless light_only) redraw the edge's sample keyed (edge, epoch);
  // losers carry the pruned slice into the next round and redraw there.
  struct SettleStep {
    DynamicMatcher& m;
    const VertexId* pending;
    EdgeId* choice;
    std::size_t work = 0;     // candidate prune touches, all rounds
    std::uint64_t epoch = 0;  // global settle epoch of the current round
    bool seq = true;

    void begin_round(std::uint64_t, bool s) {
      seq = s;
      epoch = ++m.settle_epoch_;
    }

    prims::SpecStatus reserve(std::size_t i, bool) {
      VertexId v = pending[i];
      if (m.vh_[v].taken_by != kInvalid) return prims::SpecStatus::kDone;
      EdgeId* c = m.ws_.cand_pool.data() + m.ws_.cand_off[i];
      std::uint32_t n = m.ws_.cand_len[i];
      std::uint32_t w = 0;
      for (std::uint32_t j = 0; j < n; ++j)
        if (m.free_beyond(v, c[j])) c[w++] = c[j];
      m.ws_.cand_len[i] = w;
      if (seq)
        work += n;
      else
        std::atomic_ref<std::size_t>(work).fetch_add(
            n, std::memory_order_relaxed);
      if (w == 0) return prims::SpecStatus::kDone;  // settled free: maximal
      EdgeId e;
      if (m.cfg_.light_only) {
        e = c[0];
        for (std::uint32_t j = 1; j < w; ++j)
          if (matching::detail::beats(m.pri_[c[j]], c[j], m.pri_[e], e))
            e = c[j];
      } else {
        e = c[m.settle_draw_.stream(v, epoch).next_below(w)];
      }
      choice[i] = e;
      for (VertexId u : m.pool_.vertices(e))
        prims::reserve_slot(m.vh_[u].min_edge, static_cast<std::uint32_t>(i),
                            seq);
      return prims::SpecStatus::kTryCommit;
    }

    bool commit(std::size_t i) {
      EdgeId e = choice[i];
      auto idx = static_cast<std::uint32_t>(i);
      bool owns = true;
      for (VertexId u : m.pool_.vertices(e))
        owns = owns && prims::slot_holds(m.vh_[u].min_edge, idx, seq);
      for (VertexId u : m.pool_.vertices(e))
        if (owns || prims::slot_holds(m.vh_[u].min_edge, idx, seq))
          prims::release_slot(m.vh_[u].min_edge, seq);
      return owns;
    }

    void finalize(std::size_t i) {
      EdgeId e = choice[i];
      if (!m.cfg_.light_only) {
        // The fresh sample (the lazy machinery's coin), keyed (edge,
        // epoch) -- drawn only for the edge that actually matches.
        m.pri_[e] = m.settle_pri_.word(e, epoch);
        ++m.stats_.samples_created;
      }
      m.commit_arrays(e);
      m.matched_add(e);
      if (m.delta_sink_)
        for (VertexId u : m.pool_.vertices(e)) m.delta_sink_->push_back(u);
    }
  };

  // Settles ws_.freed: one adjacency harvest fills the workspace candidate
  // cache, then the deterministic-reservations engine runs SettleStep to
  // the fixed point. The arena resets ONCE here (the engine's retry queues
  // and the cached slices live across rounds; every earlier-phase span is
  // dead by now). The harvest keeps the three-stage prefetch pipeline:
  // header + record first, then (for still-free vertices only) the chain's
  // first chunk, then the first entries' slots and vertex rows, so each
  // scan starts primed instead of paying a cold dependent-miss ramp.
  void settle() {
    std::vector<VertexId>& pending = ws_.freed;
    if (pending.empty()) return;
    ws_.arena.reset();
    std::size_t np = pending.size();

    // Candidate-slice offsets: live_deg bounds each free vertex's harvest.
    ws_.cand_off.resize(np);
    ws_.cand_len.resize(np);
    charge_phases(3, np);  // bound fill + scan up/down sweeps
    std::span<std::size_t> off(ws_.cand_off.data(), np);
    parallel::parallel_for(0, np, [&](std::size_t i) {
      const auto& h = vh_[pending[i]];
      off[i] = h.taken_by == kInvalid ? h.live_deg : 0;
    });
    std::size_t total = prims::scan_exclusive(off, ws_.arena);
    if (ws_.cand_pool.size() < total) ws_.cand_pool.resize(total);

    charge_phase(np);
    std::size_t scanned_total = 0;
    auto peek_entry = [&](std::uint64_t entry) {
      pool_.prefetch_record(graph::EdgePool::ref_id(entry));
    };
    if (parallel::run_phase_seq(np)) {
      const bool sweep_all = np <= kSweepSmall;
      if (sweep_all) {
        for (std::size_t i = 0; i < np; ++i) prefetch_read(&vh_[pending[i]]);
        for (std::size_t i = 0; i < np; ++i)
          if (vh_[pending[i]].free()) adj_.prefetch_chain(vh_[pending[i]].adj);
        for (std::size_t i = 0; i < np; ++i)
          if (vh_[pending[i]].free())
            adj_.peek_prefix(vh_[pending[i]].adj,
                             graph::ChunkedAdjacency::kPeekAhead, peek_entry);
      }
      for (std::size_t i = 0; i < np; ++i) {
        if (!sweep_all) {
          if (i + kPrefetchAhead < np)
            prefetch_read(&vh_[pending[i + kPrefetchAhead]]);
          if (i + kPrefetchAhead / 2 < np) {
            const auto& f = vh_[pending[i + kPrefetchAhead / 2]];
            if (f.free()) adj_.prefetch_chain(f.adj);
          }
          if (i + 1 < np && vh_[pending[i + 1]].free())
            adj_.peek_prefix(vh_[pending[i + 1]].adj,
                             graph::ChunkedAdjacency::kPeekAhead, peek_entry);
        }
        VertexId v = pending[i];
        if (vh_[v].taken_by == kInvalid)
          scanned_total += harvest_candidates(i, v);
        else
          ws_.cand_len[i] = 0;
      }
    } else {
      std::size_t grain = parallel::default_grain(np);
      std::size_t blocks = (np + grain - 1) / grain;
      auto scn = ws_.arena.alloc<std::size_t>(blocks);
      std::fill(scn.begin(), scn.end(), std::size_t{0});
      parallel::parallel_for_blocked(
          0, np,
          [&](std::size_t b, std::size_t e) {
            std::size_t s = 0;
            for (std::size_t i = b; i < e; ++i) {
              if (i + kPrefetchAhead < e)
                prefetch_read(&vh_[pending[i + kPrefetchAhead]]);
              if (i + kPrefetchAhead / 2 < e) {
                const auto& f = vh_[pending[i + kPrefetchAhead / 2]];
                if (f.free()) adj_.prefetch_chain(f.adj);
              }
              if (i + 1 < e && vh_[pending[i + 1]].free())
                adj_.peek_prefix(vh_[pending[i + 1]].adj,
                                 graph::ChunkedAdjacency::kPeekAhead,
                                 peek_entry);
              VertexId v = pending[i];
              if (vh_[v].taken_by == kInvalid)
                s += harvest_candidates(i, v);
              else
                ws_.cand_len[i] = 0;
            }
            scn[b / grain] += s;
          },
          grain);
      for (std::size_t b = 0; b < blocks; ++b) scanned_total += scn[b];
    }
    stats_.work_units += scanned_total;

    auto choice = ws_.arena.alloc<EdgeId>(np);
    SettleStep step{*this, pending.data(), choice.data()};
    prims::SpecStats st = prims::speculative_for(step, 0, np, ws_.arena, 0,
                                                 &batch_.measured_depth);
    batch_.parallel_phases += prims::kSpecRoundPhases * st.rounds;
    stats_.settle_rounds += st.rounds;
    batch_.settle_rounds += st.rounds;
    stats_.spec_retries += st.retries;
    batch_.spec_retries += st.retries;
    stats_.work_units += step.work;
    pending.clear();
  }

  Config cfg_;
  graph::EdgePool pool_;
  // Independent keyed streams (parallel/rng_stream.h): insert priorities
  // by (batch epoch, slot), settle reservoir draws by (vertex, round),
  // resettle priorities by (edge, round). No shared sequential RNG state
  // survives anywhere in the batch path.
  parallel::RngStream insert_pri_;
  parallel::RngStream settle_draw_;
  parallel::RngStream settle_pri_;
  std::uint64_t insert_epoch_ = 0;  // insert batches seen
  std::uint64_t settle_epoch_ = 0;  // settle rounds seen, all batches
  CumulativeStats stats_;
  BatchStats batch_;
  BatchWorkspace ws_;
  std::vector<VertexId>* delta_sink_ = nullptr;  // serve-layer mirror hook

  std::vector<std::uint64_t> pri_;       // id -> current sample
  std::vector<EdgeHot> ehot_;            // id -> packed bloat + list state
  std::vector<matching::VertexHot> vh_;  // vertex -> packed hot record
  graph::ChunkedAdjacency adj_;             // vertex -> (gen, id) packed refs
  std::vector<EdgeId> matched_edges_;       // the matching, unordered
};

}  // namespace parmatch::dyn
