// dyn/dynamic_matcher.h -- the paper's parallel batch-dynamic maximal
// matching structure (Sections 4-5): O(1) amortized work per update at rank
// 2 (O(r^3) general, Theorem 1.1) against an oblivious adversary, with
// O(log^3 m) depth per batch whp.
//
// The structure maintains, per vertex, a lazily compacted incidence list,
// and per live edge a random priority (its "sample"). Invariant after every
// batch: the matched set is maximal. The three mechanisms that make the
// amortized bound work:
//
//  * randomSettle (Section 4): when deletions free the vertices of a
//    matched edge, each freed vertex samples a uniformly random free
//    incident edge and the sampled edges run one claim round of
//    random-priority greedy; losers resample next round. Because the new
//    match is uniform over ~d candidates, an oblivious adversary needs ~d
//    more deletions in the neighborhood before it hits it, which pays for
//    the O(d) rescan (Lemma 3.3's 2-coins-per-early-delete argument --
//    matching/price_audit.h replays the static version of the accounting).
//
//  * levels with gap alpha = Config::level_gap (Section 5): a match settled
//    when its neighborhood had size s gets level floor(log_alpha s), i.e.
//    the size is remembered only up to the gap. If inserts grow the
//    neighborhood past Config::heavy_factor * alpha^(level+1), the match is
//    "bloated": its sample is stale relative to the neighborhood, so it is
//    resettled (unmatched + resampled) to restore the randomness the
//    adversary argument needs. Config::light_only disables levels, bloat
//    tracking and resampling (footnote 8's "treat everything as light"
//    variant): still maximal, but settling becomes deterministic and the
//    adversarial benches show the work blowup.
//
//  * steal on insert: a batch-inserted edge whose priority beats the
//    priority of every matched edge on its taken vertices displaces them
//    (stats.stolen) and the freed vertices resettle. This keeps the
//    matching close to the greedy fixed point for the current samples, so
//    insertions cannot park adversarially useful edges behind stale
//    matches.
//
// Complexity contract per batch of k updates: expected O(k * r^3) amortized
// work, O(log^3 m) depth whp (settle rounds x greedy claim rounds x O(log)
// primitives); lazy incidence compaction charges each dead entry once to
// the deletion that killed it.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.h"
#include "graph/edge_batch.h"
#include "graph/edge_pool.h"
#include "dyn/stats.h"
#include "matching/parallel_greedy.h"
#include "prims/filter.h"
#include "util/rng.h"

namespace parmatch::dyn {

struct Config {
  std::uint64_t seed = 1;
  std::size_t max_rank = 2;      // r: maximum hyperedge rank accepted
  std::size_t level_gap = 2;     // alpha: geometric gap between levels
  std::size_t heavy_factor = 4;  // resettle when growth exceeds this times
                                 // the level-quantized settle size
  bool light_only = false;       // footnote-8 ablation: no levels/resampling
};

class DynamicMatcher {
  using EdgeId = graph::EdgeId;
  using VertexId = graph::VertexId;
  static constexpr EdgeId kInvalid = graph::kInvalidEdge;

 public:
  DynamicMatcher() : DynamicMatcher(Config{}) {}
  explicit DynamicMatcher(const Config& cfg)
      : cfg_(cfg), pool_(cfg.max_rank), rng_(cfg.seed ^ 0xA02B'DBF7'BB3C'0A7ull) {}

  // Inserts a batch; returns the id assigned to each edge, batch order.
  std::vector<EdgeId> insert_edges(const graph::EdgeBatch& batch) {
    batch_ = BatchStats{};
    auto ids = pool_.add_edges(batch);
    ensure_bounds();
    stats_.inserts += ids.size();
    stats_.work_units += batch.total_cardinality();

    std::vector<EdgeId> candidates;
    std::vector<VertexId> freed;
    std::vector<EdgeId> bloated;
    for (EdgeId id : ids) {
      pri_[id] = rng_.next();
      ++stats_.samples_created;
      bool all_free = true;
      for (VertexId v : pool_.vertices(id)) {
        adj_[v].push_back(pool_.packed_ref(id));
        ++live_deg_[v];
        EdgeId t = taken_by_[v];
        if (t == kInvalid) continue;
        all_free = false;
        // The neighborhood of match t grew; check the level bound.
        if (!cfg_.light_only && ++growth_[t] == threshold_[t] + 1)
          bloated.push_back(t);
      }
      if (all_free) {
        candidates.push_back(id);
        continue;
      }
      // Steal: this edge's sample beats every match it touches.
      bool steal = true;
      for (VertexId v : pool_.vertices(id)) {
        EdgeId t = taken_by_[v];
        if (t != kInvalid && t != id &&
            !matching::detail::beats(pri_[id], id, pri_[t], t))
          steal = false;
      }
      if (steal) {
        for (VertexId v : pool_.vertices(id)) {
          EdgeId t = taken_by_[v];
          if (t != kInvalid && t != id) unmatch(t, freed);
        }
        commit_match(id);
        ++stats_.stolen;
      }
    }
    for (EdgeId b : bloated) {
      if (taken_by_[pool_.vertices(b)[0]] != b) continue;  // already displaced
      ++stats_.bloated;
      // Resettle through the random-sampling path (not run_greedy with the
      // stale sample): the whole point is a fresh draw over the grown
      // neighborhood, so the freed vertices go through settle() below.
      unmatch(b, freed);
    }

    run_greedy(std::move(candidates));
    settle(std::move(freed));
    return ids;
  }

  // Deletes previously returned ids (each must be live).
  void delete_edges(const std::vector<EdgeId>& ids) {
    batch_ = BatchStats{};
    stats_.deletes += ids.size();
    std::vector<VertexId> freed;
    for (EdgeId id : ids) {
      if (!pool_.live(id)) continue;
      stats_.work_units += pool_.rank(id);
      if (taken_by_[pool_.vertices(id)[0]] == id) unmatch(id, freed);
      for (VertexId v : pool_.vertices(id)) --live_deg_[v];
      pool_.remove_edge(id);
    }
    settle(std::move(freed));
  }

  // The current matching (ascending ids). O(id_bound).
  std::vector<EdgeId> matching() const {
    std::vector<EdgeId> out;
    out.reserve(matched_count_);
    for (EdgeId id = 0; id < pool_.id_bound(); ++id)
      if (pool_.live(id) && taken_by_[pool_.vertices(id)[0]] == id)
        out.push_back(id);
    return out;
  }

  bool is_matched(EdgeId id) const {
    return pool_.live(id) && taken_by_[pool_.vertices(id)[0]] == id;
  }

  std::size_t matched_count() const { return matched_count_; }
  const graph::EdgePool& pool() const { return pool_; }
  const Config& config() const { return cfg_; }
  const CumulativeStats& cumulative_stats() const { return stats_; }
  const BatchStats& last_batch_stats() const { return batch_; }

 private:
  // ---- id/vertex array maintenance -------------------------------------

  void ensure_bounds() {
    std::size_t ib = pool_.id_bound();
    if (pri_.size() < ib) {
      pri_.resize(ib, 0);
      growth_.resize(ib, 0);
      threshold_.resize(ib, 0);
      settle_size_.resize(ib, 0);
    }
    std::size_t vb = pool_.vertex_bound();
    if (taken_by_.size() < vb) {
      taken_by_.resize(vb, kInvalid);
      min_edge_.resize(vb, kInvalid);
      live_deg_.resize(vb, 0);
      adj_.resize(vb);
    }
  }

  // ---- match bookkeeping ----------------------------------------------

  void commit_match(EdgeId e) {
    std::size_t nbhd = 0;
    for (VertexId v : pool_.vertices(e)) {
      taken_by_[v] = e;
      nbhd += live_deg_[v];
    }
    ++matched_count_;
    growth_[e] = 0;
    settle_size_[e] = static_cast<std::uint32_t>(nbhd);
    // Level quantization: remember the settle size only up to the gap.
    std::uint64_t gap = cfg_.level_gap < 2 ? 2 : cfg_.level_gap;
    std::uint64_t cap = gap;
    while (cap < nbhd) cap *= gap;
    threshold_[e] = cfg_.heavy_factor * cap;
  }

  void unmatch(EdgeId e, std::vector<VertexId>& freed) {
    for (VertexId v : pool_.vertices(e)) {
      if (taken_by_[v] == e) {
        taken_by_[v] = kInvalid;
        freed.push_back(v);
      }
    }
    --matched_count_;
  }

  bool all_endpoints_free(EdgeId e) const {
    for (VertexId v : pool_.vertices(e))
      if (taken_by_[v] != kInvalid) return false;
    return true;
  }

  // ---- greedy over a candidate set ------------------------------------

  void run_greedy(std::vector<EdgeId> candidates) {
    if (candidates.empty()) return;
    candidates = prims::filter(std::span<const EdgeId>(candidates),
                               [&](EdgeId e) { return all_endpoints_free(e); });
    if (candidates.empty()) return;
    std::vector<EdgeId> matched;
    std::size_t rounds = matching::greedy_match_rounds(
        pool_, std::move(candidates), [&](EdgeId e) { return pri_[e]; },
        taken_by_, min_edge_, &matched, &stats_.work_units);
    if (rounds > batch_.max_greedy_rounds) batch_.max_greedy_rounds = rounds;
    for (EdgeId e : matched) commit_match(e);
  }

  // ---- randomSettle (Section 4) ---------------------------------------

  // Compacts adj_[v] (each dead entry is dropped exactly once) and returns
  // one settle candidate: a uniformly random free incident edge (or the
  // minimum-priority one under light_only). work_units charges the scan.
  EdgeId sample_candidate(VertexId v) {
    auto& list = adj_[v];
    std::size_t kept = 0, seen = 0;
    EdgeId pick = kInvalid;
    for (std::size_t i = 0; i < list.size(); ++i) {
      std::uint64_t entry = list[i];
      if (!pool_.ref_valid(entry)) continue;  // stale: compact it away
      list[kept++] = entry;
      EdgeId e = graph::EdgePool::ref_id(entry);
      if (!all_endpoints_free(e)) continue;
      ++seen;
      if (cfg_.light_only) {
        if (pick == kInvalid ||
            matching::detail::beats(pri_[e], e, pri_[pick], pick))
          pick = e;
      } else if (rng_.next_below(seen) == 0) {
        pick = e;
      }
    }
    stats_.work_units += list.size();
    list.resize(kept);
    return pick;
  }

  void settle(std::vector<VertexId> freed) {
    if (freed.empty()) return;
    for (;;) {
      // Pending: still-free vertices from the freed set.
      std::vector<EdgeId> sampled;
      std::vector<VertexId> still_pending;
      for (VertexId v : freed) {
        if (taken_by_[v] != kInvalid) continue;
        EdgeId c = sample_candidate(v);
        if (c == kInvalid) continue;  // no free incident edge: settled free
        still_pending.push_back(v);
        if (!cfg_.light_only) {
          pri_[c] = rng_.next();  // fresh sample (the lazy machinery's coin)
          ++stats_.samples_created;
        }
        sampled.push_back(c);
      }
      if (sampled.empty()) return;
      // Two freed vertices may sample the same edge; run it once.
      std::sort(sampled.begin(), sampled.end());
      sampled.erase(std::unique(sampled.begin(), sampled.end()),
                    sampled.end());
      ++stats_.settle_rounds;
      ++batch_.settle_rounds;
      run_greedy(std::move(sampled));
      freed = std::move(still_pending);
    }
  }

  Config cfg_;
  graph::EdgePool pool_;
  Rng rng_;
  CumulativeStats stats_;
  BatchStats batch_;

  std::vector<std::uint64_t> pri_;          // id -> current sample
  std::vector<std::uint32_t> growth_;       // id -> inserts since settle
  std::vector<std::uint64_t> threshold_;    // id -> bloat threshold
  std::vector<std::uint32_t> settle_size_;  // id -> neighborhood @ settle
  std::vector<EdgeId> taken_by_;            // vertex -> its match
  std::vector<EdgeId> min_edge_;            // vertex scratch for claiming
  std::vector<std::uint32_t> live_deg_;     // vertex -> live incident edges
  std::vector<std::vector<std::uint64_t>> adj_;  // vertex -> (gen, id) packed
  std::size_t matched_count_ = 0;
};

}  // namespace parmatch::dyn
