// serve/batch_former.h -- turns the asynchronous update stream into the
// EdgeBatches the matcher consumes (DESIGN.md S12). The drain loop pops
// requests from the MPSC queue (serve/update_queue.h) into a *window*; the
// former decides when the window flushes and resolves conflicts inside it
// before it becomes a matcher batch.
//
// Flush policy -- the first criterion that holds wins:
//   * max batch:   the window reached FormerConfig::max_batch
//     (PARMATCH_MAX_BATCH). Hard cap on apply latency and workspace size.
//   * cost model:  the window reached parallel::parallel_break_even() --
//     the phase size where the fork/join path is predicted to beat inline
//     execution. Past that point batching buys no more per-update
//     throughput, so holding the window only adds latency. 0 (1-worker
//     pool or forced-sequential mode) disables this criterion.
//   * deadline:    the OLDEST request in the window has waited
//     FormerConfig::max_delay_us (PARMATCH_MAX_DELAY_US) since its
//     *enqueue* instant -- queue wait counts against the deadline, not
//     just window wait. While the drain keeps backlog under one window,
//     ingest-to-commit latency is therefore bounded by max_delay plus the
//     in-flight apply plus the request's own apply. Under sustained
//     overload (backlog of B > max_batch requests) no deadline can help:
//     a request waits ~B/max_batch window applies, i.e. backlog-drain
//     time, until the ring fills and backpressure pushes the overload
//     back into the producers (E12's unpaced row shows exactly this
//     regime).
//
// Conflict window semantics (form()): within one window,
//   * an insert and a delete of the SAME ticket annihilate -- the edge
//     would be born and revoked inside one matcher batch, so neither side
//     reaches the matcher (both still count as committed for latency).
//     FIFO ingestion guarantees a delete never precedes its insert.
//   * duplicate deletes of one ticket collapse to the first occurrence.
//   * with an admit budget set (PARMATCH_ADMIT_BUDGET_US), inserts older
//     than the budget at form time are shed as stale (annihilation wins
//     over staleness; deletes are never shed) -- see FormerConfig.
//   * surviving inserts keep arrival order; ticket -> id mapping is the
//     service's job (the former never talks to the matcher).
//
// Complexity contract: add() is O(1) amortized; form() is O(w log w) in the
// window size w (two sorts over reused scratch). All buffers keep their
// capacity across windows, so a steady-state former does not allocate.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <span>
#include <vector>

#include "graph/edge_batch.h"
#include "parallel/cost_model.h"
#include "serve/update_queue.h"

namespace parmatch::serve {

struct FormerConfig {
  std::size_t max_batch = 8192;    // hard window cap (PARMATCH_MAX_BATCH)
  std::uint64_t max_delay_us = 200;  // oldest-request deadline
                                     // (PARMATCH_MAX_DELAY_US)
  // Cost-model flush size; 0 = derive from parallel::parallel_break_even()
  // at construction (the calibrated fork/join crossover).
  std::size_t cost_flush = 0;
  // Deadline-aware admission budget (PARMATCH_ADMIT_BUDGET_US): an insert
  // that has already waited longer than this when its window forms is shed
  // as stale instead of applied -- under backlog its commit would land far
  // past any SLO, so applying it only delays fresher work. 0 disables
  // (default: every admitted insert is applied no matter how late).
  // Deletes are exempt -- revocations must land regardless of age
  // (serve/admission.h's never-shed-deletes rule).
  std::uint64_t admit_budget_us = 0;

  // Env-var overrides, applied on top of the field defaults.
  static FormerConfig from_env() {
    FormerConfig c;
    if (const char* e = std::getenv("PARMATCH_MAX_BATCH"))
      c.max_batch = std::strtoull(e, nullptr, 10);
    if (c.max_batch == 0) c.max_batch = 1;
    if (const char* e = std::getenv("PARMATCH_MAX_DELAY_US"))
      c.max_delay_us = std::strtoull(e, nullptr, 10);
    if (const char* e = std::getenv("PARMATCH_ADMIT_BUDGET_US"))
      c.admit_budget_us = std::strtoull(e, nullptr, 10);
    return c;
  }
};

// Why a window flushed (ServiceStats histograms these).
enum class FlushReason { kFull, kCostModel, kDeadline, kDrain };

// One conflict-resolved window, ready for the matcher. `inserts` and the
// per-insert arrays are index-aligned; absorbed_enqueue_ns carries the
// enqueue stamps of annihilated/deduplicated requests, which commit
// trivially at flush time and still count toward latency accounting.
struct FormedBatch {
  graph::EdgeBatch inserts;
  std::vector<std::uint64_t> insert_tickets;
  std::vector<std::uint64_t> insert_enqueue_ns;
  std::vector<std::uint8_t> insert_lanes;
  std::vector<std::uint64_t> delete_tickets;
  std::vector<std::uint64_t> delete_enqueue_ns;
  std::vector<std::uint8_t> delete_lanes;
  std::vector<std::uint64_t> absorbed_enqueue_ns;
  std::vector<std::uint8_t> absorbed_lanes;
  std::size_t raw_requests = 0;  // window size before conflict resolution
  std::size_t annihilated = 0;   // insert+delete pairs absorbed
  std::size_t deduped = 0;       // duplicate deletes collapsed
  std::size_t shed_stale = 0;    // inserts shed by the admit budget
  // Per-priority-lane breakdown of this window (ServiceStats aggregates).
  std::array<std::uint32_t, kMaxLanes> lane_requests = {};
  std::array<std::uint32_t, kMaxLanes> lane_stale = {};

  std::size_t update_count() const {
    return inserts.size() + delete_tickets.size();
  }

  void clear() {
    inserts.clear();
    insert_tickets.clear();
    insert_enqueue_ns.clear();
    insert_lanes.clear();
    delete_tickets.clear();
    delete_enqueue_ns.clear();
    delete_lanes.clear();
    absorbed_enqueue_ns.clear();
    absorbed_lanes.clear();
    raw_requests = 0;
    annihilated = 0;
    deduped = 0;
    shed_stale = 0;
    lane_requests.fill(0);
    lane_stale.fill(0);
  }
};

class BatchFormer {
 public:
  explicit BatchFormer(const FormerConfig& cfg) : cfg_(cfg) {
    if (cfg_.cost_flush == 0) {
      std::size_t be = parallel::parallel_break_even();
      cfg_.cost_flush = be == 0 ? kNever : be;
    }
    if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  }

  const FormerConfig& config() const { return cfg_; }

  bool empty() const { return window_.empty(); }
  std::size_t window_size() const { return window_.size(); }
  bool window_full() const { return window_.size() >= cfg_.max_batch; }

  void add(const UpdateRequest& r) {
    if (window_.empty() || r.t_enqueue_ns < oldest_ns_)
      oldest_ns_ = r.t_enqueue_ns;
    window_.push_back(r);
  }

  // The flush decision for the current window at steady-clock instant
  // `now_ns`; `why` reports the first criterion that held.
  bool should_flush(std::uint64_t now_ns, FlushReason* why = nullptr) const {
    if (window_.empty()) return false;
    if (window_.size() >= cfg_.max_batch) {
      if (why) *why = FlushReason::kFull;
      return true;
    }
    if (window_.size() >= cfg_.cost_flush) {
      if (why) *why = FlushReason::kCostModel;
      return true;
    }
    if (now_ns - oldest_ns_ >= cfg_.max_delay_us * 1000ull) {
      if (why) *why = FlushReason::kDeadline;
      return true;
    }
    return false;
  }

  // Conflict-resolves the window into `out` (cleared first) and resets the
  // window. Deterministic in the window contents plus `now_ns`: the
  // steady-clock form instant drives the admit-budget staleness check
  // (0 = skip staleness, used by callers with the budget disabled).
  void form(FormedBatch& out, std::uint64_t now_ns = 0) {
    out.clear();
    out.raw_requests = window_.size();
    if (window_.empty()) return;
    for (const UpdateRequest& r : window_)
      ++out.lane_requests[r.lane < kMaxLanes ? r.lane : kMaxLanes - 1];

    // Tickets deleted in this window, sorted; duplicates collapse here.
    scratch_del_.clear();
    for (const UpdateRequest& r : window_)
      if (!r.is_insert()) scratch_del_.push_back(r.ticket);
    std::sort(scratch_del_.begin(), scratch_del_.end());

    // Inserts whose ticket is also deleted in-window annihilate; the
    // matching deletes are consumed with them. Annihilation is checked
    // BEFORE staleness: a stale insert whose delete is already here
    // absorbs normally (cheaper and equivalent -- the pair is a no-op
    // either way, and shedding it would orphan the delete).
    std::uint64_t stale_before =
        cfg_.admit_budget_us != 0 && now_ns > cfg_.admit_budget_us * 1000ull
            ? now_ns - cfg_.admit_budget_us * 1000ull
            : 0;
    scratch_gone_.clear();
    for (const UpdateRequest& r : window_) {
      if (!r.is_insert()) continue;
      if (std::binary_search(scratch_del_.begin(), scratch_del_.end(),
                             r.ticket)) {
        scratch_gone_.push_back(r.ticket);
        ++out.annihilated;
        out.absorbed_enqueue_ns.push_back(r.t_enqueue_ns);
        out.absorbed_lanes.push_back(r.lane);
        continue;
      }
      if (stale_before != 0 && r.t_enqueue_ns < stale_before) {
        // Shed stale: past its admission budget before the window even
        // formed. Not stamped into any latency series (it never commits);
        // its eventual delete will miss in the ticket table and count as
        // a dropped delete -- the tolerated revoke-of-unknown path.
        ++out.shed_stale;
        ++out.lane_stale[r.lane < kMaxLanes ? r.lane : kMaxLanes - 1];
        continue;
      }
      out.inserts.add(std::span<const graph::VertexId>(r.v, r.rank));
      out.insert_tickets.push_back(r.ticket);
      out.insert_enqueue_ns.push_back(r.t_enqueue_ns);
      out.insert_lanes.push_back(r.lane);
    }
    std::sort(scratch_gone_.begin(), scratch_gone_.end());

    // Surviving deletes: first occurrence of each not-annihilated ticket.
    // An annihilated pair's delete is absorbed with its insert (stamped,
    // not counted as a duplicate); repeated deletes of a surviving ticket
    // collapse onto the first occurrence. First-occurrence is tracked with
    // an emitted flag per UNIQUE deleted ticket (scratch_del_ is already
    // sorted), keeping form() within its O(w log w) contract.
    uniq_del_.clear();
    for (std::size_t i = 0; i < scratch_del_.size(); ++i)
      if (i == 0 || scratch_del_[i] != scratch_del_[i - 1])
        uniq_del_.push_back(scratch_del_[i]);
    emitted_.assign(uniq_del_.size(), 0);
    for (const UpdateRequest& r : window_) {
      if (r.is_insert()) continue;
      if (std::binary_search(scratch_gone_.begin(), scratch_gone_.end(),
                             r.ticket)) {
        out.absorbed_enqueue_ns.push_back(r.t_enqueue_ns);
        out.absorbed_lanes.push_back(r.lane);
        continue;
      }
      std::size_t slot = static_cast<std::size_t>(
          std::lower_bound(uniq_del_.begin(), uniq_del_.end(), r.ticket) -
          uniq_del_.begin());
      if (emitted_[slot]) {
        ++out.deduped;
        out.absorbed_enqueue_ns.push_back(r.t_enqueue_ns);
        out.absorbed_lanes.push_back(r.lane);
        continue;
      }
      emitted_[slot] = 1;
      out.delete_tickets.push_back(r.ticket);
      out.delete_enqueue_ns.push_back(r.t_enqueue_ns);
      out.delete_lanes.push_back(r.lane);
    }
    window_.clear();
    oldest_ns_ = std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::size_t kNever =
      std::numeric_limits<std::size_t>::max();

  FormerConfig cfg_;
  std::vector<UpdateRequest> window_;
  std::uint64_t oldest_ns_ = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> scratch_del_;   // all deleted tickets, sorted
  std::vector<std::uint64_t> scratch_gone_;  // annihilated tickets, sorted
  std::vector<std::uint64_t> uniq_del_;      // unique deleted tickets, sorted
  std::vector<std::uint8_t> emitted_;        // per-uniq first-occurrence flag
};

}  // namespace parmatch::serve
