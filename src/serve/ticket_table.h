// serve/ticket_table.h -- the ticket -> live-edge-id map of the serving
// front-end (DESIGN.md S12). Producers get a TICKET back from
// submit_insert (pool ids are only assigned when the batch applies); the
// drain pipeline's matcher stage resolves deletes through this table and
// tests inspect it through MatchService::edge_of_ticket.
//
// This replaces the PR 5 dense vector indexed by ticket, which grew one
// word per insert EVER submitted -- unbounded for a long-lived service
// (the ROADMAP ticket-recycling item). The table is a tombstoned
// open-addressing map: memory tracks the LIVE ticket count, not the
// stream length. A delete tombstones its slot; when live + tombstones
// reach half the capacity the table rehashes to a size chosen from the
// live count alone, which both reclaims every tombstone and shrinks after
// churn spikes. Long-lived steady churn therefore cycles inside one fixed
// allocation (asserted by the recycling tests in tests/test_serve.cpp).
//
// Single-owner structure: exactly one thread (the serial drain thread, or
// the pipeline's matcher stage) mutates it; idle-time readers follow the
// same safety rule as MatchService::matcher(). Tickets are unique (an
// atomic counter) and never reused, so put() never sees a duplicate key.
//
// Complexity contract: put / take / find are expected O(1) at the
// maintained load factor (<= 1/2 live+tombs); rehash is O(capacity),
// amortized O(1) per operation by the usual doubling/halving argument.
// Capacity is bounded by O(max simultaneous live tickets), never by
// stream length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "graph/edge.h"
#include "util/rng.h"

namespace parmatch::serve {

class TicketTable {
 public:
  TicketTable() { allocate(kMinCap); }

  std::size_t capacity() const { return cap_; }
  std::size_t live() const { return live_; }

  // Maps a freshly applied insert's ticket to its pool id. Tickets are
  // unique by construction (monotone counter), so this is always a fresh
  // key.
  void put(std::uint64_t ticket, graph::EdgeId id) {
    if ((live_ + tombs_ + 1) * 2 > cap_) rehash(live_ + 1);
    std::size_t i = probe_insert(ticket);
    keys_[i] = ticket;
    vals_[i] = id;
    ++live_;
  }

  // Resolves and removes a ticket: returns its live edge id, or
  // kInvalidEdge when the ticket was never applied or already deleted
  // (the caller counts those as dropped deletes).
  graph::EdgeId take(std::uint64_t ticket) {
    std::size_t i;
    if (!probe_find(ticket, &i)) return graph::kInvalidEdge;
    graph::EdgeId id = vals_[i];
    keys_[i] = kTomb;
    --live_;
    ++tombs_;
    return id;
  }

  // Read-only lookup (MatchService::edge_of_ticket).
  graph::EdgeId find(std::uint64_t ticket) const {
    std::size_t i;
    return probe_find(ticket, &i) ? vals_[i] : graph::kInvalidEdge;
  }

  // Read-only visit of every live (ticket, edge id) pair, in probe-table
  // order (callers needing a canonical order sort by ticket). Used by the
  // checkpoint exporter and the recovery fingerprint (DESIGN.md S14) --
  // probe layout is an implementation detail and deliberately NOT part of
  // the serialized state; content equality is the durable contract.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < cap_; ++i)
      if (keys_[i] != kEmpty && keys_[i] != kTomb) f(keys_[i], vals_[i]);
  }

 private:
  static constexpr std::size_t kMinCap = 64;  // power of two
  static constexpr std::uint64_t kEmpty = ~0ull;
  static constexpr std::uint64_t kTomb = ~0ull - 1;

  std::size_t slot(std::uint64_t ticket) const {
    return static_cast<std::size_t>(hash64(ticket, 0x7454'1C37u)) & mask_;
  }

  // First free (empty or tombstone) slot for a key known to be absent.
  std::size_t probe_insert(std::uint64_t ticket) const {
    std::size_t i = slot(ticket);
    while (keys_[i] != kEmpty && keys_[i] != kTomb) i = (i + 1) & mask_;
    return i;
  }

  bool probe_find(std::uint64_t ticket, std::size_t* out) const {
    std::size_t i = slot(ticket);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == ticket) {
        *out = i;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void allocate(std::size_t cap) {
    cap_ = cap;
    mask_ = cap - 1;
    keys_ = std::make_unique<std::uint64_t[]>(cap);
    vals_ = std::make_unique<graph::EdgeId[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) keys_[i] = kEmpty;
    tombs_ = 0;
  }

  // Rebuilds at a capacity derived from the live count alone (4x head
  // room, so the next rehash is at least a doubling's worth of operations
  // away in either direction). Grows, shrinks, and clears tombstones with
  // the same code path.
  void rehash(std::size_t live_target) {
    std::size_t want = kMinCap;
    while (want < live_target * 4) want <<= 1;
    auto old_keys = std::move(keys_);
    auto old_vals = std::move(vals_);
    std::size_t old_cap = cap_;
    allocate(want);
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_keys[i] == kEmpty || old_keys[i] == kTomb) continue;
      std::size_t j = probe_insert(old_keys[i]);
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::unique_ptr<std::uint64_t[]> keys_;
  std::unique_ptr<graph::EdgeId[]> vals_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace parmatch::serve
