// serve/journal.h -- the write-ahead batch journal of the durable serving
// layer (DESIGN.md S14). The matcher stage appends one record per
// COMMITTED window -- the post-shed, post-annihilation edge ops that
// actually reached the matcher, plus the window's sequence number and the
// matcher's post-apply RNG epochs -- and the publisher stage decides when
// those bytes become durable. Because the record is built from the
// FormedBatch, sheds never enter the journal by construction: a request
// rejected at admission, evicted by drop-oldest, or shed stale by the
// former was filtered before the batch formed, so recovery can never
// resurrect work the live service refused.
//
// Durability policy (PARMATCH_JOURNAL):
//   off     no journal: no appends, no recovery -- the pre-S14 service.
//   async   appends ride the page cache; MatchService runs a dedicated
//           background syncer thread that issues one fdatasync per
//           PARMATCH_FSYNC_EVERY_US microseconds (group commit on a
//           timer, entirely off the drain's critical path). Crash loses
//           at most the unsynced suffix -- bounded, non-zero data loss
//           for near-zero overhead.
//   commit  a window's completion accounting waits until its record is
//           durable: the publisher calls ensure_durable(seqno) before
//           stamping the commit time. Group commit still applies: ONE
//           fdatasync covers every record appended since the last one
//           (the publisher runs behind the matcher, so under load a
//           single sync typically retires several windows), but nothing
//           is acknowledged ahead of the device.
//
// Threading: the matcher stage appends (append_window); syncs come from
// exactly one other thread per policy -- the publisher's ensure_durable
// barrier under commit, MatchService's background syncer under async --
// plus the stop path's sync_all after every worker joined. POSIX
// write/fdatasync on one fd are thread-safe; the appended/durable
// watermarks are atomics. In the serial drain append and commit-barrier
// run on the same thread and the contract degenerates safely.
//
// Record payload, little-endian u64 words (framed + checksummed by
// util/io/record_log.h):
//   [seqno][insert_epoch][settle_epoch][n_ins][n_del]
//   per insert: [ticket][rank][vertex] * rank
//   per delete: [ticket]
// The epochs are the matcher's POST-apply counters -- pure redundancy, a
// per-record cross-check that replay really did land in the bit-identical
// state (the keyed RNG streams make the epoch counters the entire RNG
// position; DESIGN.md S2).
//
// Fault injection: each append consults FaultInjector::journal_append_fault
// (crash-at-Nth-append, torn tail, post-CRC byte flip -- all no-ops unless
// -DPARMATCH_FAULT_INJECT=ON and the PARMATCH_FI_* knob is set); a planned
// crash SIGKILLs AFTER the (possibly torn) bytes are written, which is
// exactly the torn-write state RecordWriter::open truncates away.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/edge_batch.h"
#include "serve/batch_former.h"
#include "serve/fault_inject.h"
#include "util/io/record_log.h"

namespace parmatch::serve {

enum class JournalPolicy { kOff, kAsync, kCommit };

struct JournalConfig {
  JournalPolicy policy = JournalPolicy::kOff;
  std::string dir;  // journal + checkpoint directory; empty = disabled
  // Async group-commit cadence: at most one fdatasync per this many
  // microseconds (PARMATCH_FSYNC_EVERY_US). Ignored by commit (every
  // completion waits) and off.
  std::uint64_t fsync_every_us = 5000;
  // Checkpoint every N journaled windows (PARMATCH_CKPT_EVERY); 0 keeps
  // journaling without checkpoints (recovery replays the whole log).
  std::uint64_t ckpt_every = 256;

  bool enabled() const { return policy != JournalPolicy::kOff && !dir.empty(); }

  static JournalConfig from_env() {
    JournalConfig c;
    if (const char* e = std::getenv("PARMATCH_JOURNAL")) {
      if (std::strcmp(e, "async") == 0) c.policy = JournalPolicy::kAsync;
      else if (std::strcmp(e, "commit") == 0) c.policy = JournalPolicy::kCommit;
      else c.policy = JournalPolicy::kOff;  // "off" and anything unknown
    }
    if (const char* e = std::getenv("PARMATCH_JOURNAL_DIR")) c.dir = e;
    if (const char* e = std::getenv("PARMATCH_FSYNC_EVERY_US"))
      c.fsync_every_us = std::strtoull(e, nullptr, 10);
    if (const char* e = std::getenv("PARMATCH_CKPT_EVERY"))
      c.ckpt_every = std::strtoull(e, nullptr, 10);
    return c;
  }
};

inline std::string journal_path(const std::string& dir) {
  return dir + "/wal.log";
}

// One decoded journal record (the replay side's view).
struct JournalRecord {
  std::uint64_t seqno = 0;
  std::uint64_t insert_epoch = 0;  // matcher epochs AFTER this window
  std::uint64_t settle_epoch = 0;
  graph::EdgeBatch inserts;
  std::vector<std::uint64_t> insert_tickets;  // aligned with inserts
  std::vector<std::uint64_t> delete_tickets;
};

class Journal {
 public:
  // Opens (and heals: truncate-to-last-valid-record) <dir>/wal.log for
  // appending. The same log survives across service lifetimes -- seqnos
  // keep climbing and recovery filters by checkpoint seqno -- so open
  // never truncates valid history.
  bool open(const JournalConfig& cfg) {
    cfg_ = cfg;
    if (!cfg_.enabled()) return true;
    return writer_.open(journal_path(cfg_.dir));
  }

  const JournalConfig& config() const { return cfg_; }
  bool active() const { return writer_.is_open(); }

  // Matcher-stage append of one committed window. Only windows with
  // update_count() != 0 are worth a record (an all-absorbed window leaves
  // no matcher state behind; replay re-derives nothing from it).
  // `insert_epoch`/`settle_epoch` are the matcher's post-apply counters.
  // Returns false on I/O error (the service keeps running; durability is
  // degraded, not correctness).
  bool append_window(const FormedBatch& f, std::uint64_t seqno,
                     std::uint64_t insert_epoch, std::uint64_t settle_epoch,
                     FaultInjector& fi) {
    if (!writer_.is_open()) return false;
    buf_.clear();
    buf_.push_back(seqno);
    buf_.push_back(insert_epoch);
    buf_.push_back(settle_epoch);
    buf_.push_back(f.inserts.size());
    buf_.push_back(f.delete_tickets.size());
    for (std::size_t i = 0; i < f.inserts.size(); ++i) {
      auto vs = f.inserts.edge(i);
      buf_.push_back(f.insert_tickets[i]);
      buf_.push_back(vs.size());
      for (graph::VertexId v : vs) buf_.push_back(v);
    }
    for (std::uint64_t t : f.delete_tickets) buf_.push_back(t);

    JournalFaultPlan plan = fi.journal_append_fault();
    util::io::AppendFault fault;
    fault.flip_byte = plan.flip_byte;
    fault.torn_after = plan.torn_after;
    bool have_fault = plan.flip_byte >= 0 || plan.torn_after >= 0;
    bool ok = writer_.append(buf_.data(), buf_.size() * sizeof(std::uint64_t),
                             have_fault ? &fault : nullptr);
    if (plan.crash_after) fi.crash_now(plan.torn_after >= 0);  // no return
    if (ok) appended_seq_.store(seqno, std::memory_order_release);
    return ok;
  }

  // Publisher-stage commit barrier (policy kCommit): returns once every
  // record up to `seqno` is durable. Group commit: one fdatasync covers
  // the whole appended prefix, so consecutive windows usually find their
  // records already durable.
  void ensure_durable(std::uint64_t seqno) {
    if (cfg_.policy != JournalPolicy::kCommit || !writer_.is_open()) return;
    if (durable_seq_.load(std::memory_order_acquire) >= seqno) return;
    sync_now();
  }

  // Final barrier at service stop: everything appended becomes durable
  // regardless of policy (a clean shutdown should never lose acked work).
  void sync_all() {
    if (writer_.is_open()) sync_now();
  }

  std::uint64_t appended_seq() const {
    return appended_seq_.load(std::memory_order_acquire);
  }
  std::uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  std::uint64_t syncs() const { return syncs_; }
  std::uint64_t bytes() const { return writer_.bytes(); }
  std::uint64_t records() const { return writer_.records(); }
  std::uint64_t truncated_bytes() const { return writer_.truncated_bytes(); }

 private:
  void sync_now() {
    // Load the appended watermark BEFORE the fdatasync: the sync covers at
    // least everything appended before it was issued.
    std::uint64_t covered = appended_seq_.load(std::memory_order_acquire);
    if (writer_.sync()) {
      ++syncs_;
      // Monotone max: the matcher may have appended (and a concurrent
      // barrier published) past `covered` meanwhile.
      std::uint64_t cur = durable_seq_.load(std::memory_order_relaxed);
      while (cur < covered && !durable_seq_.compare_exchange_weak(
                                  cur, covered, std::memory_order_acq_rel)) {
      }
    }
  }

  JournalConfig cfg_;
  util::io::RecordWriter writer_;
  std::vector<std::uint64_t> buf_;
  std::atomic<std::uint64_t> appended_seq_{0};
  std::atomic<std::uint64_t> durable_seq_{0};
  // Written only by whichever single thread syncs in the active policy
  // (publisher barrier under commit, MatchService's background syncer
  // under async) plus the stop-path sync_all after those threads joined;
  // read only after stop(). Never concurrent, so plain u64 is fine.
  std::uint64_t syncs_ = 0;
};

// Sequential decoder over <dir>/wal.log. next() yields records until the
// first torn/corrupt frame or end of log; malformed payloads inside a
// checksum-valid frame (impossible without a logic bug, but cheap to
// reject) also terminate.
class JournalReplay {
 public:
  explicit JournalReplay(const std::string& dir) {
    reader_.open(journal_path(dir));
  }

  bool next(JournalRecord& rec) {
    if (!reader_.next(raw_)) return false;
    if (raw_.size() % sizeof(std::uint64_t) != 0) return false;
    std::size_t n = raw_.size() / sizeof(std::uint64_t);
    const std::uint64_t* w =
        reinterpret_cast<const std::uint64_t*>(raw_.data());
    std::size_t p = 0;
    auto need = [&](std::uint64_t k) { return n - p >= k; };
    if (!need(5)) return false;
    rec.seqno = w[p++];
    rec.insert_epoch = w[p++];
    rec.settle_epoch = w[p++];
    std::uint64_t n_ins = w[p++];
    std::uint64_t n_del = w[p++];
    rec.inserts.clear();
    rec.insert_tickets.clear();
    rec.delete_tickets.clear();
    for (std::uint64_t i = 0; i < n_ins; ++i) {
      if (!need(2)) return false;
      std::uint64_t ticket = w[p++];
      std::uint64_t rank = w[p++];
      if (rank == 0 || rank > 255 || !need(rank)) return false;
      vs_.clear();
      for (std::uint64_t j = 0; j < rank; ++j)
        vs_.push_back(static_cast<graph::VertexId>(w[p++]));
      rec.inserts.add(std::span<const graph::VertexId>(vs_));
      rec.insert_tickets.push_back(ticket);
    }
    if (!need(n_del)) return false;
    for (std::uint64_t i = 0; i < n_del; ++i)
      rec.delete_tickets.push_back(w[p++]);
    return p == n;
  }

 private:
  util::io::RecordReader reader_;
  std::vector<unsigned char> raw_;
  std::vector<graph::VertexId> vs_;
};

}  // namespace parmatch::serve
