// serve/admission.h -- admission control and overload protection for the
// serving front-end (DESIGN.md S13). The constant-work-per-update bound
// only reaches users if the layer in front of the matcher survives
// traffic that exceeds it: before this layer, a full ingestion ring just
// made producers spin forever, so sustained overload meant unbounded
// producer stall with no per-class latency story and no measured
// degradation mode. This header turns the full-ring condition into a
// policy decision (PARMATCH_SHED):
//
//   PARMATCH_SHED=none        (default) legacy backpressure: producers
//                             block (bounded exponential backoff) until
//                             space frees. Nothing is ever shed.
//   PARMATCH_SHED=reject-new  a full lane sheds the NEW insert at the
//                             door: submit returns kShed immediately and
//                             the producer learns synchronously. Keeps
//                             queue wait -- and therefore admitted-request
//                             latency -- bounded by the lane depth.
//   PARMATCH_SHED=drop-oldest a full lane admits the new insert and the
//                             drain sheds the OLDEST queued insert
//                             instead (freshness wins over seniority --
//                             the policy for feeds where a stale update
//                             is worthless). Implemented with eviction
//                             credits: the producer bumps the lane's
//                             credit and blocks briefly; the single
//                             consumer redeems credits by popping and
//                             shedding head-of-lane inserts, preserving
//                             the ring's single-consumer discipline.
//
// Deletes are NEVER shed by any policy: a revocation frees structure
// memory, and shedding it would leak the edge for the lifetime of the
// service. Deletes block under backpressure instead (and an evicted pop
// that lands on a delete is delivered onward, not shed).
//
// Priority lanes: 1..kMaxLanes bounded rings (lane 0 highest priority),
// routed by UpdateRequest::lane, drained weighted-high-first -- the
// consumer serves the highest-priority non-empty lane, except every
// `drain_weight`-th pop is offered to the lowest-priority non-empty lane
// first, so lower classes collectively keep >= 1/drain_weight of the
// drain bandwidth under saturation (no starvation). FIFO holds per lane;
// an insert and its delete must therefore use the same lane (the service
// API threads the lane through submit_delete for exactly this reason).
//
// Shed accounting is exactly conservative and the overload bench gates on
// it: every offered request is counted at submit (per lane), and each one
// terminates in exactly one of {applied through a window, absorbed
// in-window, shed at admission, shed by eviction, shed stale at form
// time}. offered == accepted + shed and accepted == applied, where
// "applied" includes absorbed conflict-window pairs and dropped dead
// tickets (they were processed, not shed).
//
// Complexity contract: admit() is O(1) plus policy backoff; try_pop() is
// O(lanes) per call; counters are relaxed atomics. All memory is
// allocated at construction (lane rings never grow).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "serve/fault_inject.h"
#include "serve/update_queue.h"

namespace parmatch::serve {

enum class ShedPolicy { kNone, kRejectNew, kDropOldest };

// Producer-side submit outcome -- the typed contract replacing the ad-hoc
// try_push spin loops (DESIGN.md S13). kTimedOut only occurs when the
// caller passed a deadline to push_with_backoff.
enum class PushResult { kAccepted, kShed, kTimedOut };

// The service's degradation state machine (ARCHITECTURE.md walkthrough):
//   kHealthy    backlog under half the admission capacity, no recent shed
//   kBacklogged backlog at or above half capacity -- latency is absorbing
//               the excess, nothing lost yet
//   kShedding   a shed occurred recently (admission reject, eviction, or
//               stale drop); decays back after kSheddingHoldNs quiet
// Transitions are evaluated by the drain (former) loop, published through
// an atomic, readable from any thread at any time.
enum class OverloadState { kHealthy, kBacklogged, kShedding };

inline const char* overload_state_name(OverloadState s) {
  switch (s) {
    case OverloadState::kHealthy: return "healthy";
    case OverloadState::kBacklogged: return "backlogged";
    default: return "shedding";
  }
}

inline const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropOldest: return "drop-oldest";
    default: return "none";
  }
}

struct AdmissionConfig {
  ShedPolicy policy = ShedPolicy::kNone;
  std::size_t lanes = 1;             // 1..kMaxLanes, lane 0 highest priority
  std::size_t lane_capacity = 0;     // 0 = take ServiceConfig::queue_capacity
  std::size_t drain_weight = 8;      // high-lane pops per low-lane offer

  // Env-var overrides: PARMATCH_SHED=reject-new|drop-oldest|none,
  // PARMATCH_LANES=1..4, PARMATCH_LANE_WEIGHT=N.
  static AdmissionConfig from_env() {
    AdmissionConfig c;
    if (const char* e = std::getenv("PARMATCH_SHED")) {
      if (std::strcmp(e, "reject-new") == 0)
        c.policy = ShedPolicy::kRejectNew;
      else if (std::strcmp(e, "drop-oldest") == 0)
        c.policy = ShedPolicy::kDropOldest;
      else
        c.policy = ShedPolicy::kNone;
    }
    if (const char* e = std::getenv("PARMATCH_LANES")) {
      c.lanes = std::strtoull(e, nullptr, 10);
      if (c.lanes < 1) c.lanes = 1;
      if (c.lanes > kMaxLanes) c.lanes = kMaxLanes;
    }
    if (const char* e = std::getenv("PARMATCH_LANE_WEIGHT")) {
      c.drain_weight = std::strtoull(e, nullptr, 10);
      if (c.drain_weight < 1) c.drain_weight = 1;
    }
    return c;
  }
};

// Bounded-backoff push: the producer-side contract. Spins a short budget,
// then yields, then sleeps with exponentially growing pauses (capped at
// kMaxPauseUs) so a saturated producer stops burning its core while the
// drain catches up. deadline_ns (steady-clock instant, 0 = wait forever)
// turns unbounded blocking into kTimedOut -- the knob the benches use to
// report producer stall instead of hiding it.
template <typename Ring, typename T>
inline PushResult push_with_backoff(Ring& q, const T& item,
                                    std::uint64_t deadline_ns = 0) {
  constexpr std::size_t kSpins = 64;       // cheap retries before yielding
  constexpr std::size_t kYields = 64;      // yields before sleeping
  constexpr std::uint64_t kMaxPauseUs = 256;
  std::size_t attempt = 0;
  std::uint64_t pause_us = 1;
  for (;;) {
    if (q.try_push(item)) return PushResult::kAccepted;
    ++attempt;
    if (attempt <= kSpins) continue;
    if (deadline_ns != 0) {
      std::uint64_t now = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      if (now >= deadline_ns) return PushResult::kTimedOut;
    }
    if (attempt <= kSpins + kYields) {
      std::this_thread::yield();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(pause_us));
    if (pause_us < kMaxPauseUs) pause_us <<= 1;
  }
}

// Per-lane bounded rings + shed policy + weighted drain + exact per-lane
// admission counters. Producers call admit() from any thread; exactly one
// consumer (the former stage / serial drain) calls try_pop().
class AdmissionQueue {
 public:
  AdmissionQueue(const AdmissionConfig& cfg, std::size_t default_capacity,
                 FaultInjector* fi = nullptr)
      : cfg_(cfg), fi_(fi) {
    if (cfg_.lanes < 1) cfg_.lanes = 1;
    if (cfg_.lanes > kMaxLanes) cfg_.lanes = kMaxLanes;
    if (cfg_.lane_capacity == 0) cfg_.lane_capacity = default_capacity;
    if (cfg_.drain_weight < 1) cfg_.drain_weight = 1;
    for (std::size_t l = 0; l < cfg_.lanes; ++l)
      lanes_[l] = std::make_unique<UpdateQueue>(cfg_.lane_capacity);
  }

  const AdmissionConfig& config() const { return cfg_; }
  std::size_t lanes() const { return cfg_.lanes; }
  std::size_t capacity() const {
    return lanes_[0]->capacity() * cfg_.lanes;
  }

  // ---- producer side (any thread) --------------------------------------

  // Admits one request into its lane under the configured policy. Only
  // inserts are ever shed; deletes block until space. Returns kAccepted
  // once the request occupies a ring slot, kShed when the policy rejected
  // it (reject-new, full lane). Counters: offered is bumped for every
  // call, shed_reject for rejected inserts.
  PushResult admit(const UpdateRequest& r) {
    std::size_t l = r.lane < cfg_.lanes ? r.lane : cfg_.lanes - 1;
    offered_[l].fetch_add(1, std::memory_order_relaxed);
    UpdateQueue& q = *lanes_[l];
    bool forced_full = fi_ && fi_->force_ring_full();
    bool pushed = !forced_full && q.try_push(r);
    if (pushed) return PushResult::kAccepted;
    if (r.is_insert()) {
      if (cfg_.policy == ShedPolicy::kRejectNew) {
        shed_reject_[l].fetch_add(1, std::memory_order_relaxed);
        return PushResult::kShed;
      }
      if (cfg_.policy == ShedPolicy::kDropOldest) {
        // Grant the consumer one eviction credit, then wait for the slot
        // it frees. The shed is counted when the consumer actually drops
        // a head-of-lane insert -- exact accounting, single consumer.
        evict_credit_[l].fetch_add(1, std::memory_order_relaxed);
      }
    }
    // kNone, drop-oldest, and every delete: block with bounded backoff.
    push_with_backoff(q, r);
    return PushResult::kAccepted;
  }

  // ---- consumer side (the single drain / former thread) ----------------

  // Weighted-high-first pop. Redeems pending drop-oldest eviction credits
  // first: head-of-lane INSERTS are shed (counted in shed_evict and in
  // *shed_now so the caller can retire them from its completion
  // accounting), head-of-lane deletes are returned as normal pops.
  // *popped_now counts every request this call consumed from the rings,
  // shed or returned -- the former's drained-everything bookkeeping.
  bool try_pop(UpdateRequest& out, std::uint64_t* popped_now = nullptr,
               std::uint64_t* shed_now = nullptr) {
    if (cfg_.policy == ShedPolicy::kDropOldest) {
      for (std::size_t l = 0; l < cfg_.lanes; ++l) {
        std::uint64_t credit =
            evict_credit_[l].load(std::memory_order_relaxed);
        while (credit != 0) {
          UpdateRequest r;
          if (!lanes_[l]->try_pop(r)) {
            // Lane drained under the credit: space exists, the blocked
            // producer will land; the leftover credit is moot.
            evict_credit_[l].store(0, std::memory_order_relaxed);
            break;
          }
          evict_credit_[l].fetch_sub(1, std::memory_order_relaxed);
          --credit;
          if (popped_now) ++*popped_now;
          if (r.is_insert()) {
            shed_evict_[l].fetch_add(1, std::memory_order_relaxed);
            if (shed_now) ++*shed_now;
          } else {
            out = r;  // deletes are never shed
            return true;
          }
        }
      }
    }
    // Priority order, except every drain_weight-th pop starts from the
    // lowest-priority lane so saturation upstairs cannot starve the
    // lower classes entirely.
    bool low_first = cfg_.lanes > 1 &&
                     pop_seq_ % cfg_.drain_weight == cfg_.drain_weight - 1;
    if (low_first) {
      for (std::size_t l = cfg_.lanes; l-- > 0;)
        if (lanes_[l]->try_pop(out)) {
          ++pop_seq_;
          if (popped_now) ++*popped_now;
          return true;
        }
      return false;
    }
    for (std::size_t l = 0; l < cfg_.lanes; ++l)
      if (lanes_[l]->try_pop(out)) {
        ++pop_seq_;
        if (popped_now) ++*popped_now;
        return true;
      }
    return false;
  }

  // ---- monitoring (any thread; racy by design) -------------------------

  std::size_t approx_size() const {
    std::size_t n = 0;
    for (std::size_t l = 0; l < cfg_.lanes; ++l)
      n += lanes_[l]->approx_size();
    return n;
  }

  std::uint64_t offered(std::size_t lane) const {
    return offered_[lane].load(std::memory_order_relaxed);
  }
  std::uint64_t shed_reject(std::size_t lane) const {
    return shed_reject_[lane].load(std::memory_order_relaxed);
  }
  std::uint64_t shed_evict(std::size_t lane) const {
    return shed_evict_[lane].load(std::memory_order_relaxed);
  }
  // Outstanding drop-oldest credits a blocked producer has granted but the
  // consumer has not yet redeemed. Observable so tests (and diagnostics)
  // can sequence against the producer reaching its blocked state.
  std::uint64_t evict_credit(std::size_t lane) const {
    return evict_credit_[lane].load(std::memory_order_relaxed);
  }
  std::uint64_t total_shed() const {
    std::uint64_t n = 0;
    for (std::size_t l = 0; l < cfg_.lanes; ++l)
      n += shed_reject(l) + shed_evict(l);
    return n;
  }

  // Stats reset (callers must have producers quiesced -- same safety rule
  // as MatchService::reset_stats).
  void reset_counters() {
    for (std::size_t l = 0; l < kMaxLanes; ++l) {
      offered_[l].store(0, std::memory_order_relaxed);
      shed_reject_[l].store(0, std::memory_order_relaxed);
      shed_evict_[l].store(0, std::memory_order_relaxed);
    }
  }

 private:
  AdmissionConfig cfg_;
  FaultInjector* fi_;
  std::unique_ptr<UpdateQueue> lanes_[kMaxLanes];
  std::uint64_t pop_seq_ = 0;  // consumer-owned
  std::atomic<std::uint64_t> offered_[kMaxLanes] = {};
  std::atomic<std::uint64_t> shed_reject_[kMaxLanes] = {};
  std::atomic<std::uint64_t> shed_evict_[kMaxLanes] = {};
  std::atomic<std::uint64_t> evict_credit_[kMaxLanes] = {};
};

}  // namespace parmatch::serve
