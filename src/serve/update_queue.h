// serve/update_queue.h -- the lock-light MPSC ingestion queue of the
// serving front-end (DESIGN.md S12). Many producer threads submit
// individual insert/delete requests; one consumer (the MatchService drain
// thread) pops them in FIFO order and hands them to the batch former.
//
// The queue is a bounded Vyukov-style ring: one atomic sequence word per
// cell arbitrates producers against each other and against the consumer,
// so the hot path is one fetch-style CAS on the tail plus one release
// store per push and one acquire load plus one release store per pop --
// no mutex, no allocation, no unbounded growth. A full ring makes
// try_push fail, which is the service's backpressure signal: producers
// spin/yield instead of queueing unbounded memory (the open-loop benches
// count these stalls as offered-rate shortfall rather than hiding them).
//
// FIFO matters for correctness, not just fairness: a producer deletes a
// ticket only after its submit_insert returned, so the insert occupies an
// earlier ring slot and the consumer always drains an edge's insert
// before (or in the same window as) its delete. The batch former's
// conflict resolution (batch_former.h) relies on exactly this.
//
// Complexity contract: try_push / try_pop are O(1) with one CAS each;
// approx_size is O(1) and racy by design (monitoring only). A slot whose
// producer stalled between claiming and publishing temporarily blocks the
// consumer at that slot (try_pop returns false), preserving order.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "graph/edge.h"

namespace parmatch::serve {

// Priority-lane bound shared by the admission layer (serve/admission.h)
// and the per-lane accounting in the former and the service stats. Lane 0
// is the highest priority; a service configures 1..kMaxLanes lanes.
inline constexpr std::size_t kMaxLanes = 4;

// One ingested update. Inserts carry the edge's endpoints inline (rank
// 1..kMaxRank) plus the ticket the service assigned; deletes carry rank 0
// and the ticket of the insert they revoke. t_enqueue_ns is the
// steady-clock submit instant -- the start of the ingest-to-commit latency
// the serving benches report. `lane` is the priority class the admission
// layer routed the request through (0 = highest); an insert and its
// delete must use the SAME lane, since FIFO holds per lane, not across
// lanes (serve/admission.h).
struct UpdateRequest {
  static constexpr std::size_t kMaxRank = 4;

  std::uint64_t ticket = 0;
  std::uint64_t t_enqueue_ns = 0;
  graph::VertexId v[kMaxRank] = {0, 0, 0, 0};
  std::uint32_t rank = 0;  // 0 = delete, else endpoint count
  std::uint8_t lane = 0;   // priority class, 0 = highest

  bool is_insert() const { return rank != 0; }
};

class UpdateQueue {
 public:
  // Capacity is rounded up to a power of two; the ring is allocated once
  // at construction and never grows (bounded-memory contract).
  explicit UpdateQueue(std::size_t capacity) {
    std::size_t cap = 64;
    while (cap < capacity) cap <<= 1;
    cap_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return cap_; }

  // Multi-producer push. False = ring full (backpressure), retry later.
  bool try_push(const UpdateRequest& r) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      std::size_t seq = c.seq.load(std::memory_order_acquire);
      std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                          static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed older item
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Cell& c = cells_[pos & mask_];
    c.req = r;
    c.seq.store(pos + 1, std::memory_order_release);  // publish to consumer
    return true;
  }

  // Single-consumer pop (the drain thread). False = empty, or the next
  // slot's producer has claimed but not yet published (order preserved).
  bool try_pop(UpdateRequest& out) {
    std::size_t h = head_.load(std::memory_order_relaxed);
    Cell& c = cells_[h & mask_];
    std::size_t seq = c.seq.load(std::memory_order_acquire);
    if (seq != h + 1) return false;
    out = c.req;
    // Recycle the cell for the producer one lap ahead.
    c.seq.store(h + cap_, std::memory_order_release);
    head_.store(h + 1, std::memory_order_relaxed);
    return true;
  }

  // Monitoring estimate (queue-growth / high-water-mark reporting); may be
  // momentarily stale when read concurrently with pushes and pops.
  std::size_t approx_size() const {
    std::size_t t = tail_.load(std::memory_order_relaxed);
    std::size_t h = head_.load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq;
    UpdateRequest req;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-advanced
};

// Bounded single-producer single-consumer ring -- the handoff between
// adjacent stages of the pipelined drain (service.h, DESIGN.md S12). Each
// stage pair has exactly one producer and one consumer, so no CAS is
// needed at all: the producer owns tail_, the consumer owns head_, and one
// acquire/release pair per transfer publishes the payload. T is typically
// a Window* (pointer-sized), so a full transfer is two loads + two stores.
//
// A full ring stalls the producer stage (try_push false) -- that is the
// pipeline's internal backpressure, bounding how far the former may run
// ahead of the matcher. Capacity is rounded up to a power of two.
//
// Complexity contract: try_push / try_pop are O(1), wait-free (one
// cached-peer-index fast path, one refresh on apparent full/empty).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    cap_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  std::size_t capacity() const { return cap_; }

  // Producer side. False = ring full (consumer stage is behind).
  bool try_push(const T& v) {
    std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= cap_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= cap_) return false;
    }
    slots_[t & mask_] = v;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False = empty.
  bool try_pop(T& out) {
    std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = slots_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Monitoring estimate; racy by design.
  std::size_t approx_size() const {
    std::size_t t = tail_.load(std::memory_order_relaxed);
    std::size_t h = head_.load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

 private:
  std::unique_ptr<T[]> slots_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
};

}  // namespace parmatch::serve
