// serve/service.h -- the open-loop serving front-end (DESIGN.md S12): the
// first layer above the matcher, turning an asynchronous stream of
// insert/delete requests from many producer threads into the batches the
// batch-dynamic structure consumes.
//
//   producers --> UpdateQueue (MPSC ring) --> drain thread:
//       BatchFormer window -> conflict resolution -> DynamicMatcher
//       insert_edges / delete_edges -> snapshot publish
//
// Producer API: submit_insert returns a TICKET immediately (the edge id is
// not known until the batch applies); submit_delete revokes a ticket. A
// producer may delete a ticket only after its submit_insert returned --
// FIFO ingestion then guarantees the drain sees the insert first, and a
// same-window pair annihilates in the former. The ticket -> edge-id table
// lives on the drain thread; producers never touch matcher state.
//
// Snapshot reads: is_matched / match_of / matched_count are served from a
// service-owned array of atomics, safe to call from any thread at any
// time. The drain thread republishes only the vertices a batch touched
// (the matcher reports them through its delta sink -- O(batch), not O(V))
// under an epoch seqlock: epoch goes odd -> cells -> even. Single-word
// reads need no protocol (each cell is one atomic word); a multi-word
// consistent view uses read_consistent(), which retries while the epoch is
// odd or moved. Every access is an atomic on both sides, so the protocol
// is TSan-clean by construction, not by suppression.
//
// Shutdown: stop() flushes the queue and the window before joining, so
// every submitted update is applied exactly once; drain_until_idle() is
// the test/bench barrier (submitted == completed).
//
// Determinism contract (DESIGN.md S2/S12): the matcher below is
// bit-identical for a fixed batch sequence, but the PARTITION of the
// stream into batches is timing-dependent here -- two runs of the same
// stream may form different windows and so different (all valid, all
// maximal) matchings. Tests therefore compare the final live GRAPH against
// a serial replay and validate the matching against recompute, rather than
// expecting bit-equal matchings.
//
// Complexity contract: submit_* is O(1) plus backpressure spin when the
// ring is full; a drained window of w requests costs the matcher's batch
// price plus O(w log w) conflict resolution; snapshot publish is O(batch
// touched vertices); reads are O(1). An idle service parks its drain
// thread (timed condition-variable wait after a bounded spin) and costs
// ~zero CPU.
//
// Known limitation (ROADMAP open item): two structures grow with the
// STREAM, not with the live graph. The ticket -> edge-id table is a dense
// vector indexed by ticket and tickets are never recycled, so it grows
// one word per insert ever submitted (~8 MB per million inserts); and
// with ServiceConfig::record_latencies (the default, intended for the
// bench/test lifetimes this layer currently serves) ServiceStats keeps
// one latency sample per committed update and one size per window. Fine
// for bounded runs; a long-lived deployment needs ticket recycling
// (epoch'd ticket namespaces or a tombstoned open-addressing map) and
// record_latencies=false (or a reservoir), which is its own PR.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "graph/edge.h"
#include "serve/batch_former.h"
#include "serve/update_queue.h"

namespace parmatch::serve {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ServiceConfig {
  dyn::Config matcher;
  FormerConfig former;
  std::size_t queue_capacity = 1u << 16;
  // Snapshot capacity: one atomic word per vertex, fixed at construction
  // so reads never race a reallocation. Submitting a vertex >= this bound
  // is a caller error (asserted in debug builds).
  graph::VertexId max_vertices = 1u << 20;
  // Record one latency sample per committed update (the serving benches'
  // p50/p99 source) -- stats memory then grows with the stream length
  // (see the known-limitation note in the header). Off: only counters.
  bool record_latencies = true;

  static ServiceConfig from_env() {
    ServiceConfig c;
    c.former = FormerConfig::from_env();
    return c;
  }
};

// Drain-thread-owned observables. Stable to read only when the service is
// idle (after stop() or drain_until_idle() with producers quiesced).
struct ServiceStats {
  std::vector<double> latencies_us;       // per committed update
  std::vector<std::size_t> batch_updates; // updates per applied window
  std::size_t batches = 0;
  std::size_t applied_inserts = 0;
  std::size_t applied_deletes = 0;
  std::size_t annihilated = 0;      // insert+delete pairs absorbed in-window
  std::size_t deduped_deletes = 0;  // duplicate deletes collapsed
  std::size_t dropped_deletes = 0;  // dead/unknown tickets skipped
  std::size_t flush_full = 0;
  std::size_t flush_cost = 0;
  std::size_t flush_deadline = 0;
  std::size_t flush_drain = 0;
  std::size_t queue_hwm = 0;        // high-water mark of approx_size
  std::uint64_t first_enqueue_ns = 0;
  std::uint64_t last_commit_ns = 0;

  void clear() { *this = ServiceStats{}; }
};

class MatchService {
  using VertexId = graph::VertexId;
  using EdgeId = graph::EdgeId;

 public:
  explicit MatchService(const ServiceConfig& cfg)
      : cfg_(capped(cfg)),
        dm_(cfg_.matcher),
        queue_(cfg_.queue_capacity),
        former_(cfg_.former),
        snap_match_(
            std::make_unique<std::atomic<EdgeId>[]>(cfg_.max_vertices)) {
    for (VertexId v = 0; v < cfg_.max_vertices; ++v)
      snap_match_[v].store(graph::kInvalidEdge, std::memory_order_relaxed);
    dm_.set_delta_sink(&delta_);
  }

  ~MatchService() { stop(); }

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  // ---- lifecycle -------------------------------------------------------

  void start() {
    if (running_) return;
    stop_.store(false, std::memory_order_release);
    running_ = true;
    drain_ = std::thread([this] { drain_loop(); });
  }

  // Drains everything already submitted, then joins. Idempotent.
  void stop() {
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
    wake_drain();
    drain_.join();
    running_ = false;
  }

  // Blocks until every update submitted so far has been applied (or
  // absorbed). Producers may keep submitting; the barrier covers only
  // submissions that happened-before the call.
  void drain_until_idle() const {
    std::uint64_t target = submitted_.load(std::memory_order_acquire);
    while (completed_.load(std::memory_order_acquire) < target)
      std::this_thread::yield();
  }

  // Clears the stats (prewarm separation in the benches). Blocks until the
  // drain thread acknowledges; call only from outside the drain thread,
  // ideally when idle.
  void reset_stats() {
    if (!running_) {
      stats_.clear();
      return;
    }
    reset_pending_.store(true, std::memory_order_release);
    wake_drain();
    while (reset_pending_.load(std::memory_order_acquire))
      std::this_thread::yield();
  }

  // ---- producer API (any thread) ---------------------------------------

  // Submits one edge insertion; returns its ticket. Blocks (spin + yield)
  // while the ring is full -- bounded memory, backpressure to the caller.
  std::uint64_t submit_insert(std::span<const VertexId> vs) {
    assert(vs.size() >= 1 && vs.size() <= UpdateRequest::kMaxRank &&
           vs.size() <= cfg_.matcher.max_rank);
    UpdateRequest r;
    r.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    // The clamp backs the assert up in release builds: an oversized span
    // is a contract violation either way, but it must never become an
    // out-of-bounds write -- neither into the inline endpoint array here
    // nor into the pool's fixed-stride record at apply time.
    std::size_t cap = cfg_.matcher.max_rank < UpdateRequest::kMaxRank
                          ? cfg_.matcher.max_rank
                          : UpdateRequest::kMaxRank;
    std::size_t n = vs.size() < cap ? vs.size() : cap;
    r.rank = static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      assert(vs[i] < cfg_.max_vertices);
      r.v[i] = vs[i];
    }
    push(r);
    return r.ticket;
  }

  std::uint64_t submit_insert(VertexId u, VertexId v) {
    VertexId vs[2] = {u, v};
    return submit_insert(std::span<const VertexId>(vs, 2));
  }

  // Revokes a previously returned ticket. Must happen after the owning
  // submit_insert returned; deleting a ticket twice is tolerated (the
  // second is dropped and counted in ServiceStats::dropped_deletes).
  void submit_delete(std::uint64_t ticket) {
    UpdateRequest r;
    r.ticket = ticket;
    r.rank = 0;
    push(r);
  }

  // ---- snapshot reads (any thread, concurrent with applies) ------------

  // Epoch is even between publishes, odd during one. Single-word reads
  // below are always safe; bracket multi-word reads with read_consistent.
  std::uint64_t snapshot_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // The matched edge taking vertex v in the last published snapshot, or
  // kInvalidEdge when v is free (or out of snapshot range).
  EdgeId match_of(VertexId v) const {
    if (v >= cfg_.max_vertices) return graph::kInvalidEdge;
    return snap_match_[v].load(std::memory_order_acquire);
  }

  bool is_matched(VertexId v) const {
    return match_of(v) != graph::kInvalidEdge;
  }

  std::size_t matched_count() const {
    return snap_matched_.load(std::memory_order_acquire);
  }

  // Runs f() against a single snapshot epoch: retries while a publish is
  // in flight or one completed mid-read. f must only read through the
  // accessors above and must be side-effect-free on retry.
  template <typename F>
  auto read_consistent(F&& f) const {
    for (;;) {
      std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if (e & 1) {
        std::this_thread::yield();
        continue;
      }
      auto r = f();
      if (epoch_.load(std::memory_order_seq_cst) == e) return r;
    }
  }

  // ---- idle-time inspection (tests / benches) --------------------------

  // The structure underneath. Safe only while the drain thread is idle
  // (after stop() or a drain_until_idle() with producers quiesced).
  const dyn::DynamicMatcher& matcher() const { return dm_; }

  // Live edge id of a ticket, kInvalidEdge if never applied or deleted.
  // Same safety rule as matcher().
  EdgeId edge_of_ticket(std::uint64_t ticket) const {
    return ticket < ticket_to_edge_.size()
               ? ticket_to_edge_[static_cast<std::size_t>(ticket)]
               : graph::kInvalidEdge;
  }

  const ServiceStats& stats() const { return stats_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  // The serve layer carries edge endpoints inline in the ring cells, so
  // the matcher rank it can serve is capped at UpdateRequest::kMaxRank
  // regardless of what the underlying pool would accept.
  static ServiceConfig capped(ServiceConfig cfg) {
    if (cfg.matcher.max_rank > UpdateRequest::kMaxRank)
      cfg.matcher.max_rank = UpdateRequest::kMaxRank;
    return cfg;
  }

 public:

  // Live monitoring counters (any thread).
  std::uint64_t submitted_updates() const {
    return submitted_.load(std::memory_order_acquire);
  }
  std::uint64_t completed_updates() const {
    return completed_.load(std::memory_order_acquire);
  }

 private:
  void push(UpdateRequest& r) {
    r.t_enqueue_ns = now_ns();
    // fetch_add BEFORE the ring push: drain_until_idle's target must cover
    // this request once push() returns.
    submitted_.fetch_add(1, std::memory_order_acq_rel);
    std::size_t spins = 0;
    while (!queue_.try_push(r)) {
      // Backpressure: the ring is full. Yield so the drain thread gets the
      // core on oversubscribed machines.
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    wake_drain();
  }

  // Cheap on the hot path: one relaxed-ish load; the mutex+notify only
  // when the drain actually parked.
  void wake_drain() {
    if (parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(park_mu_);
      park_cv_.notify_one();
    }
  }

  // ---- drain thread ----------------------------------------------------

  // Consecutive empty iterations before the drain thread parks on the
  // condition variable. Large enough that a loaded service never parks
  // between windows; small enough that an idle service stops burning its
  // core within microseconds.
  static constexpr std::size_t kIdleSpinsBeforePark = 4096;

  void drain_loop() {
    UpdateRequest r;
    std::size_t idle_spins = 0;
    for (;;) {
      // Sample the backlog BEFORE draining it into the window: sampling
      // after the pop loop would only ever see the >max_batch leftover and
      // report hwm 0 for any burst the window absorbed.
      std::size_t qs = queue_.approx_size();
      if (qs > stats_.queue_hwm) stats_.queue_hwm = qs;
      bool progressed = false;
      while (!former_.window_full() && queue_.try_pop(r)) {
        if (stats_.first_enqueue_ns == 0)
          stats_.first_enqueue_ns = r.t_enqueue_ns;
        former_.add(r);
        progressed = true;
      }

      bool stopping = stop_.load(std::memory_order_acquire);
      FlushReason why = FlushReason::kDrain;
      if (former_.should_flush(now_ns(), &why)) {
        apply_window(why);
        progressed = true;
      } else if (stopping && !former_.empty() && queue_.approx_size() == 0) {
        apply_window(FlushReason::kDrain);
        progressed = true;
      }

      if (reset_pending_.load(std::memory_order_acquire) &&
          former_.empty()) {
        stats_.clear();
        reset_pending_.store(false, std::memory_order_release);
      }

      if (!progressed) {
        // Exit only when every SUBMITTED update has completed, not merely
        // when the ring looks empty: a producer in push() may have bumped
        // submitted_ without having landed its ring slot yet (the counter
        // is incremented before the push for exactly this reason), and
        // exiting then would strand its update and hang any later
        // drain_until_idle.
        if (stopping && former_.empty() &&
            completed_.load(std::memory_order_acquire) ==
                submitted_.load(std::memory_order_acquire))
          return;
        // Truly idle (no window aging toward its deadline): spin briefly,
        // then park instead of burning the core forever. The park is a
        // TIMED wait, so even a wakeup lost to the store/load race between
        // a producer's push and parked_ going up costs one timeout, never
        // a hang; a pending window keeps the thread yielding instead (its
        // deadline is the clock that matters there).
        if (former_.empty() && !stopping &&
            ++idle_spins >= kIdleSpinsBeforePark) {
          std::unique_lock<std::mutex> lk(park_mu_);
          parked_.store(true, std::memory_order_seq_cst);
          if (queue_.approx_size() == 0 &&
              !stop_.load(std::memory_order_acquire) &&
              !reset_pending_.load(std::memory_order_acquire))
            park_cv_.wait_for(lk, std::chrono::milliseconds(10));
          parked_.store(false, std::memory_order_seq_cst);
          // idle_spins stays saturated: a timeout wake with still-nothing
          // re-parks on the next iteration instead of respinning the full
          // budget (which would burn ~10% of a core while "idle").
        } else {
          std::this_thread::yield();
        }
      } else {
        idle_spins = 0;
      }
    }
  }

  void apply_window(FlushReason why) {
    former_.form(formed_);
    delta_.clear();

    if (!formed_.inserts.empty()) {
      auto ids = dm_.insert_edges(formed_.inserts);
      std::uint64_t max_ticket = 0;
      for (std::uint64_t t : formed_.insert_tickets)
        if (t > max_ticket) max_ticket = t;
      if (ticket_to_edge_.size() <= max_ticket)
        ticket_to_edge_.resize(static_cast<std::size_t>(max_ticket) + 1,
                               graph::kInvalidEdge);
      for (std::size_t i = 0; i < ids.size(); ++i)
        ticket_to_edge_[static_cast<std::size_t>(formed_.insert_tickets[i])] =
            ids[i];
    }

    del_ids_.clear();
    for (std::uint64_t t : formed_.delete_tickets) {
      EdgeId id = t < ticket_to_edge_.size()
                      ? ticket_to_edge_[static_cast<std::size_t>(t)]
                      : graph::kInvalidEdge;
      if (id == graph::kInvalidEdge) {
        ++stats_.dropped_deletes;
        continue;
      }
      ticket_to_edge_[static_cast<std::size_t>(t)] = graph::kInvalidEdge;
      del_ids_.push_back(id);
    }
    if (!del_ids_.empty())
      dm_.delete_edges(std::span<const EdgeId>(del_ids_));

    if (!delta_.empty() || formed_.update_count() != 0) publish_snapshot();

    // Commit instant: every request of this window (applied or absorbed)
    // is now observable through the snapshot.
    std::uint64_t commit = now_ns();
    stats_.last_commit_ns = commit;
    if (cfg_.record_latencies) {
      auto rec = [&](const std::vector<std::uint64_t>& ts) {
        for (std::uint64_t t : ts)
          stats_.latencies_us.push_back(
              static_cast<double>(commit - t) * 1e-3);
      };
      rec(formed_.insert_enqueue_ns);
      rec(formed_.delete_enqueue_ns);
      rec(formed_.absorbed_enqueue_ns);
    }
    ++stats_.batches;
    if (cfg_.record_latencies)
      stats_.batch_updates.push_back(formed_.update_count());
    stats_.applied_inserts += formed_.inserts.size();
    stats_.applied_deletes += del_ids_.size();
    stats_.annihilated += formed_.annihilated;
    stats_.deduped_deletes += formed_.deduped;
    switch (why) {
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kCostModel: ++stats_.flush_cost; break;
      case FlushReason::kDeadline: ++stats_.flush_deadline; break;
      case FlushReason::kDrain: ++stats_.flush_drain; break;
    }
    completed_.fetch_add(formed_.raw_requests, std::memory_order_acq_rel);
  }

  // Epoch seqlock: odd while cells are being rewritten. Only the vertices
  // the matcher touched this window are republished (delta sink).
  void publish_snapshot() {
    std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    epoch_.store(e + 1, std::memory_order_seq_cst);
    for (VertexId v : delta_) {
      if (v >= cfg_.max_vertices) continue;  // outside the snapshot window
      snap_match_[v].store(dm_.match_of(v), std::memory_order_release);
    }
    snap_matched_.store(dm_.matched_count(), std::memory_order_release);
    epoch_.store(e + 2, std::memory_order_seq_cst);
  }

  ServiceConfig cfg_;
  dyn::DynamicMatcher dm_;
  UpdateQueue queue_;
  BatchFormer former_;
  FormedBatch formed_;

  std::thread drain_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> reset_pending_{false};
  std::mutex park_mu_;               // idle-park handshake
  std::condition_variable park_cv_;
  std::atomic<bool> parked_{false};

  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};

  // Drain-thread-owned.
  std::vector<EdgeId> ticket_to_edge_;
  std::vector<EdgeId> del_ids_;
  std::vector<VertexId> delta_;  // matcher's per-window touched vertices
  ServiceStats stats_;

  // Snapshot (epoch seqlock over atomics; readers on any thread).
  std::unique_ptr<std::atomic<EdgeId>[]> snap_match_;
  std::atomic<std::size_t> snap_matched_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace parmatch::serve
