// serve/service.h -- the open-loop serving front-end (DESIGN.md S12): the
// first layer above the matcher, turning an asynchronous stream of
// insert/delete requests from many producer threads into the batches the
// batch-dynamic structure consumes.
//
// Two drain topologies, same external contract:
//
//   pipeline (default):
//     producers --> AdmissionQueue (priority-lane MPSC rings + shed policy)
//       --> FORMER thread:   pop + window + conflict resolution
//       --> MATCHER thread:  insert_edges / delete_edges, ticket table,
//                            capture the touched-vertex snapshot values
//       --> PUBLISHER thread: epoch-seqlock snapshot publish, stats,
//                             completion accounting
//     Adjacent stages hand off Window records over SPSC rings
//     (update_queue.h); a small fixed pool of Windows recycles through
//     free -> apply -> publish -> free, so the steady state allocates
//     nothing and the former can run at most kWindows windows ahead of
//     the matcher (internal backpressure). Window N+1 forms while window
//     N applies and window N-1 publishes -- the matcher thread, the only
//     stage running fork/join phases, stops paying form and publish time
//     between batches. PARMATCH_PIPELINE=0 (or pipeline=false) selects:
//
//   serial (PR 5 drain): one thread runs the same three stages in
//     sequence per window, through the SAME apply/publish code.
//
// Producer API: submit_insert returns a TICKET immediately (the edge id is
// not known until the batch applies); submit_delete revokes a ticket. A
// producer may delete a ticket only after its submit_insert returned --
// FIFO ingestion then guarantees the drain sees the insert first, and a
// same-window pair annihilates in the former. The ticket -> edge-id table
// (serve/ticket_table.h, tombstoned open addressing: memory tracks LIVE
// tickets, not stream length) is owned by the matcher stage; producers
// never touch matcher state.
//
// Snapshot reads: is_matched / match_of / matched_count are served from a
// service-owned array of atomics, safe to call from any thread at any
// time. Only the vertices a batch touched are republished (the matcher
// reports them through its delta sink -- O(batch), not O(V)) under an
// epoch seqlock: epoch goes odd -> cells -> even. In the pipeline the
// matcher stage CAPTURES each touched vertex's post-batch value into the
// Window while it still owns the structure, and the publisher writes those
// captured values -- it never reads live matcher state, so publish for
// window N-1 cannot race the apply of window N. Single-word reads need no
// protocol (each cell is one atomic word); a multi-word consistent view
// uses read_consistent(), which retries while the epoch is odd or moved.
// Every access is an atomic on both sides, so the protocol is TSan-clean
// by construction, not by suppression.
//
// Shutdown: stop() drains the queue and the window, then flows a sentinel
// Window through the stages so each exits after its last real window;
// every submitted update is applied exactly once. drain_until_idle() is
// the test/bench barrier (submitted == completed, bumped by the LAST
// stage, so completion still implies snapshot visibility).
//
// Determinism contract (DESIGN.md S2/S12): windows flow former -> matcher
// -> publisher strictly FIFO and exactly one thread mutates the matcher,
// so for a FIXED partition of the stream into windows the pipelined and
// serial drains are bit-identical (tests pin the partition by flushing on
// max_batch only). Under timing-dependent flushes the partition itself
// may differ between runs -- then, as before, runs agree on the live
// graph and validity/maximality, not bit-equal matchings.
//
// Complexity contract: submit_* is O(1) plus backpressure spin when the
// ring is full; a drained window of w requests costs the matcher's batch
// price plus O(w log w) conflict resolution on the former stage; snapshot
// publish is O(batch touched vertices); reads are O(1). An idle service
// parks its stage threads (timed condition-variable wait after a bounded
// spin) and costs ~zero CPU.
//
// Overload protection (DESIGN.md S13): ingestion goes through an
// AdmissionQueue (serve/admission.h) -- 1..kMaxLanes priority-class rings
// with a configurable shed policy. submit_insert reports a shed
// synchronously by returning kShedTicket; deletes are never shed. On top,
// the former applies the deadline-aware admit budget
// (PARMATCH_ADMIT_BUDGET_US): inserts older than the budget at form time
// are shed as stale. Accounting is exactly conservative --
//     offered == committed + shed_admission + shed_evict + shed_stale
// where committed covers applied, absorbed, and dropped-dead-ticket
// requests; the E13 bench and the admission tests gate on the equality.
// The drain also publishes a degradation state machine
// (overload_state(): healthy / backlogged / shedding with a shed-decay
// hold), readable from any thread. The default configuration (1 lane,
// policy none, no budget) is behavior-identical to the pre-admission
// service: every request blocks under backpressure and nothing is shed.
//
// ServiceStats memory is bounded: latency quantiles come from fixed-size
// log-bucketed histograms (util/latency_hist.h, +-4.5% documented
// quantile error), never per-sample vectors, so a long-lived service's
// stats footprint is O(1) in the stream length. The former ticket-table
// stream-growth limitation is likewise fixed (ticket recycling, tests
// assert the bound).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dyn/dynamic_matcher.h"
#include "graph/edge.h"
#include "shard/shard_map.h"
#include "serve/admission.h"
#include "serve/batch_former.h"
#include "serve/checkpoint.h"
#include "serve/fault_inject.h"
#include "serve/journal.h"
#include "serve/ticket_table.h"
#include "serve/update_queue.h"
#include "util/latency_hist.h"

namespace parmatch::serve {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ServiceConfig {
  dyn::Config matcher;
  FormerConfig former;
  // Admission layer: shed policy, priority-lane count, drain weighting
  // (serve/admission.h). The default -- 1 lane, ShedPolicy::kNone -- is
  // behavior-identical to plain bounded-backpressure ingestion.
  AdmissionConfig admission;
  std::size_t queue_capacity = 1u << 16;  // per-lane ring capacity
  // Snapshot capacity: one atomic word per vertex, fixed at construction
  // so reads never race a reallocation. Submitting a vertex >= this bound
  // is a caller error (asserted in debug builds).
  graph::VertexId max_vertices = 1u << 20;
  // Record latency histograms (the serving benches' p50/p99 source).
  // Bounded memory either way (fixed-size log buckets); off skips the
  // per-commit record() calls entirely -- used by the race-stress tests.
  bool record_latencies = true;
  // Three-stage pipelined drain (default) vs the single-thread serial
  // drain. Same results for a fixed window partition; PARMATCH_PIPELINE=0
  // selects serial from the environment.
  bool pipeline = true;
  // Durability layer (DESIGN.md S14): write-ahead batch journal +
  // periodic checkpoints (serve/journal.h, serve/checkpoint.h). The
  // default -- policy off -- is the pre-S14 service: no journal I/O, no
  // recovery at construction.
  JournalConfig journal;
  // Shard count for the sharded-matcher configuration (DESIGN.md S15).
  // Ignored by BasicMatchService<DynamicMatcher>; consumed by the
  // MatcherTraits specialization that builds a ShardedMatcher
  // (shard/sharded_service.h). PARMATCH_SHARDS from the environment.
  std::uint32_t shards = 1;

  static ServiceConfig from_env() {
    ServiceConfig c;
    c.former = FormerConfig::from_env();
    c.admission = AdmissionConfig::from_env();
    if (const char* e = std::getenv("PARMATCH_PIPELINE"))
      c.pipeline = !(std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0);
    c.journal = JournalConfig::from_env();
    c.shards = shard::shards_from_env();
    return c;
  }
};

// Publisher-stage-owned observables. Stable to read only when the service
// is idle (after stop() or drain_until_idle() with producers quiesced).
// All fields are fixed-footprint: quantiles come from log-bucketed
// histograms (+-4.5% documented error, util/latency_hist.h), per-window
// sizes from sum/max counters -- nothing here grows with the stream.
struct ServiceStats {
  util::LatencyHistogram latency;   // ingest-to-commit, all lanes
  std::array<util::LatencyHistogram, kMaxLanes> lane_latency;
  std::size_t batch_updates_sum = 0;  // committed updates over all windows
  std::size_t batch_updates_max = 0;  // largest single window
  std::size_t batches = 0;
  std::size_t applied_inserts = 0;
  std::size_t applied_deletes = 0;
  std::size_t annihilated = 0;      // insert+delete pairs absorbed in-window
  std::size_t deduped_deletes = 0;  // duplicate deletes collapsed
  std::size_t dropped_deletes = 0;  // dead/unknown tickets skipped
  std::size_t shed_stale = 0;       // inserts shed by the admit budget
  // Per-priority-lane commit accounting (admission-side shed counters
  // live on the AdmissionQueue; MatchService::lane_report merges both).
  std::array<std::uint64_t, kMaxLanes> lane_committed = {};
  std::array<std::uint64_t, kMaxLanes> lane_shed_stale = {};
  std::size_t flush_full = 0;
  std::size_t flush_cost = 0;
  std::size_t flush_deadline = 0;
  std::size_t flush_drain = 0;
  std::size_t queue_hwm = 0;        // high-water mark of approx_size
  std::uint64_t first_enqueue_ns = 0;
  std::uint64_t last_commit_ns = 0;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batch_updates_sum) /
                              static_cast<double>(batches);
  }

  void clear() { *this = ServiceStats{}; }
};

// How BasicMatchService<M> builds its matcher from the service config.
// The primary template covers any matcher constructible from dyn::Config;
// matchers with richer configuration (the sharded one wants the shard
// count too) specialize it -- see shard/sharded_service.h. make() returns
// a prvalue, so the service's member initializes by guaranteed copy
// elision and M never needs to be movable (the sharded matcher holds
// atomics-bearing rings and is not).
template <typename M>
struct MatcherTraits {
  static M make(const ServiceConfig& cfg) { return M(cfg.matcher); }
};

// The serving front-end over any matcher M satisfying the DynamicMatcher
// update/read/durability surface (insert_edges, delete_edges, match_of,
// matched_count, set_delta_sink, insert_epochs/settle_epochs,
// export_state/import_state/state_fingerprint). Members are instantiated
// lazily, so a matcher only needs the operations the caller exercises.
// `MatchService` below is the plain single-matcher alias.
template <typename M>
class BasicMatchService {
  using VertexId = graph::VertexId;
  using EdgeId = graph::EdgeId;

 public:
  // Producer-visible sentinel: submit_insert returns this when the
  // admission layer shed the request (reject-new policy, full lane).
  // Deleting kShedTicket is a no-op by construction -- it can never match
  // a live ticket -- but callers should simply skip the delete.
  static constexpr std::uint64_t kShedTicket = ~0ull;

  explicit BasicMatchService(const ServiceConfig& cfg)
      : cfg_(capped(cfg)),
        dm_(MatcherTraits<M>::make(cfg_)),
        queue_(cfg_.admission, cfg_.queue_capacity, &fi_),
        former_(cfg_.former),
        snap_match_(
            std::make_unique<std::atomic<EdgeId>[]>(cfg_.max_vertices)),
        free_ring_(kWindows),
        apply_ring_(kWindows),
        publish_ring_(kWindows) {
    for (VertexId v = 0; v < cfg_.max_vertices; ++v)
      snap_match_[v].store(graph::kInvalidEdge, std::memory_order_relaxed);
    dm_.set_delta_sink(&delta_);
    for (std::size_t i = 0; i < kWindows; ++i) {
      pool_[i] = std::make_unique<Window>();
      free_ring_.try_push(pool_[i].get());
    }
    if (cfg_.journal.enabled()) {
      std::error_code ec;
      std::filesystem::create_directories(cfg_.journal.dir, ec);
      recover();
      journal_.open(cfg_.journal);
      ckpt_writer_.start(cfg_.journal.dir);
    }
  }

  ~BasicMatchService() { stop(); }

  BasicMatchService(const BasicMatchService&) = delete;
  BasicMatchService& operator=(const BasicMatchService&) = delete;

  // ---- lifecycle -------------------------------------------------------

  void start() {
    if (running_) return;
    stop_.store(false, std::memory_order_release);
    running_ = true;
    if (cfg_.pipeline) {
      former_thread_ = std::thread([this] { former_loop(); });
      matcher_thread_ = std::thread([this] { matcher_loop(); });
      publisher_thread_ = std::thread([this] { publisher_loop(); });
    } else {
      former_thread_ = std::thread([this] { serial_drain_loop(); });
    }
    // Async durability: the timed group sync runs on its own thread so an
    // fdatasync never sits in any drain stage's critical path. Commit
    // policy needs no syncer -- the publisher's ensure_durable barrier
    // owns the device there.
    if (journal_.active() &&
        cfg_.journal.policy == JournalPolicy::kAsync)
      syncer_thread_ = std::thread([this] { syncer_loop(); });
  }

  // Drains everything already submitted, then joins. Idempotent.
  void stop() {
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
    wake_former();
    wake_stages();
    {
      std::lock_guard<std::mutex> lk(sync_mu_);
      sync_cv_.notify_all();
    }
    former_thread_.join();
    if (cfg_.pipeline) {
      matcher_thread_.join();
      publisher_thread_.join();
    }
    if (syncer_thread_.joinable()) syncer_thread_.join();
    // Clean-shutdown barrier: every appended record becomes durable
    // regardless of policy (stage threads are joined, so the writer fd is
    // quiescent), and any pending checkpoint finishes on its own thread.
    journal_.sync_all();
    running_ = false;
  }

  // Blocks until every update submitted so far has been applied (or
  // absorbed). Producers may keep submitting; the barrier covers only
  // submissions that happened-before the call.
  void drain_until_idle() const {
    std::uint64_t target = submitted_.load(std::memory_order_acquire);
    while (completed_.load(std::memory_order_acquire) < target)
      std::this_thread::yield();
  }

  // Clears the stats (prewarm separation in the benches). Blocks until the
  // owning stage acknowledges (in the pipeline a reset MARKER flows
  // through all three stages, so every window formed before the call is
  // folded in before the clear); call only from outside the stage threads,
  // ideally when idle.
  // (Also re-zeroes the admission-side lane counters and the overload
  // tracking, so post-reset conservation starts from a clean slate.)
  void reset_stats() {
    if (!running_) {
      stats_.clear();
      reset_overload_tracking();
      return;
    }
    reset_pending_.store(true, std::memory_order_release);
    wake_former();
    wake_stages();
    while (reset_pending_.load(std::memory_order_acquire))
      std::this_thread::yield();
  }

  // ---- producer API (any thread) ---------------------------------------

  // Submits one edge insertion on priority lane `lane` (0 = highest, and
  // the default). Returns its ticket, or kShedTicket when the admission
  // policy shed the request at the door (reject-new, full lane). With the
  // default policy (kNone) it blocks under backpressure (bounded-backoff
  // spin) and always returns a real ticket.
  std::uint64_t submit_insert(std::span<const VertexId> vs,
                              std::uint8_t lane = 0) {
    assert(vs.size() >= 1 && vs.size() <= UpdateRequest::kMaxRank &&
           vs.size() <= cfg_.matcher.max_rank);
    UpdateRequest r;
    r.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    // Clamp ONCE at the API edge so the admission counters and the
    // former's per-lane accounting agree on the request's class.
    r.lane = lane < cfg_.admission.lanes
                 ? lane
                 : static_cast<std::uint8_t>(cfg_.admission.lanes - 1);
    // The clamp backs the assert up in release builds: an oversized span
    // is a contract violation either way, but it must never become an
    // out-of-bounds write -- neither into the inline endpoint array here
    // nor into the pool's fixed-stride record at apply time.
    std::size_t cap = cfg_.matcher.max_rank < UpdateRequest::kMaxRank
                          ? cfg_.matcher.max_rank
                          : UpdateRequest::kMaxRank;
    std::size_t n = vs.size() < cap ? vs.size() : cap;
    r.rank = static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      assert(vs[i] < cfg_.max_vertices);
      r.v[i] = vs[i];
    }
    if (push(r) == PushResult::kShed) return kShedTicket;
    return r.ticket;
  }

  std::uint64_t submit_insert(VertexId u, VertexId v,
                              std::uint8_t lane = 0) {
    VertexId vs[2] = {u, v};
    return submit_insert(std::span<const VertexId>(vs, 2), lane);
  }

  // Revokes a previously returned ticket. Must happen after the owning
  // submit_insert returned, and on the SAME lane (FIFO holds per lane);
  // deleting a ticket twice is tolerated (the second is dropped and
  // counted in ServiceStats::dropped_deletes), as is deleting a ticket
  // whose insert was shed (stale or evicted) -- the revoke simply misses.
  // Deletes are never shed: this always blocks until admitted.
  void submit_delete(std::uint64_t ticket, std::uint8_t lane = 0) {
    UpdateRequest r;
    r.ticket = ticket;
    r.rank = 0;
    r.lane = lane < cfg_.admission.lanes
                 ? lane
                 : static_cast<std::uint8_t>(cfg_.admission.lanes - 1);
    push(r);
  }

  // ---- snapshot reads (any thread, concurrent with applies) ------------

  // Epoch is even between publishes, odd during one. Single-word reads
  // below are always safe; bracket multi-word reads with read_consistent.
  std::uint64_t snapshot_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // The matched edge taking vertex v in the last published snapshot, or
  // kInvalidEdge when v is free (or out of snapshot range).
  EdgeId match_of(VertexId v) const {
    if (v >= cfg_.max_vertices) return graph::kInvalidEdge;
    return snap_match_[v].load(std::memory_order_acquire);
  }

  bool is_matched(VertexId v) const {
    return match_of(v) != graph::kInvalidEdge;
  }

  std::size_t matched_count() const {
    return snap_matched_.load(std::memory_order_acquire);
  }

  // Runs f() against a single snapshot epoch: retries while a publish is
  // in flight or one completed mid-read. f must only read through the
  // accessors above and must be side-effect-free on retry.
  template <typename F>
  auto read_consistent(F&& f) const {
    for (;;) {
      std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if (e & 1) {
        std::this_thread::yield();
        continue;
      }
      auto r = f();
      if (epoch_.load(std::memory_order_seq_cst) == e) return r;
    }
  }

  // ---- idle-time inspection (tests / benches) --------------------------

  // The structure underneath. Safe only while the stage threads are idle
  // (after stop() or a drain_until_idle() with producers quiesced).
  const M& matcher() const { return dm_; }

  // Live edge id of a ticket, kInvalidEdge if never applied or deleted.
  // Same safety rule as matcher().
  EdgeId edge_of_ticket(std::uint64_t ticket) const {
    return tickets_.find(ticket);
  }

  // The ticket -> edge-id map itself (capacity/live bounds in the
  // recycling tests). Same safety rule as matcher().
  const TicketTable& ticket_table() const { return tickets_; }

  const ServiceStats& stats() const { return stats_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  // The serve layer carries edge endpoints inline in the ring cells, so
  // the matcher rank it can serve is capped at UpdateRequest::kMaxRank
  // regardless of what the underlying pool would accept.
  static ServiceConfig capped(ServiceConfig cfg) {
    if (cfg.matcher.max_rank > UpdateRequest::kMaxRank)
      cfg.matcher.max_rank = UpdateRequest::kMaxRank;
    // Lane bounds mirrored here so the submit-side clamp and the
    // AdmissionQueue's own clamp agree.
    if (cfg.admission.lanes < 1) cfg.admission.lanes = 1;
    if (cfg.admission.lanes > kMaxLanes) cfg.admission.lanes = kMaxLanes;
    return cfg;
  }

 public:

  // Live monitoring counters (any thread).
  std::uint64_t submitted_updates() const {
    return submitted_.load(std::memory_order_acquire);
  }
  std::uint64_t completed_updates() const {
    return completed_.load(std::memory_order_acquire);
  }

  // The degradation state machine (any thread, always current to within
  // one drain-loop iteration). See serve/admission.h for the states.
  OverloadState overload_state() const {
    return overload_.load(std::memory_order_acquire);
  }
  std::uint64_t overload_transitions() const {
    return overload_transitions_.load(std::memory_order_acquire);
  }

  // The admission layer's own view (per-lane offered/shed counters, lane
  // occupancy). Counters are live atomics; exact only when idle.
  const AdmissionQueue& admission() const { return queue_; }

  // Merged per-lane accounting: admission-side counters + commit-side
  // stats. Conservation -- offered == committed + shed_reject +
  // shed_evict + shed_stale -- holds exactly when the service is idle and
  // producers are quiesced (same safety rule as stats()).
  struct LaneReport {
    std::uint64_t offered = 0;      // submit_* calls routed to this lane
    std::uint64_t shed_reject = 0;  // rejected at admission (reject-new)
    std::uint64_t shed_evict = 0;   // evicted oldest (drop-oldest)
    std::uint64_t shed_stale = 0;   // admit-budget sheds at form time
    std::uint64_t committed = 0;    // applied + absorbed + dropped-dead
    const util::LatencyHistogram* latency = nullptr;  // committed only
  };
  LaneReport lane_report(std::size_t lane) const {
    LaneReport lr;
    lr.offered = queue_.offered(lane);
    lr.shed_reject = queue_.shed_reject(lane);
    lr.shed_evict = queue_.shed_evict(lane);
    lr.shed_stale = stats_.lane_shed_stale[lane];
    lr.committed = stats_.lane_committed[lane];
    lr.latency = &stats_.lane_latency[lane];
    return lr;
  }

  // ---- durability / recovery (DESIGN.md S14) ---------------------------

  // The fault injector wired through admission, drain, and journal (fired
  // counters via fi_.report(); all-zero when injection is compiled out).
  const FaultInjector& fault_injector() const { return fi_; }

  // The write-ahead journal (appended/durable watermarks, sync and byte
  // counters; inert when the policy is off).
  const Journal& journal() const { return journal_; }

  std::uint64_t checkpoints_written() const { return ckpt_writer_.written(); }
  // Snapshots dropped because the background writer was still busy --
  // checkpoint lag lengthens replay but never stalls the drain.
  std::uint64_t checkpoints_skipped() const { return ckpt_skipped_; }

  // What construction-time recovery did (all-default when the journal is
  // off or the directory was empty: a cold start).
  struct RecoveryInfo {
    bool ran = false;  // a checkpoint was imported or a record replayed
    std::uint64_t checkpoint_seqno = 0;  // 0 = no (valid) checkpoint found
    std::uint64_t replayed_windows = 0;  // journal records re-applied
    // Post-apply epoch cross-checks that missed during replay. Always 0
    // on an intact log; nonzero means the log and the matcher disagree
    // about the trajectory (a logic bug or a cross-version file).
    std::uint64_t epoch_mismatches = 0;
    bool import_failed = false;  // frame-valid checkpoint failed import
  };
  const RecoveryInfo& recovery_info() const { return recovery_; }

  // Order-canonical digest of the durable logical state: the matcher's
  // state fingerprint folded with the sorted live (ticket, edge id)
  // pairs. Equal fingerprints between a crashed+recovered service and an
  // uncrashed one are the bit-identity acceptance check (DESIGN.md S14).
  // Same idle-only safety rule as matcher().
  std::uint64_t recovery_fingerprint() const {
    std::vector<std::pair<std::uint64_t, EdgeId>> ts;
    tickets_.for_each(
        [&](std::uint64_t t, EdgeId id) { ts.emplace_back(t, id); });
    std::sort(ts.begin(), ts.end());
    std::uint64_t h = dm_.state_fingerprint();
    h = hash64(h, ts.size());
    for (const auto& [t, id] : ts) h = hash64(h, hash64(t, id));
    return h;
  }

 private:
  // One in-flight unit of the pipeline. The former fills `formed` (plus
  // the bookkeeping samples), the matcher stage fills the applied counts
  // and the captured snapshot values, the publisher folds everything into
  // stats_ and recycles the record. Buffers keep their capacity across
  // laps, so a steady-state pipeline does not allocate.
  struct Window {
    FormedBatch formed;
    FlushReason why = FlushReason::kDrain;
    std::size_t queue_hwm_sample = 0;
    std::uint64_t first_enqueue_ns = 0;
    bool reset_marker = false;   // publisher clears stats, nothing applies
    bool shutdown = false;       // sentinel: each stage exits after it
    // Matcher-stage capture: post-batch values of the touched vertices.
    // The publisher writes THESE under the seqlock -- never live matcher
    // state, which window N's apply may be mutating concurrently.
    std::vector<std::pair<VertexId, EdgeId>> snap_updates;
    std::size_t matched_count = 0;
    bool has_publish = false;
    std::size_t applied_inserts = 0;
    std::size_t applied_deletes = 0;
    std::size_t dropped_deletes = 0;
    // Journal sequence number of this window, 0 when it was not journaled
    // (journal off, or an all-absorbed window). The publisher's
    // commit-policy durability barrier keys on it.
    std::uint64_t seqno = 0;
  };

  // Window pool depth = how far the former may run ahead of the matcher.
  // Small: each extra window is one more batch of ingest-to-commit latency
  // hidden in the pipe before backpressure reaches the producers.
  static constexpr std::size_t kWindows = 4;

  PushResult push(UpdateRequest& r) {
    r.t_enqueue_ns = now_ns();
    // fetch_add BEFORE the ring push: drain_until_idle's target must cover
    // this request once push() returns. admitted_ is bumped optimistically
    // for the same reason -- the former's shutdown drain waits for
    // popped == admitted_, and the count must cover a producer that has
    // claimed but not yet landed its ring slot; a shed rolls it back.
    submitted_.fetch_add(1, std::memory_order_acq_rel);
    admitted_.fetch_add(1, std::memory_order_acq_rel);
    PushResult pr = queue_.admit(r);
    if (pr == PushResult::kShed) {
      // Rejected at the door: never entered a ring, terminal right here.
      // completed_ advances so drain_until_idle's conservation holds.
      admitted_.fetch_sub(1, std::memory_order_acq_rel);
      completed_.fetch_add(1, std::memory_order_acq_rel);
      return pr;
    }
    wake_former();
    return pr;
  }

  // Cheap on the hot path: one relaxed-ish load; the mutex+notify only
  // when the former actually parked.
  void wake_former() {
    if (parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(park_mu_);
      park_cv_.notify_one();
    }
  }

  // Downstream-stage wakeup (matcher/publisher park on stage_cv_). Called
  // after every inter-stage push; the timed wait below bounds any wakeup
  // lost to the parked-flag race at one timeout, never a hang.
  void wake_stages() {
    if (stage_parked_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(stage_mu_);
      stage_cv_.notify_all();
    }
  }

  // ---- stage threads ---------------------------------------------------

  // Consecutive empty iterations before a stage thread parks on its
  // condition variable. Large enough that a loaded service never parks
  // between windows; small enough that an idle service stops burning its
  // cores within microseconds.
  static constexpr std::size_t kIdleSpinsBeforePark = 4096;

  Window* acquire_free_window() {
    Window* w = nullptr;
    while (!free_ring_.try_pop(w)) std::this_thread::yield();
    return w;
  }

  void send_to_matcher(Window* w) {
    while (!apply_ring_.try_push(w)) std::this_thread::yield();
    wake_stages();
  }

  // Stage 1: pop the MPSC ring, form windows, decide flushes. Owns
  // former_ and the per-window bookkeeping samples. Exits by flowing a
  // shutdown sentinel to the downstream stages.
  void former_loop() {
    UpdateRequest r;
    std::size_t idle_spins = 0;
    std::uint64_t popped = 0;
    std::size_t hwm_accum = 0;
    std::uint64_t first_accum = 0;
    bool reset_sent = false;
    for (;;) {
      // Sample the backlog BEFORE draining it into the window: sampling
      // after the pop loop would only ever see the >max_batch leftover and
      // report hwm 0 for any burst the window absorbed.
      std::size_t qs = queue_.approx_size();
      if (qs > hwm_accum) hwm_accum = qs;
      bool progressed = false;
      std::uint64_t evict_shed = 0;
      while (!former_.window_full() &&
             queue_.try_pop(r, &popped, &evict_shed)) {
        if (first_accum == 0) first_accum = r.t_enqueue_ns;
        former_.add(r);
        progressed = true;
      }
      if (evict_shed != 0) {
        // Drop-oldest evictions: consumed from the rings and terminal
        // right here -- they never enter a window, so this stage, not the
        // publisher, retires them.
        completed_.fetch_add(evict_shed, std::memory_order_acq_rel);
        progressed = true;
      }

      std::uint64_t now = now_ns();
      bool stopping = stop_.load(std::memory_order_acquire);
      FlushReason why = FlushReason::kDrain;
      bool flush = former_.should_flush(now, &why);
      if (!flush && stopping && !former_.empty() &&
          queue_.approx_size() == 0) {
        flush = true;
        why = FlushReason::kDrain;
      }
      if (flush) {
        Window* w = acquire_free_window();
        former_.form(w->formed, now);
        drained_stale_ += w->formed.shed_stale;
        w->why = why;
        w->reset_marker = false;
        w->shutdown = false;
        w->queue_hwm_sample = hwm_accum;
        w->first_enqueue_ns = first_accum;
        hwm_accum = 0;
        first_accum = 0;
        send_to_matcher(w);
        progressed = true;
      }
      update_overload_state(qs, now);

      if (reset_pending_.load(std::memory_order_acquire)) {
        // One marker per request: reset_pending_ stays up until the
        // publisher clears it, well after this iteration.
        if (!reset_sent && former_.empty()) {
          Window* w = acquire_free_window();
          w->reset_marker = true;
          w->shutdown = false;
          send_to_matcher(w);
          reset_sent = true;
          hwm_accum = 0;
          first_accum = 0;
          reset_overload_tracking();
          progressed = true;
        }
      } else {
        reset_sent = false;
      }

      if (!progressed) {
        // Exit only when every ADMITTED update has been popped, not
        // merely when the ring looks empty: a producer in push() may have
        // bumped admitted_ without having landed its ring slot yet (the
        // counter is incremented before the push for exactly this
        // reason), and exiting then would strand its update and hang any
        // later drain_until_idle. (Rejected-at-the-door sheds roll
        // admitted_ back, so they can't wedge this wait.)
        if (stopping && former_.empty() &&
            popped == admitted_.load(std::memory_order_acquire)) {
          Window* w = acquire_free_window();
          w->shutdown = true;
          w->reset_marker = false;
          send_to_matcher(w);
          return;
        }
        // Truly idle (no window aging toward its deadline): spin briefly,
        // then park instead of burning the core forever. The park is a
        // TIMED wait, so even a wakeup lost to the store/load race between
        // a producer's push and parked_ going up costs one timeout, never
        // a hang; a pending window keeps the thread yielding instead (its
        // deadline is the clock that matters there).
        if (former_.empty() && !stopping &&
            ++idle_spins >= kIdleSpinsBeforePark) {
          std::unique_lock<std::mutex> lk(park_mu_);
          parked_.store(true, std::memory_order_seq_cst);
          if (queue_.approx_size() == 0 &&
              !stop_.load(std::memory_order_acquire) &&
              !reset_pending_.load(std::memory_order_acquire))
            park_cv_.wait_for(lk, std::chrono::milliseconds(10));
          parked_.store(false, std::memory_order_seq_cst);
          // idle_spins stays saturated: a timeout wake with still-nothing
          // re-parks on the next iteration instead of respinning the full
          // budget (which would burn ~10% of a core while "idle").
        } else {
          std::this_thread::yield();
        }
      } else {
        idle_spins = 0;
      }
    }
  }

  // Bounded idle wait for the two downstream stages: spin, then a timed
  // park on the shared stage_cv_ (upstream pushes notify via
  // wake_stages).
  void stage_idle(std::size_t& spins) {
    if (++spins < kIdleSpinsBeforePark) {
      std::this_thread::yield();
      return;
    }
    std::unique_lock<std::mutex> lk(stage_mu_);
    stage_parked_.fetch_add(1, std::memory_order_seq_cst);
    stage_cv_.wait_for(lk, std::chrono::milliseconds(10));
    stage_parked_.fetch_sub(1, std::memory_order_seq_cst);
    // spins stays saturated; see the former's park comment.
  }

  // Stage 2: the only thread that mutates the matcher, the ticket table,
  // and the delta buffer. Applies windows in FIFO order -- exactly the
  // serial drain's apply sequence, hence the bit-identical contract.
  void matcher_loop() {
    std::size_t spins = 0;
    for (;;) {
      Window* w = nullptr;
      if (!apply_ring_.try_pop(w)) {
        stage_idle(spins);
        continue;
      }
      spins = 0;
      if (!w->reset_marker && !w->shutdown) apply_formed(*w);
      bool last = w->shutdown;  // w is unowned after the push below
      while (!publish_ring_.try_push(w)) std::this_thread::yield();
      wake_stages();
      if (last) return;
    }
  }

  // Stage 3: owns stats_ and the published snapshot; recycles windows.
  void publisher_loop() {
    std::size_t spins = 0;
    for (;;) {
      Window* w = nullptr;
      if (!publish_ring_.try_pop(w)) {
        stage_idle(spins);
        continue;
      }
      spins = 0;
      if (w->shutdown) {
        // Return the sentinel too, so a stopped service can restart with
        // its full window pool.
        free_ring_.try_push(w);
        return;
      }
      if (w->reset_marker) {
        stats_.clear();
        reset_pending_.store(false, std::memory_order_release);
      } else {
        publish_window(*w);
      }
      free_ring_.try_push(w);  // never full: only kWindows circulate
    }
  }

  // ---- serial drain (pipeline=false): same stages, one thread ----------

  void serial_drain_loop() {
    UpdateRequest r;
    std::size_t idle_spins = 0;
    Window& win = *pool_[0];
    for (;;) {
      std::size_t qs = queue_.approx_size();
      if (qs > stats_.queue_hwm) stats_.queue_hwm = qs;
      bool progressed = false;
      std::uint64_t dummy_popped = 0;
      std::uint64_t evict_shed = 0;
      while (!former_.window_full() &&
             queue_.try_pop(r, &dummy_popped, &evict_shed)) {
        if (stats_.first_enqueue_ns == 0)
          stats_.first_enqueue_ns = r.t_enqueue_ns;
        former_.add(r);
        progressed = true;
      }
      if (evict_shed != 0) {
        completed_.fetch_add(evict_shed, std::memory_order_acq_rel);
        progressed = true;
      }

      std::uint64_t now = now_ns();
      bool stopping = stop_.load(std::memory_order_acquire);
      FlushReason why = FlushReason::kDrain;
      bool flush = former_.should_flush(now, &why);
      if (!flush && stopping && !former_.empty() &&
          queue_.approx_size() == 0) {
        flush = true;
        why = FlushReason::kDrain;
      }
      if (flush) {
        former_.form(win.formed, now);
        drained_stale_ += win.formed.shed_stale;
        win.why = why;
        win.queue_hwm_sample = 0;   // folded live above
        win.first_enqueue_ns = 0;   // recorded live above
        apply_formed(win);
        publish_window(win);
        progressed = true;
      }
      update_overload_state(qs, now);

      if (reset_pending_.load(std::memory_order_acquire) &&
          former_.empty()) {
        stats_.clear();
        reset_overload_tracking();
        reset_pending_.store(false, std::memory_order_release);
      }

      if (!progressed) {
        if (stopping && former_.empty() &&
            completed_.load(std::memory_order_acquire) ==
                submitted_.load(std::memory_order_acquire))
          return;
        if (former_.empty() && !stopping &&
            ++idle_spins >= kIdleSpinsBeforePark) {
          std::unique_lock<std::mutex> lk(park_mu_);
          parked_.store(true, std::memory_order_seq_cst);
          if (queue_.approx_size() == 0 &&
              !stop_.load(std::memory_order_acquire) &&
              !reset_pending_.load(std::memory_order_acquire))
            park_cv_.wait_for(lk, std::chrono::milliseconds(10));
          parked_.store(false, std::memory_order_seq_cst);
        } else {
          std::this_thread::yield();
        }
      } else {
        idle_spins = 0;
      }
    }
  }

  // ---- overload state machine (drain-thread-driven) --------------------

  // Quiet period after the newest shed before kShedding decays. Long
  // enough that a sustained-overload run reads as one shedding episode,
  // short enough that the service reports recovery within human-visible
  // time after the burst ends.
  static constexpr std::uint64_t kSheddingHoldNs = 10'000'000;  // 10 ms

  // Called once per drain-loop iteration by the single drain thread.
  // occupancy is the backlog sample taken at the top of the iteration;
  // `now` the iteration's steady-clock instant.
  void update_overload_state(std::size_t occupancy, std::uint64_t now) {
    std::uint64_t shed = queue_.total_shed() + drained_stale_;
    // '>' rather than '!=' so a counter reset (reset_stats) cannot fake a
    // fresh shed: after a reset `shed` restarts below shed_seen_ and the
    // tracking is re-zeroed by reset_overload_tracking().
    if (shed > shed_seen_) {
      shed_seen_ = shed;
      last_shed_ns_ = now;
    }
    OverloadState s = OverloadState::kHealthy;
    if (last_shed_ns_ != 0 && now - last_shed_ns_ < kSheddingHoldNs)
      s = OverloadState::kShedding;
    else if (occupancy * 2 >= queue_.capacity())
      s = OverloadState::kBacklogged;
    if (s != overload_.load(std::memory_order_relaxed)) {
      overload_.store(s, std::memory_order_release);
      overload_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void reset_overload_tracking() {
    queue_.reset_counters();  // producers are quiesced per the reset rule
    drained_stale_ = 0;
    shed_seen_ = 0;
    last_shed_ns_ = 0;
  }

  // ---- shared stage bodies ---------------------------------------------

  // Matcher-stage body: apply one formed window to the structure, resolve
  // delete tickets, and capture the touched-vertex snapshot values into
  // the window. Caller is the single matcher-owning thread of its mode.
  void apply_formed(Window& w) {
    fi_.maybe_stall_drain();  // fault injection: simulate a lagging drain
    delta_.clear();

    if (!w.formed.inserts.empty()) {
      auto ids = dm_.insert_edges(w.formed.inserts);
      for (std::size_t i = 0; i < ids.size(); ++i)
        tickets_.put(w.formed.insert_tickets[i], ids[i]);
    }

    del_ids_.clear();
    w.dropped_deletes = 0;
    for (std::uint64_t t : w.formed.delete_tickets) {
      EdgeId id = tickets_.take(t);
      if (id == graph::kInvalidEdge) {
        ++w.dropped_deletes;
        continue;
      }
      del_ids_.push_back(id);
    }
    if (!del_ids_.empty())
      dm_.delete_edges(std::span<const EdgeId>(del_ids_));

    w.applied_inserts = w.formed.inserts.size();
    w.applied_deletes = del_ids_.size();
    w.snap_updates.clear();
    for (VertexId v : delta_) {
      if (v >= cfg_.max_vertices) continue;  // outside the snapshot window
      w.snap_updates.emplace_back(v, dm_.match_of(v));
    }
    w.matched_count = dm_.matched_count();
    w.has_publish = !delta_.empty() || w.formed.update_count() != 0;

    // Journal the committed window (DESIGN.md S14). The FormedBatch is
    // post-shed and post-annihilation, so sheds never enter the journal by
    // construction; an all-absorbed window (update_count 0) leaves no
    // matcher state behind and is not worth a record. The epochs recorded
    // are POST-apply -- replay's per-record cross-check. Durability (when
    // the policy demands it) is the publisher's job, keyed on w.seqno.
    w.seqno = 0;
    if (journal_.active() && w.formed.update_count() != 0) {
      std::uint64_t seq = ++window_seqno_;
      journal_.append_window(w.formed, seq, dm_.insert_epochs(),
                             dm_.settle_epochs(), fi_);
      w.seqno = seq;
      maybe_checkpoint();
    }
  }

  // Publisher-stage body: epoch-seqlock publish of the captured values,
  // then fold the window into stats_ and the completion counter. Caller
  // is the single stats-owning thread of its mode.
  void publish_window(const Window& w) {
    if (w.has_publish) {
      std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      epoch_.store(e + 1, std::memory_order_seq_cst);
      for (const auto& [v, id] : w.snap_updates)
        snap_match_[v].store(id, std::memory_order_release);
      snap_matched_.store(w.matched_count, std::memory_order_release);
      epoch_.store(e + 2, std::memory_order_seq_cst);
    }

    // Durability barrier BEFORE the commit instant is stamped: under
    // policy commit, a window's completion (and its recorded latency)
    // includes the group fsync that made its journal record durable --
    // nothing is acknowledged ahead of the device. Under async this is a
    // no-op: the background syncer thread owns the timed group sync, so
    // the drain never blocks on the device (on one core a publisher-side
    // fdatasync would stall the whole pipeline for its duration).
    if (w.seqno != 0) journal_.ensure_durable(w.seqno);

    // Commit instant: every request of this window (applied or absorbed)
    // is now observable through the snapshot.
    std::uint64_t commit = now_ns();
    stats_.last_commit_ns = commit;
    if (stats_.first_enqueue_ns == 0 && w.first_enqueue_ns != 0)
      stats_.first_enqueue_ns = w.first_enqueue_ns;
    if (w.queue_hwm_sample > stats_.queue_hwm)
      stats_.queue_hwm = w.queue_hwm_sample;
    if (cfg_.record_latencies) {
      auto rec = [&](const std::vector<std::uint64_t>& ts,
                     const std::vector<std::uint8_t>& lanes) {
        for (std::size_t i = 0; i < ts.size(); ++i) {
          double us = static_cast<double>(commit - ts[i]) * 1e-3;
          stats_.latency.record(us);
          std::uint8_t l = i < lanes.size() ? lanes[i] : 0;
          stats_.lane_latency[l < kMaxLanes ? l : kMaxLanes - 1].record(us);
        }
      };
      rec(w.formed.insert_enqueue_ns, w.formed.insert_lanes);
      rec(w.formed.delete_enqueue_ns, w.formed.delete_lanes);
      rec(w.formed.absorbed_enqueue_ns, w.formed.absorbed_lanes);
    }
    ++stats_.batches;
    std::size_t upd = w.formed.update_count();
    stats_.batch_updates_sum += upd;
    if (upd > stats_.batch_updates_max) stats_.batch_updates_max = upd;
    stats_.applied_inserts += w.applied_inserts;
    stats_.applied_deletes += w.applied_deletes;
    stats_.dropped_deletes += w.dropped_deletes;
    stats_.annihilated += w.formed.annihilated;
    stats_.deduped_deletes += w.formed.deduped;
    stats_.shed_stale += w.formed.shed_stale;
    for (std::size_t l = 0; l < kMaxLanes; ++l) {
      // Everything in the window except its stale-shed inserts commits.
      stats_.lane_committed[l] +=
          w.formed.lane_requests[l] - w.formed.lane_stale[l];
      stats_.lane_shed_stale[l] += w.formed.lane_stale[l];
    }
    switch (w.why) {
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kCostModel: ++stats_.flush_cost; break;
      case FlushReason::kDeadline: ++stats_.flush_deadline; break;
      case FlushReason::kDrain: ++stats_.flush_drain; break;
    }
    completed_.fetch_add(w.formed.raw_requests, std::memory_order_acq_rel);
  }

  // ---- durability (DESIGN.md S14) --------------------------------------

  // Construction-time recovery: import the newest valid checkpoint (if
  // any) into the fresh matcher, then replay the journal suffix with
  // seqno greater than the checkpoint's through the NORMAL batch path --
  // the same insert_edges / ticket take / delete_edges sequence
  // apply_formed runs -- so the recovered trajectory is the uncrashed one
  // bit-for-bit (the keyed RNG streams make the epoch counters the whole
  // RNG position; the recovery tests check via recovery_fingerprint).
  // Runs strictly before any stage thread exists.
  void recover() {
    std::uint64_t ticket_bound = 0;
    CheckpointData ck;
    if (load_newest_checkpoint(cfg_.journal.dir, ck)) {
      if (!dm_.import_state(
              std::span<const std::uint64_t>(ck.matcher_words))) {
        // A frame-valid checkpoint that fails matcher-level validation can
        // only be a logic bug or a cross-version file. The matcher may be
        // partially populated, so stop and surface it rather than replay
        // on top.
        recovery_.import_failed = true;
        return;
      }
      recovery_.ran = true;
      recovery_.checkpoint_seqno = ck.seqno;
      window_seqno_ = ck.seqno;
      ticket_bound = ck.next_ticket;
      for (const auto& [t, id] : ck.tickets) tickets_.put(t, id);
    }
    JournalReplay rp(cfg_.journal.dir);
    JournalRecord rec;
    while (rp.next(rec)) {
      if (rec.seqno <= recovery_.checkpoint_seqno) continue;
      recovery_.ran = true;
      delta_.clear();
      if (!rec.inserts.empty()) {
        auto ids = dm_.insert_edges(rec.inserts);
        for (std::size_t i = 0; i < ids.size(); ++i)
          tickets_.put(rec.insert_tickets[i], ids[i]);
      }
      del_ids_.clear();
      for (std::uint64_t t : rec.delete_tickets) {
        EdgeId id = tickets_.take(t);
        if (id != graph::kInvalidEdge) del_ids_.push_back(id);
      }
      if (!del_ids_.empty())
        dm_.delete_edges(std::span<const EdgeId>(del_ids_));
      if (dm_.insert_epochs() != rec.insert_epoch ||
          dm_.settle_epochs() != rec.settle_epoch)
        ++recovery_.epoch_mismatches;
      ++recovery_.replayed_windows;
      window_seqno_ = rec.seqno;
      for (std::uint64_t t : rec.insert_tickets)
        if (t + 1 > ticket_bound) ticket_bound = t + 1;
    }
    delta_.clear();
    // Safe upper bound: the pre-crash run may have handed out higher
    // tickets (sheds consume tickets but never journal); all that matters
    // is that no new ticket collides with a journaled or live one.
    next_ticket_.store(ticket_bound, std::memory_order_release);
    if (recovery_.ran) {
      // Rebuild the published snapshot from the recovered matcher. Single
      // threaded here, but the epoch still moves odd -> even so the
      // seqlock invariant holds from the first published state on.
      std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      epoch_.store(e + 1, std::memory_order_seq_cst);
      for (VertexId v = 0; v < cfg_.max_vertices; ++v)
        snap_match_[v].store(dm_.match_of(v), std::memory_order_relaxed);
      snap_matched_.store(dm_.matched_count(), std::memory_order_release);
      epoch_.store(e + 2, std::memory_order_seq_cst);
    }
  }

  // Matcher-stage checkpoint cadence: every ckpt_every journaled windows,
  // serialize the matcher + ticket table BETWEEN windows (an in-memory
  // walk; the matcher thread owns both structures right here) and hand
  // the snapshot to the background writer, which does all disk I/O. If
  // the writer is still busy the snapshot is skipped and counted, never
  // queued.
  void maybe_checkpoint() {
    if (cfg_.journal.ckpt_every == 0) return;
    if (++windows_since_ckpt_ < cfg_.journal.ckpt_every) return;
    windows_since_ckpt_ = 0;
    CheckpointData d;
    d.seqno = window_seqno_;
    d.next_ticket = next_ticket_.load(std::memory_order_acquire);
    dm_.export_state(d.matcher_words);
    tickets_.for_each(
        [&](std::uint64_t t, EdgeId id) { d.tickets.emplace_back(t, id); });
    std::sort(d.tickets.begin(), d.tickets.end());
    if (!ckpt_writer_.submit(std::move(d))) ++ckpt_skipped_;
  }

  // Async-policy durability thread: one fdatasync per fsync_every_us,
  // entirely off the drain's critical path. Writes to the journal fd
  // (matcher-stage appends) compose with fdatasync from here without
  // extra locking -- the kernel orders them -- and Journal's durable_seq_
  // accounting is a CAS-max over atomics. Commit policy never starts this
  // thread; there the publisher's per-window ensure_durable barrier is
  // the only syncer.
  void syncer_loop() {
    std::unique_lock<std::mutex> lk(sync_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
      sync_cv_.wait_for(lk,
                        std::chrono::microseconds(cfg_.journal.fsync_every_us));
      if (stop_.load(std::memory_order_acquire)) break;
      lk.unlock();
      journal_.sync_all();
      lk.lock();
    }
  }

  ServiceConfig cfg_;
  M dm_;
  FaultInjector fi_;  // declared before queue_ (AdmissionQueue keeps &fi_)
  AdmissionQueue queue_;
  BatchFormer former_;

  std::thread former_thread_;
  std::thread matcher_thread_;
  std::thread publisher_thread_;
  std::thread syncer_thread_;        // async journal policy only
  std::mutex sync_mu_;               // syncer sleep/wake handshake
  std::condition_variable sync_cv_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> reset_pending_{false};
  std::mutex park_mu_;               // former idle-park handshake
  std::condition_variable park_cv_;
  std::atomic<bool> parked_{false};
  std::mutex stage_mu_;              // matcher/publisher idle-park
  std::condition_variable stage_cv_;
  std::atomic<int> stage_parked_{0};

  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};  // landed (or landing) in a ring
  std::atomic<std::uint64_t> completed_{0};

  // Overload state machine. The tracking fields are drain-thread-owned
  // (former / serial loop only); the state and transition count are
  // published through atomics for any-thread reads.
  std::uint64_t drained_stale_ = 0;   // admit-budget sheds seen by the drain
  std::uint64_t shed_seen_ = 0;       // last total-shed count observed
  std::uint64_t last_shed_ns_ = 0;    // instant of the newest shed
  std::atomic<OverloadState> overload_{OverloadState::kHealthy};
  std::atomic<std::uint64_t> overload_transitions_{0};

  // Matcher-stage-owned.
  TicketTable tickets_;
  std::vector<EdgeId> del_ids_;
  std::vector<VertexId> delta_;  // matcher's per-window touched vertices

  // Durability layer (DESIGN.md S14). The journal fd is shared between
  // the matcher stage (appends) and the publisher stage (syncs) -- its
  // watermarks are atomics; the seqno/cadence fields below are
  // matcher-stage-owned after construction.
  Journal journal_;
  CheckpointWriter ckpt_writer_;
  std::uint64_t window_seqno_ = 0;       // last journaled window
  std::uint64_t windows_since_ckpt_ = 0;
  std::uint64_t ckpt_skipped_ = 0;       // writer-busy checkpoint skips
  RecoveryInfo recovery_;

  // Publisher-stage-owned.
  ServiceStats stats_;

  // Snapshot (epoch seqlock over atomics; readers on any thread).
  std::unique_ptr<std::atomic<EdgeId>[]> snap_match_;
  std::atomic<std::size_t> snap_matched_{0};
  std::atomic<std::uint64_t> epoch_{0};

  // Window pool and inter-stage rings (free -> apply -> publish -> free).
  std::unique_ptr<Window> pool_[kWindows];
  SpscRing<Window*> free_ring_;
  SpscRing<Window*> apply_ring_;
  SpscRing<Window*> publish_ring_;
};

// The plain single-matcher service -- the name the rest of the codebase
// (and every pre-S15 test and bench) uses.
using MatchService = BasicMatchService<dyn::DynamicMatcher>;

}  // namespace parmatch::serve
