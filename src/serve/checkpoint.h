// serve/checkpoint.h -- durable snapshots of the serving state (DESIGN.md
// S14): the matcher's exported logical state (dyn/dynamic_matcher.h
// export_state -- pool, samples, matched set, chain orders, RNG epochs),
// the live ticket -> edge-id pairs, the window sequence number the snapshot
// is consistent WITH, and the producer ticket counter. A checkpoint plus
// the journal suffix with seqno greater than its own reconstructs the
// pre-crash matcher bit-identically (the recovery proof sketch in
// DESIGN.md S14); it is also exactly the byte stream a future sharded
// deployment ships to hand a shard to another owner (ROADMAP scale-out
// item).
//
// Write protocol, crash-safe by construction:
//   serialize (matcher stage, in memory)  -->  background writer thread:
//   write ckpt-<seqno>.tmp  -->  fdatasync  -->  rename to ckpt-<seqno>.ckpt
// The rename is atomic, so a reader never sees a half-written checkpoint
// file under its final name; the payload is one CRC32C-framed record, so
// even a corrupted file (bit rot, torn rename on a broken fs) fails
// validation instead of poisoning recovery -- load_newest_checkpoint walks
// candidates newest-first and falls back to the next older one. The last
// kKeepDefault checkpoints are retained; older ones are pruned after each
// successful write.
//
// The snapshot-epoch split is what keeps checkpointing off the drain's
// critical path: the matcher stage serializes BETWEEN windows (it owns the
// structure, so the copy is consistent by exclusion -- an O(state) memory
// walk, no I/O), and all disk work happens on the writer thread. If the
// writer is still busy with the previous checkpoint, the snapshot is
// SKIPPED, never queued: falling behind on checkpoints lengthens replay,
// it must not stall serving.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/edge.h"
#include "util/io/record_log.h"

namespace parmatch::serve {

struct CheckpointData {
  std::uint64_t seqno = 0;        // consistent with windows 1..seqno applied
  std::uint64_t next_ticket = 0;  // safe resume point for the ticket counter
  std::vector<std::uint64_t> matcher_words;  // DynamicMatcher::export_state
  // Live (ticket, edge id) pairs sorted by ticket -- canonical order, so
  // the checkpoint bytes (and any fingerprint over them) are independent
  // of the table's probe layout.
  std::vector<std::pair<std::uint64_t, graph::EdgeId>> tickets;
};

inline std::string checkpoint_path(const std::string& dir,
                                   std::uint64_t seqno) {
  return dir + "/ckpt-" + std::to_string(seqno) + ".ckpt";
}

namespace detail {

inline constexpr std::uint64_t kCkptMagic = 0x504D'434B'5054'3031ull;
inline constexpr std::uint64_t kCkptVersion = 1;

inline void encode_checkpoint(const CheckpointData& d,
                              std::vector<std::uint64_t>& out) {
  out.clear();
  out.push_back(kCkptMagic);
  out.push_back(kCkptVersion);
  out.push_back(d.seqno);
  out.push_back(d.next_ticket);
  out.push_back(d.matcher_words.size());
  out.insert(out.end(), d.matcher_words.begin(), d.matcher_words.end());
  out.push_back(d.tickets.size());
  for (const auto& [t, id] : d.tickets) {
    out.push_back(t);
    out.push_back(id);
  }
}

inline bool decode_checkpoint(const std::vector<unsigned char>& raw,
                              CheckpointData& d) {
  if (raw.size() % sizeof(std::uint64_t) != 0) return false;
  std::size_t n = raw.size() / sizeof(std::uint64_t);
  const std::uint64_t* w = reinterpret_cast<const std::uint64_t*>(raw.data());
  std::size_t p = 0;
  auto need = [&](std::uint64_t k) { return n - p >= k; };
  if (!need(5)) return false;
  if (w[p++] != kCkptMagic || w[p++] != kCkptVersion) return false;
  d.seqno = w[p++];
  d.next_ticket = w[p++];
  std::uint64_t nm = w[p++];
  if (!need(nm + 1)) return false;
  d.matcher_words.assign(w + p, w + p + nm);
  p += nm;
  std::uint64_t nt = w[p++];
  if (!need(2 * nt)) return false;
  d.tickets.clear();
  d.tickets.reserve(static_cast<std::size_t>(nt));
  for (std::uint64_t i = 0; i < nt; ++i) {
    std::uint64_t t = w[p++];
    std::uint64_t id = w[p++];
    d.tickets.emplace_back(t, static_cast<graph::EdgeId>(id));
  }
  return p == n;
}

}  // namespace detail

// Writes `d` crash-safely into `dir` (tmp + fdatasync + atomic rename).
// Synchronous; the service wraps it in CheckpointWriter to keep it off the
// drain. Returns false on any I/O failure (the tmp file is best-effort
// removed; a stale .tmp is ignored by recovery either way).
inline bool write_checkpoint(const std::string& dir, const CheckpointData& d) {
  std::string tmp = checkpoint_path(dir, d.seqno) + ".tmp";
  {
    util::io::RecordWriter w;
    if (!w.open(tmp)) return false;
    std::vector<std::uint64_t> words;
    detail::encode_checkpoint(d, words);
    if (!w.append(words.data(), words.size() * sizeof(std::uint64_t)) ||
        !w.sync()) {
      w.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, checkpoint_path(dir, d.seqno), ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Every ckpt-<seqno>.ckpt in `dir`, seqnos ascending.
inline std::vector<std::uint64_t> list_checkpoints(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& ent : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.size() <= 10 || name.compare(0, 5, "ckpt-") != 0 ||
        name.compare(name.size() - 5, 5, ".ckpt") != 0)
      continue;
    const std::string mid = name.substr(5, name.size() - 10);
    if (mid.empty() ||
        mid.find_first_not_of("0123456789") != std::string::npos)
      continue;
    seqs.push_back(std::strtoull(mid.c_str(), nullptr, 10));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

// Loads the newest checkpoint in `dir` that frames, checksums, and decodes
// cleanly, falling back to older ones on any validation failure. Returns
// false when none exists or none survives validation (cold start).
inline bool load_newest_checkpoint(const std::string& dir,
                                   CheckpointData& out) {
  auto seqs = list_checkpoints(dir);
  for (std::size_t i = seqs.size(); i-- > 0;) {
    util::io::RecordReader r;
    if (!r.open(checkpoint_path(dir, seqs[i]))) continue;
    std::vector<unsigned char> raw;
    if (!r.next(raw)) continue;  // torn/corrupt: fall back to older
    if (detail::decode_checkpoint(raw, out) && out.seqno == seqs[i])
      return true;
  }
  return false;
}

// Removes all but the newest `keep` checkpoints.
inline void prune_checkpoints(const std::string& dir, std::size_t keep) {
  auto seqs = list_checkpoints(dir);
  if (seqs.size() <= keep) return;
  for (std::size_t i = 0; i + keep < seqs.size(); ++i)
    std::remove(checkpoint_path(dir, seqs[i]).c_str());
}

// Depth-one background writer. submit() hands over a serialized snapshot
// if the worker is idle and returns false (skip, don't queue) otherwise --
// checkpointing must lag, never backpressure, the drain.
class CheckpointWriter {
 public:
  static constexpr std::size_t kKeepDefault = 2;

  CheckpointWriter() = default;
  ~CheckpointWriter() { stop(); }
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void start(std::string dir, std::size_t keep = kKeepDefault) {
    if (running_) return;
    dir_ = std::move(dir);
    keep_ = keep;
    stop_ = false;
    running_ = true;
    worker_ = std::thread([this] { loop(); });
  }

  // Matcher-stage hand-off. Moves `d` in on success; false = worker busy
  // (the caller keeps counting windows and retries at the next interval).
  bool submit(CheckpointData&& d) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_ || has_pending_) return false;
      pending_ = std::move(d);
      has_pending_ = true;
    }
    cv_.notify_one();
    return true;
  }

  // Finishes any pending write, then joins. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      stop_ = true;
    }
    cv_.notify_one();
    worker_.join();
    running_ = false;
  }

  std::uint64_t written() const {
    return written_.load(std::memory_order_acquire);
  }
  std::uint64_t failed() const {
    return failed_.load(std::memory_order_acquire);
  }

 private:
  void loop() {
    for (;;) {
      CheckpointData d;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return has_pending_ || stop_; });
        if (!has_pending_) return;  // stop with nothing pending
        d = std::move(pending_);
        has_pending_ = false;
      }
      if (write_checkpoint(dir_, d)) {
        written_.fetch_add(1, std::memory_order_acq_rel);
        prune_checkpoints(dir_, keep_);
      } else {
        failed_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }

  std::string dir_;
  std::size_t keep_ = kKeepDefault;
  std::thread worker_;
  bool running_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool has_pending_ = false;
  CheckpointData pending_;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace parmatch::serve
