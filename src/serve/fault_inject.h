// serve/fault_inject.h -- compiled-in fault injection for the serving
// front-end (DESIGN.md S13). Overload protection is exactly the code that
// normal traffic never exercises: ring-full admission decisions, shed
// accounting under pressure, drain stages that fell behind. This harness
// forces those paths deterministically so the fault suite and the E13
// overload bench can hit them on any machine, including one where the
// drain would otherwise always keep up.
//
// The hooks compile to constant no-ops unless the build enables them
// (-DPARMATCH_FAULT_INJECT=ON at CMake configure time, which defines
// PARMATCH_FAULT_INJECT for the whole interface library), so a production
// build carries zero overhead and zero behavioral risk. With the option
// on, each hook is still inert until its environment knob is set -- the
// injector re-reads the environment at construction (one per
// MatchService / AdmissionQueue), so tests can reconfigure between
// service instances without re-execing.
//
// Knobs (all counts are in calls/windows on the injected site):
//   PARMATCH_FI_RING_FULL_EVERY=N  every Nth admission attempt reports
//                                  ring-full even when space exists --
//                                  forces the shed/backpressure path.
//   PARMATCH_FI_STALL_EVERY=N      every Nth applied window, the drain
//   PARMATCH_FI_STALL_US=U         (matcher stage) first sleeps U us --
//                                  simulates a stage that fell behind, so
//                                  backlog, deadline flushes, and
//                                  admission pressure build upstream.
//   PARMATCH_FI_BURST_EVERY=N      every Nth paced submit in the E13
//   PARMATCH_FI_BURST_LEN=K        harness fires the next K submits
//                                  back-to-back, ignoring the arrival
//                                  schedule -- burst amplification on top
//                                  of any arrival model.
//
// Thread-safety: the call counters are relaxed atomics -- the "every Nth"
// cadence is exact under a single caller (the drain hooks) and
// approximately round-robin across concurrent producers, which is all a
// fault schedule needs. Determinism note: injected faults change batch
// PARTITIONS, not update semantics, so every correctness invariant
// (conservation, final-graph equality, snapshot agreement) must still
// hold with any injection active -- that is precisely what the fault
// suite asserts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <thread>

namespace parmatch::serve {

class FaultInjector {
 public:
#if defined(PARMATCH_FAULT_INJECT)
  FaultInjector() {
    ring_full_every_ = env_u64("PARMATCH_FI_RING_FULL_EVERY");
    stall_every_ = env_u64("PARMATCH_FI_STALL_EVERY");
    stall_us_ = env_u64("PARMATCH_FI_STALL_US");
    burst_every_ = env_u64("PARMATCH_FI_BURST_EVERY");
    burst_len_ = env_u64("PARMATCH_FI_BURST_LEN");
    if (burst_every_ != 0 && burst_len_ == 0) burst_len_ = 8;
  }

  bool enabled() const {
    return ring_full_every_ | stall_every_ | burst_every_;
  }

  // Admission-site hook: true = pretend the lane ring is full this call.
  bool force_ring_full() {
    if (ring_full_every_ == 0) return false;
    return admit_calls_.fetch_add(1, std::memory_order_relaxed) %
               ring_full_every_ ==
           ring_full_every_ - 1;
  }

  // Drain-site hook: called once per applied window by the matcher stage.
  void maybe_stall_drain() {
    if (stall_every_ == 0 || stall_us_ == 0) return;
    if (windows_.fetch_add(1, std::memory_order_relaxed) % stall_every_ !=
        stall_every_ - 1)
      return;
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
  }

  // Producer-harness hook: returns how many upcoming submits should fire
  // unpaced (burst amplification); 0 = follow the arrival schedule.
  std::size_t burst_amplification() {
    if (burst_every_ == 0) return 0;
    return submits_.fetch_add(1, std::memory_order_relaxed) %
                       burst_every_ ==
                   burst_every_ - 1
               ? static_cast<std::size_t>(burst_len_)
               : 0;
  }

 private:
  static std::uint64_t env_u64(const char* name) {
    const char* e = std::getenv(name);
    return e ? std::strtoull(e, nullptr, 10) : 0;
  }

  std::uint64_t ring_full_every_ = 0;
  std::uint64_t stall_every_ = 0;
  std::uint64_t stall_us_ = 0;
  std::uint64_t burst_every_ = 0;
  std::uint64_t burst_len_ = 0;
  std::atomic<std::uint64_t> admit_calls_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> submits_{0};
#else
 public:
  // Fault injection compiled out: every hook is a constant no-op the
  // optimizer deletes at the call site.
  constexpr bool enabled() const { return false; }
  constexpr bool force_ring_full() { return false; }
  constexpr void maybe_stall_drain() {}
  constexpr std::size_t burst_amplification() { return 0; }
#endif
};

}  // namespace parmatch::serve
