// serve/fault_inject.h -- compiled-in fault injection for the serving
// front-end (DESIGN.md S13/S14). Overload protection and crash recovery are
// exactly the code that normal traffic never exercises: ring-full admission
// decisions, shed accounting under pressure, drain stages that fell behind,
// and journal tails torn mid-write by a dying process. This harness forces
// those paths deterministically so the fault suite, the E13 overload bench,
// and the E14 crash-recovery matrix can hit them on any machine, including
// one where the drain would otherwise always keep up and the process never
// dies.
//
// The hooks compile to constant no-ops unless the build enables them
// (-DPARMATCH_FAULT_INJECT=ON at CMake configure time, which defines
// PARMATCH_FAULT_INJECT for the whole interface library), so a production
// build carries zero overhead and zero behavioral risk. With the option
// on, each hook is still inert until its environment knob is set -- the
// injector re-reads the environment at construction (one per
// MatchService / AdmissionQueue), so tests can reconfigure between
// service instances without re-execing.
//
// Knobs (all counts are in calls/windows on the injected site):
//   PARMATCH_FI_RING_FULL_EVERY=N  every Nth admission attempt reports
//                                  ring-full even when space exists --
//                                  forces the shed/backpressure path.
//   PARMATCH_FI_STALL_EVERY=N      every Nth applied window, the drain
//   PARMATCH_FI_STALL_US=U         (matcher stage) first sleeps U us --
//                                  simulates a stage that fell behind, so
//                                  backlog, deadline flushes, and
//                                  admission pressure build upstream.
//   PARMATCH_FI_BURST_EVERY=N      every Nth paced submit in the E13
//   PARMATCH_FI_BURST_LEN=K        harness fires the next K submits
//                                  back-to-back, ignoring the arrival
//                                  schedule -- burst amplification on top
//                                  of any arrival model.
//   PARMATCH_FI_CRASH_AT=N         the Nth journal append (1-based) is the
//                                  crash point: after its bytes are
//                                  written -- and before any fsync -- the
//                                  process SIGKILLs itself (a real kill,
//                                  not an exit path: no destructors, no
//                                  flush, exactly what recovery must
//                                  survive).
//   PARMATCH_FI_TORN_TAIL=K        modifies the crash append: only the
//                                  first K bytes of its frame reach the
//                                  file before the SIGKILL -- the torn-tail
//                                  corruption the open-time scan truncates.
//   PARMATCH_FI_FLIP_BYTE=N        record N's first payload byte is
//                                  flipped AFTER its checksum was computed
//                                  (bit rot between write and reread); no
//                                  crash -- readers must detect and stop.
//
// Every knob counts the faults it actually fired; fi_report() returns the
// counters and the benches publish them in JsonSink, so a CI smoke run can
// assert injection HAPPENED rather than merely observing that nothing
// crashed (a mis-spelled knob silently injecting nothing looks identical
// otherwise).
//
// Thread-safety: the call counters are relaxed atomics -- the "every Nth"
// cadence is exact under a single caller (the drain and journal hooks) and
// approximately round-robin across concurrent producers, which is all a
// fault schedule needs. Determinism note: injected stalls/bursts change
// batch PARTITIONS, not update semantics, so every correctness invariant
// (conservation, final-graph equality, snapshot agreement) must still
// hold with any injection active -- that is precisely what the fault
// suite asserts; crash/torn/flip faults kill or corrupt the DURABLE
// artifacts, and the recovery suite asserts the recovered trajectory is
// bit-identical anyway (DESIGN.md S14).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <thread>

#if defined(PARMATCH_FAULT_INJECT)
#include <csignal>
#endif

namespace parmatch::serve {

// Counters of faults actually FIRED (not merely armed), one per knob.
// Defined in both builds so sinks and tests can read it unconditionally;
// all-zero when injection is compiled out or inert.
struct FiReport {
  std::uint64_t ring_full_fired = 0;
  std::uint64_t stall_fired = 0;
  std::uint64_t burst_fired = 0;
  std::uint64_t crash_fired = 0;
  std::uint64_t torn_fired = 0;
  std::uint64_t flip_fired = 0;

  std::uint64_t total() const {
    return ring_full_fired + stall_fired + burst_fired + crash_fired +
           torn_fired + flip_fired;
  }
};

// What the journal must do to the append it is about to perform
// (serve/journal.h translates this into a util::io::AppendFault and the
// post-append SIGKILL). All-defaults = clean append.
struct JournalFaultPlan {
  bool crash_after = false;      // SIGKILL once the bytes are written
  std::int64_t torn_after = -1;  // frame bytes to actually write (-1 = all)
  std::int64_t flip_byte = -1;   // payload byte to flip post-CRC (-1 = none)
};

class FaultInjector {
 public:
#if defined(PARMATCH_FAULT_INJECT)
  FaultInjector() {
    ring_full_every_ = env_u64("PARMATCH_FI_RING_FULL_EVERY");
    stall_every_ = env_u64("PARMATCH_FI_STALL_EVERY");
    stall_us_ = env_u64("PARMATCH_FI_STALL_US");
    burst_every_ = env_u64("PARMATCH_FI_BURST_EVERY");
    burst_len_ = env_u64("PARMATCH_FI_BURST_LEN");
    if (burst_every_ != 0 && burst_len_ == 0) burst_len_ = 8;
    crash_at_ = env_u64("PARMATCH_FI_CRASH_AT");
    torn_tail_ = env_i64_or("PARMATCH_FI_TORN_TAIL", -1);
    flip_at_ = env_u64("PARMATCH_FI_FLIP_BYTE");
    // A torn tail needs a crash point to tear at; default to the first
    // append so PARMATCH_FI_TORN_TAIL=K alone is a complete scenario.
    if (torn_tail_ >= 0 && crash_at_ == 0) crash_at_ = 1;
  }

  bool enabled() const {
    return (ring_full_every_ | stall_every_ | burst_every_ | crash_at_ |
            flip_at_) != 0 ||
           torn_tail_ >= 0;
  }

  // Admission-site hook: true = pretend the lane ring is full this call.
  bool force_ring_full() {
    if (ring_full_every_ == 0) return false;
    bool fire = admit_calls_.fetch_add(1, std::memory_order_relaxed) %
                    ring_full_every_ ==
                ring_full_every_ - 1;
    if (fire) ring_full_fired_.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  // Drain-site hook: called once per applied window by the matcher stage.
  void maybe_stall_drain() {
    if (stall_every_ == 0 || stall_us_ == 0) return;
    if (windows_.fetch_add(1, std::memory_order_relaxed) % stall_every_ !=
        stall_every_ - 1)
      return;
    stall_fired_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
  }

  // Producer-harness hook: returns how many upcoming submits should fire
  // unpaced (burst amplification); 0 = follow the arrival schedule.
  std::size_t burst_amplification() {
    if (burst_every_ == 0) return 0;
    bool fire = submits_.fetch_add(1, std::memory_order_relaxed) %
                    burst_every_ ==
                burst_every_ - 1;
    if (!fire) return 0;
    burst_fired_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::size_t>(burst_len_);
  }

  // Journal-site hook: called once per journal append, BEFORE the write.
  // Returns what to do to this append (flip/torn/crash); the flip counter
  // fires here, the torn/crash counters fire in crash_now() once the torn
  // bytes are actually on disk.
  JournalFaultPlan journal_append_fault() {
    JournalFaultPlan plan;
    if (crash_at_ == 0 && flip_at_ == 0) return plan;
    std::uint64_t n =
        journal_appends_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (flip_at_ != 0 && n == flip_at_) {
      plan.flip_byte = 0;
      flip_fired_.fetch_add(1, std::memory_order_relaxed);
    }
    if (crash_at_ != 0 && n == crash_at_) {
      plan.crash_after = true;
      plan.torn_after = torn_tail_;  // -1 = full frame, then die
    }
    return plan;
  }

  // Executes a planned crash: a raw SIGKILL, so no destructor, atexit
  // handler, or buffered write can "help" -- recovery must work from
  // exactly the bytes that reached the file. [[noreturn]] in spirit; the
  // raise cannot fail for SIGKILL on the calling process.
  void crash_now(bool torn) {
    if (torn) torn_fired_.fetch_add(1, std::memory_order_relaxed);
    crash_fired_.fetch_add(1, std::memory_order_relaxed);
    ::raise(SIGKILL);
  }

  FiReport report() const {
    FiReport r;
    r.ring_full_fired = ring_full_fired_.load(std::memory_order_relaxed);
    r.stall_fired = stall_fired_.load(std::memory_order_relaxed);
    r.burst_fired = burst_fired_.load(std::memory_order_relaxed);
    r.crash_fired = crash_fired_.load(std::memory_order_relaxed);
    r.torn_fired = torn_fired_.load(std::memory_order_relaxed);
    r.flip_fired = flip_fired_.load(std::memory_order_relaxed);
    return r;
  }

 private:
  static std::uint64_t env_u64(const char* name) {
    const char* e = std::getenv(name);
    return e ? std::strtoull(e, nullptr, 10) : 0;
  }

  // Presence-sensitive read: 0 is a meaningful value for a torn tail
  // (write NOTHING of the final frame), so "unset" needs a sentinel.
  static std::int64_t env_i64_or(const char* name, std::int64_t dflt) {
    const char* e = std::getenv(name);
    return e ? static_cast<std::int64_t>(std::strtoll(e, nullptr, 10)) : dflt;
  }

  std::uint64_t ring_full_every_ = 0;
  std::uint64_t stall_every_ = 0;
  std::uint64_t stall_us_ = 0;
  std::uint64_t burst_every_ = 0;
  std::uint64_t burst_len_ = 0;
  std::uint64_t crash_at_ = 0;
  std::int64_t torn_tail_ = -1;
  std::uint64_t flip_at_ = 0;
  std::atomic<std::uint64_t> admit_calls_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> submits_{0};
  std::atomic<std::uint64_t> journal_appends_{0};
  std::atomic<std::uint64_t> ring_full_fired_{0};
  std::atomic<std::uint64_t> stall_fired_{0};
  std::atomic<std::uint64_t> burst_fired_{0};
  std::atomic<std::uint64_t> crash_fired_{0};
  std::atomic<std::uint64_t> torn_fired_{0};
  std::atomic<std::uint64_t> flip_fired_{0};
#else
 public:
  // Fault injection compiled out: every hook is a constant no-op the
  // optimizer deletes at the call site.
  constexpr bool enabled() const { return false; }
  constexpr bool force_ring_full() { return false; }
  constexpr void maybe_stall_drain() {}
  constexpr std::size_t burst_amplification() { return 0; }
  constexpr JournalFaultPlan journal_append_fault() { return {}; }
  constexpr void crash_now(bool) {}
  constexpr FiReport report() const { return {}; }
#endif
};

}  // namespace parmatch::serve
