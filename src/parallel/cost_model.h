// parallel/cost_model.h -- the adaptive batch-execution switch (DESIGN.md
// S11). The paper's bounds are batch-size-agnostic, but a real fork/join
// pool charges a fixed launch + barrier latency per data-parallel phase.
// For a phase over n items that tax only pays off past a machine-dependent
// crossover; below it the phase should run inline on the driver thread with
// plain memory operations. This header owns that decision:
//
//  * ExecMode -- the process-wide execution policy. kAdaptive (default)
//    consults the calibrated cost model per phase; kSequential forces every
//    phase inline (the fused fast path everywhere); kParallel forces the
//    work-stealing path regardless of size. Resolved once from
//    PARMATCH_EXEC_MODE ("adaptive" | "seq"/"sequential" |
//    "par"/"parallel"); set_exec_mode() overrides it programmatically
//    (tests compare all three modes for bit-identical trajectories).
//
//  * CostModel -- calibrated once per process, lazily, on the first
//    adaptive-mode query of a multi-worker pool. The micro-probe measures
//    (a) the per-item cost of a trivial memory-touching loop body and
//    (b) the median launch + join latency of a forked loop across the
//    pool's workers, then solves n* = launch / (item * (1 - 1/P)) -- the
//    size where parallel execution first breaks even -- clamped to
//    [kMinCutover, kMaxCutover]. PARMATCH_CUTOVER=n pins the crossover
//    (0 disables the sequential cutover entirely) for reproducible runs.
//
//  * run_phase_seq(n) -- the per-phase decision every parallel_for makes
//    (parallel/parallel_for.h consults it internally): true means the
//    phase WILL run inline on the calling thread, so loop bodies may take
//    their plain-memory fallbacks for CAS/fetch-add sites. The decision
//    never changes results -- the plain and atomic variants compute the
//    same values by the determinism contract (DESIGN.md S2) -- only the
//    schedule, so matchings and stats stay bit-identical across modes.
//
// Complexity contract: run_phase_seq is O(1) after the one-time probe
// (~1 ms); calibration never runs on a 1-worker pool (the decision is
// forced there) or outside adaptive mode.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "parallel/scheduler.h"

namespace parmatch::parallel {

enum class ExecMode : int { kAdaptive = 0, kSequential = 1, kParallel = 2 };

namespace detail {

inline ExecMode parse_exec_mode(const char* s) {
  if (s == nullptr) return ExecMode::kAdaptive;
  if (std::strcmp(s, "seq") == 0 || std::strcmp(s, "sequential") == 0)
    return ExecMode::kSequential;
  if (std::strcmp(s, "par") == 0 || std::strcmp(s, "parallel") == 0)
    return ExecMode::kParallel;
  return ExecMode::kAdaptive;  // "adaptive" and anything unrecognized
}

inline std::atomic<int>& exec_mode_slot() {
  static std::atomic<int> mode{static_cast<int>(
      parse_exec_mode(std::getenv("PARMATCH_EXEC_MODE")))};
  return mode;
}

}  // namespace detail

// The process-wide execution policy (PARMATCH_EXEC_MODE at startup).
inline ExecMode exec_mode() {
  return static_cast<ExecMode>(
      detail::exec_mode_slot().load(std::memory_order_relaxed));
}

// Programmatic override; takes effect for every subsequent phase. Changing
// the mode never changes results, so tests flip it mid-process to compare
// execution paths on one structure.
inline void set_exec_mode(ExecMode m) {
  detail::exec_mode_slot().store(static_cast<int>(m),
                                 std::memory_order_relaxed);
}

class CostModel {
 public:
  static const CostModel& instance() {
    static CostModel cm;
    return cm;
  }

  // Phase sizes <= this run inline in adaptive mode. 0 disables the
  // sequential cutover (every phase takes the work-stealing path).
  std::size_t phase_cutover() const { return phase_cutover_; }

  // The break-even for a phase launched while `roots` top-level fork/join
  // regions share the pool (DESIGN.md S10): with R concurrent roots over P
  // workers a phase sees ~P/R effective workers, so the launch tax takes
  // longer to amortize and the crossover moves right -- at P/R <= 1 forking
  // buys nothing and the cutover saturates at kMaxCutover. Solved once per
  // root count at calibration from the same probe readings
  // (n*_R = launch / (item * (1 - 1/max(2, P/R)))); a PARMATCH_CUTOVER pin
  // applies to every root count (reproducible runs stay reproducible).
  std::size_t phase_cutover_for(int roots) const {
    if (roots <= 1) return phase_cutover_;
    if (roots > Scheduler::kMaxRoots) roots = Scheduler::kMaxRoots;
    std::size_t c = cutover_by_roots_[static_cast<std::size_t>(roots - 1)];
    return c != 0 ? c : phase_cutover_;
  }

  // Probe readings (diagnostics; 0 when pinned by PARMATCH_CUTOVER or on a
  // 1-worker pool where the probe never runs).
  double launch_ns() const { return launch_ns_; }
  double item_ns() const { return item_ns_; }

  // True when PARMATCH_CUTOVER pinned the crossover: every derived cutover
  // (per-roots, speculative) must then return the pin verbatim so a pinned
  // run exercises exactly one execution shape.
  bool pinned() const { return pinned_; }

  // Break-even for one reserve/commit round of the deterministic-
  // reservations engine (prims/speculative_for.h). The probe's trivial body
  // understates a speculation round by a large constant -- each item does a
  // keyed RNG draw, several shared-slot CAS/min-writes, and a candidate
  // prune, i.e. several times the per-item cost the phase crossover was
  // solved for -- so the true crossover sits lower by that body factor.
  // Dividing the calibrated cutover keeps the one-probe design (no second
  // calibration pass, nothing new to drift) while letting mid-size rounds
  // fork. The divided value is floored at kMinSpecCutover: below that the
  // launch tax dominates even an expensive body.
  std::size_t spec_cutover_for(int roots) const {
    std::size_t c = phase_cutover_for(roots);
    if (pinned_ || c == 0) return c;  // pin / "always fork" pass through
    c /= kSpecBodyFactor;
    return c < kMinSpecCutover ? kMinSpecCutover : c;
  }

 private:
  // Crossover clamps: below kMin the launch tax always dominates on any
  // plausible machine; above kMax even an expensive, cache-missy body has
  // amortized the launch, so the model must not keep big phases sequential
  // on the strength of a trivial-body probe.
  static constexpr std::size_t kMinCutover = 128;
  static constexpr std::size_t kMaxCutover = 1u << 15;
  // Speculation-round body cost relative to the probe body, and the floor
  // the divided cutover never drops below (see spec_cutover_for).
  static constexpr std::size_t kSpecBodyFactor = 4;
  static constexpr std::size_t kMinSpecCutover = 32;

  CostModel() {
    cutover_by_roots_.fill(0);
    if (const char* env = std::getenv("PARMATCH_CUTOVER")) {
      phase_cutover_ = std::strtoull(env, nullptr, 10);
      cutover_by_roots_.fill(phase_cutover_);
      pinned_ = true;
      return;
    }
    int p = Scheduler::instance().workers();
    if (p <= 1) return;  // run_phase_seq short-circuits; probe pointless
    calibrate(p);
  }

  static double now_ns() {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void calibrate(int p) {
    // (a) per-item cost of a trivial body over memory that fits in L1/L2:
    // the floor any real phase body sits above.
    constexpr std::size_t kItems = 1u << 14;
    std::vector<std::uint32_t> buf(kItems, 1);
    double best = 1e18;
    for (int rep = 0; rep < 8; ++rep) {
      double t0 = now_ns();
      for (std::size_t i = 0; i < kItems; ++i)
        buf[i] += static_cast<std::uint32_t>(i);
      double dt = now_ns() - t0;
      if (dt < best) best = dt;
    }
    item_ns_ = best / kItems;
    if (item_ns_ < 0.25) item_ns_ = 0.25;
    sink_ = buf[kItems / 2];

    // (b) launch + join latency of a real fork across the pool: grain 1
    // over a few items per worker forces the full fork tree, steals, and
    // the joining barrier. Median of repeated runs after a short warmup,
    // so the figure reflects a warm (spinning, not parked) pool -- the
    // steady state between consecutive phases of one batch.
    const std::size_t n = static_cast<std::size_t>(p) * 4;
    auto launch_once = [&] {
      Scheduler::instance().run(n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          std::atomic_ref<std::uint32_t>(buf[i])
              .fetch_add(1, std::memory_order_relaxed);
      });
    };
    constexpr int kWarmup = 16, kTimed = 64;
    for (int i = 0; i < kWarmup; ++i) launch_once();
    double samples[kTimed];
    for (int i = 0; i < kTimed; ++i) {
      double t0 = now_ns();
      launch_once();
      samples[i] = now_ns() - t0;
    }
    // Median by insertion sort (kTimed is tiny).
    for (int i = 1; i < kTimed; ++i) {
      double x = samples[i];
      int j = i;
      for (; j > 0 && samples[j - 1] > x; --j) samples[j] = samples[j - 1];
      samples[j] = x;
    }
    launch_ns_ = samples[kTimed / 2];

    // Break-even: sequential costs n*item, parallel launch + n*item/p.
    // Per root count R, the effective pool is P/R workers (the other
    // R-1 roots keep their share busy), so each entry solves the same
    // equation at the reduced parallelism.
    for (int roots = 1; roots <= Scheduler::kMaxRoots; ++roots) {
      int peff = p / roots;
      std::size_t cut;
      if (peff <= 1) {
        cut = kMaxCutover;  // no parallelism left for this root: stay inline
      } else {
        double star = launch_ns_ / (item_ns_ * (1.0 - 1.0 / peff));
        cut = static_cast<std::size_t>(star);
        if (cut < kMinCutover) cut = kMinCutover;
        if (cut > kMaxCutover) cut = kMaxCutover;
      }
      cutover_by_roots_[static_cast<std::size_t>(roots - 1)] = cut;
    }
    phase_cutover_ = cutover_by_roots_[0];
  }

  std::size_t phase_cutover_ = 0;
  bool pinned_ = false;
  std::array<std::size_t, Scheduler::kMaxRoots> cutover_by_roots_{};
  double launch_ns_ = 0;
  double item_ns_ = 0;
  volatile std::uint32_t sink_ = 0;  // keeps the probe loops observable
};

// The per-phase decision: true when a phase of n items runs inline on the
// calling thread (so plain-memory fallbacks are safe), false when it takes
// the work-stealing path. parallel_for consults this internally; phase
// bodies that branch on it must pass the SAME n as their loop bound.
//
// Adaptive mode consults the break-even for the CURRENT root population:
// a thread outside the pool counts itself as one more root (it would claim
// a slot if it forked). The answer can differ between two identical phases
// under different concurrent load -- that is the point -- but it never
// changes results, only the schedule (determinism contract, DESIGN.md S2).
inline bool run_phase_seq(std::size_t n) {
  Scheduler& s = Scheduler::instance();
  if (s.workers() == 1) return true;
  switch (exec_mode()) {
    case ExecMode::kSequential:
      return true;
    case ExecMode::kParallel:
      return false;
    case ExecMode::kAdaptive:
    default: {
      int roots = s.active_roots() + (Scheduler::inside_pool() ? 0 : 1);
      if (roots < 1) roots = 1;
      return n <= CostModel::instance().phase_cutover_for(roots);
    }
  }
}

// The per-round decision for the deterministic-reservations engine
// (prims/speculative_for.h): true means the round's reserve/commit/pack
// phases all run inline on the caller with plain memory ops (the engine's
// fused strategy), false means each phase forks. Identical shape to
// run_phase_seq but against the speculation-round break-even, whose body is
// several times the probe's (see CostModel::spec_cutover_for). Like every
// execution-mode decision this never changes results or the engine's
// round/retry counters -- a fused round replays the same reserve-all-then-
// commit-all phase order the forked round barriers into.
inline bool run_spec_round_seq(std::size_t n) {
  Scheduler& s = Scheduler::instance();
  if (s.workers() == 1) return true;
  switch (exec_mode()) {
    case ExecMode::kSequential:
      return true;
    case ExecMode::kParallel:
      return false;
    case ExecMode::kAdaptive:
    default: {
      int roots = s.active_roots() + (Scheduler::inside_pool() ? 0 : 1);
      if (roots < 1) roots = 1;
      return n <= CostModel::instance().spec_cutover_for(roots);
    }
  }
}

// The smallest phase size at which the work-stealing path is predicted to
// beat inline execution -- the dual question to run_phase_seq, asked by the
// serving layer's batch former (serve/batch_former.h, DESIGN.md S12): once
// a forming window reaches this size, waiting longer buys no per-update
// throughput (the fork/join path already amortizes its launch), it only
// adds ingest-to-commit latency, so the former flushes. Returns 0 when
// there is no such size (1-worker pool, or forced-sequential mode): then
// only the deadline and max-batch criteria flush.
inline std::size_t parallel_break_even() {
  if (Scheduler::instance().workers() == 1) return 0;
  switch (exec_mode()) {
    case ExecMode::kSequential:
      return 0;
    case ExecMode::kParallel:
      return 1;
    case ExecMode::kAdaptive:
    default: {
      std::size_t cut = CostModel::instance().phase_cutover();
      return cut == 0 ? 1 : cut + 1;
    }
  }
}

}  // namespace parmatch::parallel
