// parallel/parallel_for.h -- the parallel loop every primitive and matcher
// phase is written against (DESIGN.md S2). parallel_for(lo, hi, f) applies
// f(i) to every index; parallel_for_blocked hands out [b, e) chunks when the
// body wants to keep per-chunk accumulators.
//
// Complexity contract: n iterations of an O(1) body cost O(n) work and
// O(grain + n/P) span; with PARMATCH_SEQ=1 both collapse to a plain loop.
#pragma once

#include <bit>
#include <cstddef>
#include <utility>

#include "parallel/cost_model.h"
#include "parallel/scheduler.h"

namespace parmatch::parallel {

// Span of one data-parallel primitive over n items in the binary-forking
// model the paper assumes (Section 2): a balanced fork tree of depth
// ceil(log2 n) plus the constant body. The dynamic matcher charges this per
// phase to report measured per-batch depth (dyn/stats.h) instead of the old
// rounds-only proxy.
inline std::size_t model_depth(std::size_t n) {
  return n <= 1 ? 1 : 1 + static_cast<std::size_t>(std::bit_width(n - 1));
}

// True when the pool has exactly one worker (PARMATCH_SEQ=1 or a 1-core
// host). Parallel phases then run inline on the caller, so hot loops may
// take plain-memory fallbacks for their CAS/fetch-add sites -- the results
// are identical by the determinism contract (DESIGN.md S2), but the
// lock-prefixed instructions are pure overhead without concurrency.
inline bool sequential_mode() { return num_workers() == 1; }

// Default grain targets ~8 chunks per worker available to THIS loop's
// root: when R top-level roots share the pool (DESIGN.md S10) each sees
// ~P/R effective workers, so the grain coarsens and the fork tree shrinks
// instead of flooding the shared deques with chunks nobody is free to
// steal. Chunking never affects results (determinism contract, S2), only
// the schedule.
inline std::size_t default_grain(std::size_t n) {
  Scheduler& s = Scheduler::instance();
  std::size_t p = static_cast<std::size_t>(s.workers());
  int roots = s.active_roots() + (Scheduler::inside_pool() ? 0 : 1);
  if (roots > 1) {
    p /= static_cast<std::size_t>(roots);
    if (p == 0) p = 1;
  }
  std::size_t g = n / (8 * p) + 1;
  return g < 2048 ? g : 2048;
}

// f(begin, end) over [lo, hi) in chunks. Adaptive: when the cost model says
// a phase of this size cannot amortize the fork/join launch
// (parallel/cost_model.h), the whole range is delivered as one inline chunk
// on the calling thread -- same contract as the 1-worker fast path, so the
// blocked primitives need no changes.
template <typename F>
void parallel_for_blocked(std::size_t lo, std::size_t hi, F&& f,
                          std::size_t grain = 0) {
  if (hi <= lo) return;
  std::size_t n = hi - lo;
  if (run_phase_seq(n)) {
    f(lo, hi);
    return;
  }
  if (grain == 0) grain = default_grain(n);
  Scheduler::instance().run(n, grain, [lo, &f](std::size_t b, std::size_t e) {
    f(lo + b, lo + e);
  });
}

// f(i) for every i in [lo, hi).
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f,
                  std::size_t grain = 0) {
  parallel_for_blocked(
      lo, hi,
      [&f](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) f(i);
      },
      grain);
}

}  // namespace parmatch::parallel
