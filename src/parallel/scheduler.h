// parallel/scheduler.h -- a work-stealing-lite fork/join pool over
// std::thread (DESIGN.md S2). This is the binary-forking model stand-in the
// paper assumes (Section 2): parallel loops with O(log) depth overhead.
//
// Design: one process-wide pool of (num_workers - 1) helper threads. A
// parallel loop publishes a job (range + grain + callback); every worker --
// including the caller -- claims grain-sized chunks from a shared atomic
// cursor until the range is drained ("lite" stealing: chunks are stolen from
// one shared deque head instead of per-worker deques, which is within a
// constant factor for the flat loops this library runs). Nested parallel
// regions execute sequentially inside the worker, preserving correctness.
//
// Worker count is fixed at first use: PARMATCH_SEQ=1 forces 1 worker (fully
// sequential), PARMATCH_NUM_THREADS=k pins k, otherwise hardware
// concurrency. Complexity contract: a loop of n iterations with grain g
// costs n work, O(n/g) synchronization events, and O(g + n/P) span.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parmatch::parallel {

class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler s;
    return s;
  }

  int workers() const { return workers_; }

  // Runs fn(begin, end) over [0, n) in grain-sized chunks on all workers;
  // blocks until every chunk has finished. Nested calls run inline.
  template <typename F>
  void run(std::size_t n, std::size_t grain, F&& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    if (workers_ == 1 || n <= grain || in_parallel_) {
      fn(0, n);
      return;
    }
    std::unique_lock<std::mutex> job_guard(job_mutex_);
    {
      std::unique_lock<std::mutex> lk(mutex_);
      // Quiesce: a helper that woke late for the PREVIOUS job may still be
      // inside work_chunks (draining an exhausted cursor). Job state must
      // not be rewritten under it, so wait for stragglers, and publish the
      // new state inside the same critical section that bumps the epoch.
      done_cv_.wait(lk, [this] { return in_job_ == 0; });
      chunk_fn_ = [&fn](std::size_t b, std::size_t e) { fn(b, e); };
      job_n_ = n;
      job_grain_ = grain;
      cursor_.store(0, std::memory_order_relaxed);
      pending_.store(static_cast<int>((n + grain - 1) / grain),
                     std::memory_order_relaxed);
      ++epoch_;
    }
    cv_.notify_all();
    in_parallel_ = true;
    work_chunks();
    in_parallel_ = false;
    {
      // All chunks done AND no helper still inside the job: only then is it
      // safe to tear down / reuse the job slot.
      std::unique_lock<std::mutex> lk(mutex_);
      done_cv_.wait(lk,
                    [this] { return pending_.load() == 0 && in_job_ == 0; });
    }
    chunk_fn_ = nullptr;
  }

 private:
  Scheduler() {
    workers_ = decide_workers();
    for (int i = 1; i < workers_; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~Scheduler() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  static int decide_workers() {
    if (const char* seq = std::getenv("PARMATCH_SEQ"); seq && seq[0] == '1')
      return 1;
    if (const char* env = std::getenv("PARMATCH_NUM_THREADS")) {
      int k = std::atoi(env);
      if (k >= 1) return k;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }

  void work_chunks() {
    const std::size_t n = job_n_, grain = job_grain_;
    for (;;) {
      std::size_t b = cursor_.fetch_add(grain, std::memory_order_relaxed);
      if (b >= n) break;
      std::size_t e = b + grain < n ? b + grain : n;
      chunk_fn_(b, e);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    in_parallel_ = true;  // nested loops inside a worker stay sequential
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      ++in_job_;  // announced under mutex_, so run() cannot reset state
      lk.unlock();
      work_chunks();
      lk.lock();
      if (--in_job_ == 0) done_cv_.notify_all();
    }
  }

  int workers_;
  std::vector<std::thread> threads_;

  std::mutex job_mutex_;  // serializes top-level parallel regions
  std::function<void(std::size_t, std::size_t)> chunk_fn_;
  std::size_t job_n_ = 0, job_grain_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<int> pending_{0};

  std::mutex mutex_;
  std::condition_variable cv_, done_cv_;
  std::uint64_t epoch_ = 0;
  int in_job_ = 0;  // helpers currently inside work_chunks (mutex_-guarded)
  bool stop_ = false;

  static thread_local bool in_parallel_;
};

inline thread_local bool Scheduler::in_parallel_ = false;

inline int num_workers() { return Scheduler::instance().workers(); }

}  // namespace parmatch::parallel
