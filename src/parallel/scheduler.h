// parallel/scheduler.h -- a work-stealing fork/join pool over std::thread
// (DESIGN.md S2). This is the binary-forking model stand-in the paper
// assumes (Section 2): parallel loops with O(log) depth overhead.
//
// Design: one process-wide pool of (num_workers - 1) helper threads plus
// the calling thread(s), each owning a Chase-Lev deque of forked loop
// halves. A parallel loop splits its range on grain-aligned midpoints: each
// split pushes the right half onto the splitting worker's deque and descends
// into the left half; on the way back up, an un-stolen right half is popped
// and executed inline (zero synchronization beyond the deque's own bottom
// index), while a stolen half is joined by work-stealing until its thief
// reports completion. Nested parallel regions fork onto the current
// worker's deque exactly like top-level ones, so depth composes (the old
// shared-cursor pool collapsed nested loops to sequential). Idle workers
// spin briefly over the other deques, then park on a condition variable
// keyed by a work epoch; forks and stolen-task completions bump the epoch
// and wake parked workers.
//
// Concurrent fork/join ROOTS (DESIGN.md S10): an external thread entering
// run() claims one of kMaxRoots root slots -- each slot is its own deque --
// instead of the old become-worker-0-under-a-mutex protocol, so multiple
// external threads (the serve pipeline's matcher stage, bench drivers,
// future shard owners) can each run nested parallel_for simultaneously over
// the SHARED helper pool. Thieves scan every deque, worker and root alike,
// so helpers load-balance across whatever roots are live; a joining root
// steals too, which may execute another root's task -- tasks are
// self-contained (fn + ctx + range), so cross-root help is correctness-
// neutral and keeps every core busy. Each root's split tree lives entirely
// on its claimed deque plus whoever stole from it, so per-root join
// accounting never bleeds across roots: a root's run() returns exactly when
// ITS range is covered, regardless of what other roots are doing. When all
// kMaxRoots slots are busy the claiming thread spin/yields for a free one
// (bounded by the number of truly concurrent regions, not a correctness
// cliff). active_roots() feeds the cost model's per-root break-even
// (parallel/cost_model.h): with R roots sharing P workers a phase sees
// ~P/R effective workers, so the fork/join crossover moves.
//
// No heap allocation anywhere on the fork/join path: loop closures live in
// the caller's frame (a raw context pointer, not std::function), and forked
// task records live on the stack of the frame that forked them, which
// cannot unwind before the join completes. Claiming a root slot is one
// uncontended exchange; phases below the grain (and 1-worker pools) run
// inline without claiming anything.
//
// Worker count is fixed at first use: PARMATCH_SEQ=1 forces 1 worker (fully
// sequential), PARMATCH_NUM_THREADS=k pins k, otherwise hardware
// concurrency. Complexity contract: a loop of n iterations with grain g
// costs n work, O(n/g) fork events, and O(g + log(n/g)) span on enough
// workers. Chunks delivered to the body are the grain-aligned blocks
// [k*g, (k+1)*g) (last one truncated), except the sequential fast path
// which delivers one chunk [0, n) -- the same contract the blocked
// primitives already rely on (DESIGN.md S2).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace parmatch::parallel {

namespace detail {

// A forked right half of a parallel loop. Lives on the stack of the frame
// that forked it; `done` is the join flag a thief sets after executing it.
struct RangeTask {
  void (*run)(RangeTask*);  // re-enters the templated split on the thief
  const void* ctx;          // LoopCtx<F> of the owning loop
  std::size_t lo, hi;
  std::atomic<bool> done{false};
};

// Chase-Lev work-stealing deque (orderings after Le et al., PPoPP 2013,
// expressed with seq_cst operations instead of standalone fences so TSan
// models every edge). Owner pushes/pops at the bottom; thieves take from
// the top. Fixed capacity: a full deque makes push fail and the caller
// splits sequentially instead, which degrades parallelism, never
// correctness (capacity >> the log-depth of any split tree in practice).
class Deque {
 public:
  static constexpr std::size_t kCap = 1024;  // power of two
  static constexpr std::size_t kMask = kCap - 1;

  bool push(RangeTask* t) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t tp = top_.load(std::memory_order_acquire);
    if (b - tp >= static_cast<std::int64_t>(kCap)) return false;
    buf_[static_cast<std::size_t>(b) & kMask].store(
        t, std::memory_order_relaxed);
    // Publishes the slot (and the task fields written before the call) to
    // any thief that observes the new bottom.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  RangeTask* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t tp = top_.load(std::memory_order_seq_cst);
    RangeTask* t = nullptr;
    if (tp <= b) {
      t = buf_[static_cast<std::size_t>(b) & kMask].load(
          std::memory_order_relaxed);
      if (tp == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(tp, tp + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          t = nullptr;
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return t;
  }

  RangeTask* steal() {
    std::int64_t tp = top_.load(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (tp >= b) return nullptr;
    // Read before the CAS: a successful CAS hands this thief exclusive
    // ownership of exactly the value that was in the slot at `tp`; a failed
    // CAS discards the (possibly stale) read.
    RangeTask* t = buf_[static_cast<std::size_t>(tp) & kMask].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return t;
  }

  bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::array<std::atomic<RangeTask*>, kCap> buf_{};
};

}  // namespace detail

class Scheduler {
 public:
  // Concurrent top-level fork/join roots the pool admits. More concurrent
  // external regions than this spin for a slot; raise if a future layer
  // genuinely runs >16 simultaneous top-level regions.
  static constexpr int kMaxRoots = 16;

  static Scheduler& instance() {
    static Scheduler s;
    return s;
  }

  int workers() const { return workers_; }

  // Number of currently claimed top-level roots (monitoring + the cost
  // model's per-root break-even). Racy by design.
  int active_roots() const {
    return active_roots_.load(std::memory_order_relaxed);
  }

  // True when the calling thread is already inside the pool (a helper
  // worker or a thread holding a root slot): its next run() forks in place
  // instead of claiming a new root.
  static bool inside_pool() { return tls_id_ >= 0; }

  // Runs fn(begin, end) over [0, n) in grain-aligned chunks across all
  // workers; blocks until every chunk has finished. Safe to call from
  // inside a running chunk: nested regions fork onto the current worker's
  // deque and parallelize like top-level ones. Safe to call from multiple
  // external threads concurrently: each claims its own root slot.
  template <typename F>
  void run(std::size_t n, std::size_t grain, F&& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    if (workers_ == 1 || n <= grain) {
      fn(0, n);
      return;
    }
    using Fd = std::remove_reference_t<F>;
    LoopCtx<Fd> ctx{this, &fn, grain};
    if (tls_id_ >= 0) {  // nested call on a worker or root: fork in place
      split<Fd>(ctx, 0, n);
      return;
    }
    // Top-level call from an external thread: claim a root slot (own
    // deque) for the duration. Loop bodies must not throw (forked task
    // records live on frames that would unwind past un-joined thieves);
    // the guard still releases the slot and restores tls_id_ on unwind so
    // a stray exception cannot leak the slot.
    int root = claim_root_slot();
    struct RootGuard {
      Scheduler* s;
      int root;
      ~RootGuard() {
        tls_id_ = -1;
        s->release_root_slot(root);
      }
    } guard{this, root};
    tls_id_ = root_slot_index(root);
    split<Fd>(ctx, 0, n);
    assert(worker_[static_cast<std::size_t>(tls_id_)].deque.empty());
  }

 private:
  template <typename F>
  struct LoopCtx {
    Scheduler* sched;
    F* fn;
    std::size_t grain;
  };

  template <typename F>
  static void thief_entry(detail::RangeTask* t) {
    const auto* c = static_cast<const LoopCtx<F>*>(t->ctx);
    c->sched->template split<F>(*c, t->lo, t->hi);
  }

  // Deque index of root slot r: slot 0 is the historical worker-0 deque
  // (fast path for the common single-root case); extra roots live past the
  // helper workers' deques.
  int root_slot_index(int r) const { return r == 0 ? 0 : workers_ + r - 1; }

  // Claims any free root slot, spin/yielding when all kMaxRoots are busy
  // (more simultaneous top-level regions than slots -- bounded wait, one
  // of them finishes). The relaxed pre-check keeps the scan read-only
  // until a slot actually looks free.
  int claim_root_slot() {
    for (;;) {
      for (int r = 0; r < kMaxRoots; ++r) {
        if (!root_busy_[r].load(std::memory_order_relaxed) &&
            !root_busy_[r].exchange(true, std::memory_order_acquire)) {
          active_roots_.fetch_add(1, std::memory_order_relaxed);
          return r;
        }
      }
      std::this_thread::yield();
    }
  }

  void release_root_slot(int r) {
    active_roots_.fetch_sub(1, std::memory_order_relaxed);
    root_busy_[r].store(false, std::memory_order_release);
  }

  // Grain-aligned binary split. Right halves are forked; the left descent
  // is the recursion (depth log2(n/grain)); an un-stolen right half
  // continues in the same frame.
  template <typename F>
  void split(const LoopCtx<F>& c, std::size_t lo, std::size_t hi) {
    detail::Deque& dq = worker_[tls_id_].deque;
    while (hi - lo > c.grain) {
      std::size_t nchunks = (hi - lo + c.grain - 1) / c.grain;
      std::size_t mid = lo + ((nchunks + 1) / 2) * c.grain;
      detail::RangeTask t{&thief_entry<F>, &c, mid, hi, {false}};
      if (dq.push(&t)) {
        signal_work();
        split<F>(c, lo, mid);
        if (dq.pop() == &t) {  // right half not stolen: run it here
          lo = mid;
          continue;
        }
        join(t);  // stolen: steal other work until the thief finishes it
        return;
      }
      split<F>(c, lo, mid);  // deque full: degrade to sequential split
      lo = mid;
    }
    (*c.fn)(lo, hi);
  }

  void execute_stolen(detail::RangeTask* t) {
    t->run(t);
    t->done.store(true, std::memory_order_release);
    signal_work();  // the joiner may be parked on this task
  }

  // Steal-while-waiting join: runs other tasks until the thief sets done,
  // then parks if the wait drags on. Stolen work may belong to any root.
  void join(detail::RangeTask& t) {
    int idle = 0;
    std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    while (!t.done.load(std::memory_order_acquire)) {
      if (detail::RangeTask* s = try_steal()) {
        execute_stolen(s);
        idle = 0;
        continue;
      }
      if (++idle < kSpinRounds) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lk(mutex_);
      if (work_epoch_.load(std::memory_order_seq_cst) != seen) {
        seen = work_epoch_.load(std::memory_order_relaxed);
      } else {
        parked_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lk, [&] {
          return t.done.load(std::memory_order_seq_cst) ||
                 work_epoch_.load(std::memory_order_seq_cst) != seen;
        });
        seen = work_epoch_.load(std::memory_order_relaxed);
        parked_.fetch_sub(1, std::memory_order_seq_cst);
      }
      idle = 0;
    }
  }

  // Scans every deque -- helper workers AND root slots -- so helpers serve
  // whichever roots are live and a joining root helps its peers.
  detail::RangeTask* try_steal() {
    int self = tls_id_;
    int p = nslots_;
    std::uint32_t start = next_victim_seed();
    for (int i = 0; i < p; ++i) {
      int v = static_cast<int>((start + static_cast<std::uint32_t>(i)) %
                               static_cast<std::uint32_t>(p));
      if (v == self) continue;
      if (detail::RangeTask* t = worker_[v].deque.steal()) return t;
    }
    return nullptr;
  }

  static std::uint32_t next_victim_seed() {
    static thread_local std::uint32_t s = 0x9E3779B9u ^
        static_cast<std::uint32_t>(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
  }

  // Fork / stolen-completion signal: bump the epoch so parked predicates
  // re-fire, and take the lock only when somebody is actually parked.
  // seq_cst on the epoch bump and the parked_ read (paired with seq_cst on
  // the parker's parked_ increment and epoch load) closes the Dekker-style
  // store/load race: either this signal sees the parker and notifies under
  // the mutex, or the parker's predicate sees the new epoch and never
  // sleeps. Release/acquire alone would allow both sides to miss each
  // other on weakly-ordered hardware.
  void signal_work() {
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(mutex_);
      cv_.notify_all();
    }
  }

  void worker_loop(int id) {
    tls_id_ = id;
    std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    int idle = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (detail::RangeTask* t = try_steal()) {
        execute_stolen(t);
        idle = 0;
        continue;
      }
      if (++idle < kSpinRounds) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lk(mutex_);
      if (work_epoch_.load(std::memory_order_seq_cst) != seen) {
        seen = work_epoch_.load(std::memory_order_relaxed);
      } else {
        parked_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lk, [&] {
          return stop_.load(std::memory_order_seq_cst) ||
                 work_epoch_.load(std::memory_order_seq_cst) != seen;
        });
        seen = work_epoch_.load(std::memory_order_relaxed);
        parked_.fetch_sub(1, std::memory_order_seq_cst);
      }
      idle = 0;
    }
  }

  Scheduler() {
    workers_ = decide_workers();
    // Deque slots: [0] = root slot 0 (the historical worker-0 deque),
    // [1, workers_) = helper workers, [workers_, nslots_) = extra roots.
    nslots_ = workers_ + kMaxRoots - 1;
    worker_ = std::make_unique<PerWorker[]>(static_cast<std::size_t>(nslots_));
    threads_.reserve(static_cast<std::size_t>(workers_ - 1));
    for (int i = 1; i < workers_; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
  }

  ~Scheduler() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_.store(true, std::memory_order_release);
      work_epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  static int decide_workers() {
    if (const char* seq = std::getenv("PARMATCH_SEQ"); seq && seq[0] == '1')
      return 1;
    if (const char* env = std::getenv("PARMATCH_NUM_THREADS")) {
      int k = std::atoi(env);
      if (k >= 1) return k;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }

  // A short spin before parking: long enough to bridge the gap between
  // consecutive phases of one batch, short enough that an idle pool costs
  // nothing measurable. Spins yield, so oversubscribed runs (e.g. TSan at 4
  // threads on fewer cores) still make progress.
  static constexpr int kSpinRounds = 64;

  struct alignas(64) PerWorker {
    detail::Deque deque;
  };

  int workers_;
  int nslots_;  // workers_ + kMaxRoots - 1 deques
  std::unique_ptr<PerWorker[]> worker_;
  std::vector<std::thread> threads_;

  std::array<std::atomic<bool>, kMaxRoots> root_busy_{};
  std::atomic<int> active_roots_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> parked_{0};  // modified under mutex_, read lock-free
  std::atomic<bool> stop_{false};

  static thread_local int tls_id_;
};

inline thread_local int Scheduler::tls_id_ = -1;

inline int num_workers() { return Scheduler::instance().workers(); }

}  // namespace parmatch::parallel
