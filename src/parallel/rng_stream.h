// parallel/rng_stream.h -- deterministic RNG streams for data-parallel
// phases (DESIGN.md S2). A parallel loop cannot share one sequential Rng:
// the interleaving of next() calls would depend on the schedule, and the
// matching would differ run to run and thread count to thread count.
//
// RngStream fixes this by deriving every draw from a pure key instead of
// shared mutable state: stream(key, round) returns an Rng seeded by
// hash64(master, key, round), so a phase that processes element `key` in
// round `round` gets the same stream no matter which worker runs it, in
// which order, or how many workers exist. Rounds must be globally unique
// per logical phase (the matcher uses monotone epoch counters) so streams
// are never reused across phases.
//
// Complexity contract: stream() is O(1) and lock-free; two RngStreams with
// the same master seed are interchangeable.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace parmatch::parallel {

class RngStream {
 public:
  explicit RngStream(std::uint64_t master) : master_(master) {}

  // Independent generator for (key, round); deterministic in the key alone.
  Rng stream(std::uint64_t key, std::uint64_t round) const {
    return Rng(parmatch::hash64(master_, key, round));
  }

  // Single word for (key, round) when one draw is all a phase needs (e.g.
  // a fresh edge priority) -- cheaper than materializing an Rng.
  std::uint64_t word(std::uint64_t key, std::uint64_t round) const {
    return parmatch::hash64(master_, key, round);
  }

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace parmatch::parallel
