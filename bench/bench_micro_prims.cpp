// Micro-benchmarks of the substrate primitives (DESIGN.md S2-S4), so that
// substrate regressions are visible independently of the core algorithm.
#include <benchmark/benchmark.h>

#include <vector>

#include "prims/filter.h"
#include "prims/group_by.h"
#include "prims/permutation.h"
#include "prims/radix_sort.h"
#include "prims/reduce.h"
#include "prims/sort.h"
#include "util/rng.h"

using namespace parmatch;

namespace {

std::vector<std::uint64_t> make_values(std::size_t n, std::uint64_t bound) {
  Rng rng(n);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

void BM_ScanExclusive(benchmark::State& state) {
  auto v = make_values(static_cast<std::size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    auto copy = v;
    benchmark::DoNotOptimize(
        prims::scan_exclusive(std::span<std::uint64_t>(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanExclusive)->Range(1 << 14, 1 << 22);

void BM_Filter(benchmark::State& state) {
  auto v = make_values(static_cast<std::size_t>(state.range(0)), 1000);
  for (auto _ : state) {
    auto out = prims::filter(std::span<const std::uint64_t>(v),
                             [](std::uint64_t x) { return x % 3 == 0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Range(1 << 14, 1 << 22);

void BM_RadixSort64(benchmark::State& state) {
  auto v = make_values(static_cast<std::size_t>(state.range(0)), ~0ull);
  for (auto _ : state) {
    auto copy = v;
    prims::radix_sort(copy, [](std::uint64_t x) { return x; }, 64);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSort64)->Range(1 << 14, 1 << 21);

void BM_ParallelSort(benchmark::State& state) {
  auto v = make_values(static_cast<std::size_t>(state.range(0)), ~0ull);
  for (auto _ : state) {
    auto copy = v;
    prims::parallel_sort(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelSort)->Range(1 << 14, 1 << 21);

void BM_GroupBy(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = make_values(n, n / 16 + 1);
  std::vector<std::uint32_t> k32(keys.begin(), keys.end());
  auto vals = prims::iota<std::uint32_t>(n);
  for (auto _ : state) {
    auto g = prims::group_by(std::span<const std::uint32_t>(k32),
                             std::span<const std::uint32_t>(vals));
    benchmark::DoNotOptimize(g.values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupBy)->Range(1 << 14, 1 << 20);

void BM_RandomPermutation(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto p = prims::random_permutation(
        static_cast<std::size_t>(state.range(0)), seed++);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomPermutation)->Range(1 << 14, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
