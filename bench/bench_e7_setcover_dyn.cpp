// E7 -- Corollary 1.4: batch-dynamic r-approximate set cover at O(r^3)
// amortized work per element update.
//
// Element churn over random set systems for several maximum frequencies r:
// reports amortized cost per element update and the realized cover-quality
// bound (cover size / matching lower bound <= r).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "setcover/set_cover.h"
#include "util/rng.h"

using namespace parmatch;
using namespace parmatch::bench;
using setcover::ElementId;
using setcover::SetId;

namespace {

setcover::ElementBatch random_system(SetId sets, std::size_t elements,
                                     std::size_t r, std::uint64_t seed) {
  Rng rng(seed);
  setcover::ElementBatch batch;
  std::vector<SetId> picks;
  for (std::size_t i = 0; i < elements; ++i) {
    std::size_t k = 1 + rng.next_below(r);
    picks.clear();
    while (picks.size() < k) {
      auto s = static_cast<SetId>(rng.next_below(sets));
      bool dup = false;
      for (SetId p : picks) dup = dup || p == s;
      if (!dup) picks.push_back(s);
    }
    batch.add(std::span<const SetId>(picks));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e7");
  std::printf(
      "E7: batch-dynamic set cover under element churn (batch=512,\n"
      "    24576 elements over 4096 sets). Claim: cost bounded, ratio <= r.\n\n");
  Table table({"r", "us/update", "work/update", "final_cover",
               "lower_bound", "ratio"});
  for (std::size_t r : {2ul, 3ul, 4ul, 6ul}) {
    setcover::DynamicSetCover cover(r, seed + 17 + r);
    auto system = random_system(4'096, 24'576, r, seed + 29 + r);
    Rng rng(seed + 31 + r);
    Timer timer;
    std::vector<ElementId> live;
    std::size_t updates = 0, cursor = 0;
    while (cursor < system.size()) {
      setcover::ElementBatch chunk;
      for (std::size_t i = 0; i < 512 && cursor < system.size(); ++i)
        chunk.add(system.edge(cursor++));
      auto ids = cover.insert_elements(chunk);
      live.insert(live.end(), ids.begin(), ids.end());
      updates += ids.size();
      if (live.size() > 4'096) {
        std::vector<ElementId> victims;
        for (int i = 0; i < 2'048; ++i) {
          std::size_t j = rng.next_below(live.size());
          std::swap(live[j], live.back());
          victims.push_back(live.back());
          live.pop_back();
        }
        cover.delete_elements(victims);
        updates += victims.size();
      }
    }
    double secs = timer.elapsed();
    const auto& st = cover.matcher().cumulative_stats();
    double ratio = cover.matching_size() == 0
                       ? 1.0
                       : static_cast<double>(cover.cover_size()) /
                             static_cast<double>(cover.matching_size());
    table.row({Table::num(r),
               Table::num(secs * 1e6 / static_cast<double>(updates)),
               Table::num(static_cast<double>(st.work_units) /
                              static_cast<double>(updates),
                          2),
               Table::num(cover.cover_size()),
               Table::num(cover.matching_size()), Table::num(ratio, 2)});
  }
  return 0;
}
