// E1 -- Theorem 1.1 / Corollary 1.2: O(1) amortized work per update for
// rank-2 graphs, independent of graph size.
//
// Sweeps the graph size over 16x while holding the batch size and update
// mix fixed; the per-update columns (time, work units, samples) should stay
// flat. See EXPERIMENTS.md for recorded results.
#include <cstdio>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"

using namespace parmatch;
using namespace parmatch::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e1");
  std::printf(
      "E1: amortized cost per update vs graph size (r=2, batch=1024,\n"
      "    churn p_insert=0.5). Claim: columns flat as n grows 16x.\n\n");
  Table table({"n", "m", "updates", "us/update", "work/update",
               "samples/update", "settles"});
  for (int logn = 12; logn <= 16; ++logn) {
    auto n = static_cast<graph::VertexId>(1u << logn);
    std::size_t m = 3u * n;
    auto w = gen::churn(gen::erdos_renyi(n, m, seed + 7 + logn), 1024, 0.5,
                        seed + 100 + logn);
    dyn::Config cfg;
    cfg.seed = seed;
    dyn::DynamicMatcher dm(cfg);
    double secs = drive_workload(dm, w);
    const auto& st = dm.cumulative_stats();
    double updates = static_cast<double>(st.total_updates());
    table.row({Table::num(static_cast<std::size_t>(n)), Table::num(m),
               Table::num(st.total_updates()),
               Table::num(secs * 1e6 / updates),
               Table::num(static_cast<double>(st.work_units) / updates, 2),
               Table::num(static_cast<double>(st.samples_created) / updates,
                          2),
               Table::num(st.settle_rounds)});
  }
  return 0;
}
