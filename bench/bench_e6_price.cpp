// E6 -- Lemmas 3.3, 3.4 and 5.8: the price of the random sample spaces.
//
// For several deletion orders, measures (averaged over matcher seeds):
//   * payment per *early* delete (early deletes carry all payment; Lemma
//     3.3 bounds each early delete's expected payment by 2);
//   * the maximum over time steps t of the seed-averaged payment at t
//     (an estimate of max_t E[Phi(d_t)] <= 2);
//   * whether a full teardown pays exactly m (Lemma 3.4, every run).
// The "matched-first" row is an *adaptive* order included for contrast: it
// reads the realized matching and deletes it first, which the oblivious
// bound does not cover -- its per-step expectation blows past 2.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "matching/price_audit.h"
#include "prims/permutation.h"

using namespace parmatch;
using namespace parmatch::bench;
using graph::EdgeId;

namespace {

struct OrderStats {
  double early_mean = 0;   // total payment / early deletes, seed-averaged
  double max_step_mean = 0;  // max_t of seed-averaged payment at step t
  bool totals_exact = true;
};

template <typename OrderFn>
OrderStats measure(const graph::EdgePool& pool,
                   const std::vector<EdgeId>& ids, int num_seeds,
                   std::uint64_t seed_base, const OrderFn& order_of) {
  OrderStats out;
  std::vector<double> step_sum(ids.size(), 0.0);
  double early_ratio_sum = 0;
  for (int s = 0; s < num_seeds; ++s) {
    auto result =
        matching::parallel_greedy_match(pool, ids, seed_base + s);
    auto order = order_of(result);
    matching::PriceAuditor audit(result);
    std::size_t early = 0;
    for (std::size_t t = 0; t < order.size(); ++t) {
      auto pay = audit.on_delete(order[t]);
      step_sum[t] += static_cast<double>(pay);
      if (pay > 0) ++early;  // positive payment iff early (Lemma 5.8)
    }
    out.totals_exact = out.totals_exact &&
                       audit.total_payment() ==
                           static_cast<std::int64_t>(ids.size());
    early_ratio_sum += static_cast<double>(audit.total_payment()) /
                       static_cast<double>(early);
  }
  out.early_mean = early_ratio_sum / num_seeds;
  for (double s : step_sum)
    out.max_step_mean = std::max(out.max_step_mean, s / num_seeds);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e6");
  std::printf(
      "E6: price per delete (Lemmas 3.3/3.4), 40 seeds, m=12000.\n"
      "    Claim: for oblivious orders the payment per early delete stays\n"
      "    <= 2 and a full teardown always pays exactly m. max_t E[pay] is\n"
      "    a noisy selection-maximum over 12000 steps of 40-seed means --\n"
      "    compare it across rows, not against 2. The adaptive\n"
      "    matched-first row (*) breaks the oblivious premise and blows\n"
      "    through the bound on both columns.\n\n");
  const int kSeeds = 40;
  graph::EdgePool pool(2);
  auto ids = pool.add_edges(gen::erdos_renyi(2'000, 12'000, seed + 3));
  std::vector<EdgeId> sorted_ids = ids;
  std::sort(sorted_ids.begin(), sorted_ids.end());

  Table table({"delete_order", "pay/early", "max_t E[pay]", "total==m"});

  auto fixed = [&](std::vector<EdgeId> order) {
    return [order](const matching::MatchResult&) { return order; };
  };

  {
    auto st = measure(pool, ids, kSeeds, seed + 500, fixed(sorted_ids));
    table.row({"ascending_id", Table::num(st.early_mean),
               Table::num(st.max_step_mean),
               st.totals_exact ? "yes" : "NO"});
  }
  {
    auto rev = sorted_ids;
    std::reverse(rev.begin(), rev.end());
    auto st = measure(pool, ids, kSeeds, seed + 500, fixed(rev));
    table.row({"descending_id", Table::num(st.early_mean),
               Table::num(st.max_step_mean),
               st.totals_exact ? "yes" : "NO"});
  }
  {
    auto perm = prims::random_permutation(ids.size(), seed + 77);
    std::vector<EdgeId> shuffled(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) shuffled[i] = ids[perm[i]];
    auto st = measure(pool, ids, kSeeds, seed + 500, fixed(shuffled));
    table.row({"random", Table::num(st.early_mean),
               Table::num(st.max_step_mean),
               st.totals_exact ? "yes" : "NO"});
  }
  {
    // Hub-biased order: delete the edges of the densest vertices first
    // (oblivious: computed from the graph, not the matching).
    std::vector<std::size_t> degree(pool.vertex_bound(), 0);
    for (EdgeId e : ids)
      for (auto v : pool.vertices(e)) degree[v]++;
    auto hubs = sorted_ids;
    std::stable_sort(hubs.begin(), hubs.end(), [&](EdgeId a, EdgeId b) {
      auto score = [&](EdgeId e) {
        std::size_t s = 0;
        for (auto v : pool.vertices(e)) s = std::max(s, degree[v]);
        return s;
      };
      return score(a) > score(b);
    });
    auto st = measure(pool, ids, kSeeds, seed + 500, fixed(hubs));
    table.row({"hubs_first", Table::num(st.early_mean),
               Table::num(st.max_step_mean),
               st.totals_exact ? "yes" : "NO"});
  }
  {
    // Adaptive adversary (reads the realized matching): deletes all matched
    // edges first. The contrast row.
    auto adaptive = [&](const matching::MatchResult& r) {
      std::vector<EdgeId> order = r.matched;
      std::vector<std::uint8_t> is_matched(pool.id_bound(), 0);
      for (EdgeId m : r.matched) is_matched[m] = 1;
      for (EdgeId e : sorted_ids)
        if (!is_matched[e]) order.push_back(e);
      return order;
    };
    auto st = measure(pool, ids, kSeeds, seed + 500, adaptive);
    table.row({"matched_first*", Table::num(st.early_mean),
               Table::num(st.max_step_mean),
               st.totals_exact ? "yes" : "NO"});
  }
  std::printf("\n(*) adaptive order, shown for contrast; the oblivious\n"
              "    bound does not apply to it.\n");
  return 0;
}
