// E12 -- the open-loop serving regime (DESIGN.md S12). E1-E11 are
// closed-loop: they hand the matcher pre-formed batches and the next batch
// waits for the last. A serving system faces the opposite shape: updates
// arrive asynchronously at a rate the system does not control, and the
// batch former (serve/batch_former.h) must re-form batches from the
// arrival stream under a latency deadline. This harness drives the full
// front-end -- producer thread -> MPSC queue -> batch former ->
// DynamicMatcher -> snapshot publish -- with Poisson and bursty arrivals
// over a flattened churn script, and reports what a serving operator would
// ask: ingest-to-commit latency percentiles, the batch-size distribution
// the former actually produced, achieved vs offered rate, and the queue
// high-water mark (bounded-queue check).
//
// Method: the first third of the churn stream (insert-heavy: churn starts
// empty) is applied unpaced as warmup, stats reset, then the remainder is
// submitted on an arrival schedule (gen::arrival_times_ns). The producer
// never runs ahead of the schedule; when it falls behind (1-core
// containers time-slice the producer against the drain thread) the
// shortfall shows up as achieved_in < offered rather than being hidden.
// A final unpaced row measures saturation throughput. --rate=N restricts
// the sweep to one target rate (CI's gate row); --json records everything,
// with the arrival models and target rates noted at the top level so the
// recorded document stays self-describing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "serve/service.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

constexpr graph::VertexId kN = 32768;
constexpr std::size_t kM = 3u * kN;

struct RowResult {
  double achieved_in = 0, achieved_commit = 0;
  double p50_us = 0, p99_us = 0;
  double batch_mean = 0;
  std::size_t batch_max = 0, queue_hwm = 0;
  std::size_t updates = 0;
  std::size_t mem_bytes = 0;  // matcher structure bytes after the run
  std::uint64_t hist_overflow = 0;  // top-bucket latency clamps (clipped!)
  std::uint64_t fi_fired = 0;       // fault injections that actually fired
};

// Drives one serving run: warmup (unpaced first third), then the paced
// remainder on `arrivals` (empty = saturation: submit as fast as possible).
RowResult run_stream(const gen::Workload& w,
                     const std::vector<gen::Update>& stream,
                     const std::vector<std::uint64_t>& arrivals,
                     std::size_t warm, std::uint64_t seed, bool pipeline) {
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = seed;
  cfg.max_vertices = kN;
  cfg.pipeline = pipeline;
  serve::MatchService svc(cfg);
  svc.start();

  std::vector<std::uint64_t> ticket(w.master.size(), 0);
  auto submit = [&](const gen::Update& u) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  };

  for (std::size_t i = 0; i < warm; ++i) submit(stream[i]);
  svc.drain_until_idle();
  svc.reset_stats();

  std::size_t n = stream.size() - warm;
  std::uint64_t t0 = serve::now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    if (!arrivals.empty()) {
      std::uint64_t due = t0 + arrivals[i];
      // Wait out the schedule. Any slack beyond ~2us is donated to the
      // drain thread via yield: on machines with fewer cores than threads
      // a spin-waiting producer would otherwise hold the core for its full
      // scheduling quantum and the measured latency would be the OS time
      // slice, not the pipeline's.
      for (;;) {
        std::uint64_t now = serve::now_ns();
        if (now >= due) break;
        if (due - now > 2'000)
          std::this_thread::yield();
      }
    }
    submit(stream[warm + i]);
  }
  std::uint64_t t_in_end = serve::now_ns();
  svc.drain_until_idle();
  svc.stop();

  const serve::ServiceStats& st = svc.stats();
  RowResult r;
  r.updates = n;
  double in_secs = static_cast<double>(t_in_end - t0) * 1e-9;
  r.achieved_in = static_cast<double>(n) / in_secs;
  double commit_secs =
      static_cast<double>(st.last_commit_ns - t0) * 1e-9;
  r.achieved_commit = static_cast<double>(n) / commit_secs;
  // Histogram quantiles: +-4.5% documented bucket error
  // (util/latency_hist.h) -- far inside the CI gate factors.
  r.p50_us = st.latency.quantile(0.50);
  r.p99_us = st.latency.quantile(0.99);
  r.batch_mean = st.mean_batch();
  r.batch_max = st.batch_updates_max;
  r.queue_hwm = st.queue_hwm;
  r.mem_bytes = svc.matcher().memory_bytes();
  r.hist_overflow = st.latency.overflow_count();
  r.fi_fired = svc.fault_injector().report().total();
  return r;
}

const char* model_name(gen::ArrivalModel m) {
  return m == gen::ArrivalModel::kPoisson ? "poisson" : "bursty";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e12");
  std::size_t only_rate = 0;
  // --pipeline=on|off|both (default both): A/B the three-stage pipelined
  // drain against the serial drain, as a per-row "pipeline" column.
  const char* pipe_arg = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc)
      only_rate = std::strtoull(argv[i + 1], nullptr, 10);
    else if (std::strncmp(argv[i], "--rate=", 7) == 0)
      only_rate = std::strtoull(argv[i] + 7, nullptr, 10);
    else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc)
      pipe_arg = argv[i + 1];
    else if (std::strncmp(argv[i], "--pipeline=", 11) == 0)
      pipe_arg = argv[i] + 11;
  }
  std::vector<bool> pipeline_modes;
  if (std::strcmp(pipe_arg, "on") == 0)
    pipeline_modes = {true};
  else if (std::strcmp(pipe_arg, "off") == 0)
    pipeline_modes = {false};
  else
    pipeline_modes = {true, false};

  const std::vector<std::size_t> rates =
      only_rate ? std::vector<std::size_t>{only_rate}
                : std::vector<std::size_t>{250'000, 1'000'000, 2'000'000};

  std::printf(
      "E12: open-loop serving (producer -> MPSC queue -> batch former ->\n"
      "    matcher) over flattened churn, n=%u, m=%zu. Rows: arrival model\n"
      "    x target rate, plus unpaced saturation. Latency is ingest (the\n"
      "    submit call) to commit (snapshot publish of the applying\n"
      "    window).\n\n",
      kN, kM);

  // Self-describing json: the offered-load model behind every latency row.
  {
    std::string rs;
    for (std::size_t r : rates) rs += (rs.empty() ? "" : ",") + std::to_string(r);
    JsonSink::instance().note("harness", "open-loop");
    JsonSink::instance().note("arrival_models", "poisson,bursty,unpaced");
    JsonSink::instance().note("target_rates_per_s", rs);
    JsonSink::instance().note(
        "max_delay_us",
        std::to_string(serve::FormerConfig::from_env().max_delay_us));
    // Quantiles come from the fixed-footprint log-bucketed histogram;
    // record the documented error bound next to the numbers it bounds.
    JsonSink::instance().note("latency_quantile_rel_err", "0.045");
  }

  gen::Workload w =
      gen::churn(gen::erdos_renyi(kN, kM, seed + 7), 1, 0.5, seed + 11);
  std::vector<gen::Update> stream = gen::flatten(w);
  std::size_t warm = stream.size() / 3;

  Table table({"arrival", "rate", "pipeline", "updates", "ach_in",
               "ach_commit", "p50_us", "p99_us", "batch_mean", "batch_max",
               "q_hwm", "mem_bytes"});
  // Run-wide fault-injection and histogram-clipping accounting, noted at
  // the json top level (and printed) so a CI FI smoke can assert injection
  // actually FIRED and a clipped p99 is never silently trusted.
  std::uint64_t fi_fired_total = 0, overflow_total = 0;
  auto emit = [&](const char* arrival, std::size_t rate, bool pipeline,
                  const RowResult& r) {
    fi_fired_total += r.fi_fired;
    overflow_total += r.hist_overflow;
    table.row({arrival, Table::num(rate), pipeline ? "on" : "off",
               Table::num(r.updates), Table::num(r.achieved_in, 0),
               Table::num(r.achieved_commit, 0), Table::num(r.p50_us),
               Table::num(r.p99_us), Table::num(r.batch_mean, 1),
               Table::num(r.batch_max), Table::num(r.queue_hwm),
               Table::num(r.mem_bytes)});
  };

  for (gen::ArrivalModel model :
       {gen::ArrivalModel::kPoisson, gen::ArrivalModel::kBursty}) {
    for (std::size_t rate : rates) {
      auto arrivals = gen::arrival_times_ns(
          stream.size() - warm, static_cast<double>(rate), model, seed + 13);
      for (bool pipe : pipeline_modes) {
        RowResult r = run_stream(w, stream, arrivals, warm, seed, pipe);
        emit(model_name(model), rate, pipe, r);
      }
    }
  }
  // Saturation: no pacing; the producer and the drain pipeline run flat
  // out. achieved_commit is the front-end's max sustainable throughput.
  for (bool pipe : pipeline_modes) {
    RowResult sat = run_stream(w, stream, {}, warm, seed, pipe);
    emit("unpaced", 0, pipe, sat);
  }
  JsonSink::instance().note("fi_fired_total", std::to_string(fi_fired_total));
  JsonSink::instance().note("latency_overflow_total",
                            std::to_string(overflow_total));
  std::printf("\nfi_fired_total=%llu latency_overflow_total=%llu\n",
              static_cast<unsigned long long>(fi_fired_total),
              static_cast<unsigned long long>(overflow_total));
  return 0;
}
