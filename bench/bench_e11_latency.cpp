// E11 -- the small-batch / low-latency serving regime. The paper's O(1)
// amortized work bound is batch-size-agnostic, but a fixed parallel tax per
// batch (fork/join launches, phase barriers, primitive machinery) would make
// per-update wall-clock at k <= 64 scheduler-bound rather than work-bound.
// This harness measures per-BATCH latency percentiles over a warm structure
// for k in {1, 4, 16, 64, 256, 1024}: the adaptive execution engine
// (parallel/cost_model.h) should hold p50 per-update latency near-flat from
// k=1024 down to k=1 instead of blowing up as 1/k.
//
// Method: prewarm a 32k-vertex / 96k-edge ER structure, then drive mixed
// churn (p_insert=0.5) in batches of exactly k, timing every batch. The
// update script is generated obliviously up front, so the timed loop does
// nothing but batch calls. Reported: p50 / p99 per batch, p50 per update,
// and the mean. --json records the table for CI's latency-regression gate
// (the k=16 p50 row is compared against BENCH_baseline.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "util/latency_hist.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

constexpr graph::VertexId kN = 32768;
constexpr std::size_t kM = 3u * kN;
constexpr std::size_t kPrewarmBatch = 4096;

// Batches measured per k: enough for stable percentiles, capped so the
// whole sweep stays a few seconds.
std::size_t batches_for(std::size_t k) {
  std::size_t b = 65536 / k;
  return b < 64 ? 64 : (b > 4096 ? 4096 : b);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e11");
  // --k N / --k=N restricts the sweep to one batch size (CI's latency
  // gate runs just the k=16 row).
  std::size_t only_k = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc)
      only_k = std::strtoull(argv[i + 1], nullptr, 10);
    else if (std::strncmp(argv[i], "--k=", 4) == 0)
      only_k = std::strtoull(argv[i] + 4, nullptr, 10);
  }
  std::printf(
      "E11: per-batch latency vs batch size k on a warm structure\n"
      "    (n=%u, m=%zu, mixed churn p_insert=0.5). Claim: us/update p50\n"
      "    stays near-flat as k shrinks 1024x (no fixed per-batch tax).\n\n",
      kN, kM);
  Table table({"k", "batches", "p50_us", "p99_us", "p50_us/upd", "mean_us",
                "steal_rds", "retries"});

  for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                        std::size_t{64}, std::size_t{256},
                        std::size_t{1024}}) {
    if (only_k != 0 && k != only_k) continue;
    auto master = gen::erdos_renyi(kN, kM, seed + 7);
    dyn::Config cfg;
    cfg.seed = seed;
    dyn::DynamicMatcher dm(cfg);

    // Prewarm: the whole master enters in large batches; ids recorded so
    // churn deletes can name them.
    std::vector<graph::EdgeId> live_id(master.size());
    for (std::size_t base = 0; base < master.size(); base += kPrewarmBatch) {
      graph::EdgeBatch chunk;
      std::size_t hi = std::min(master.size(), base + kPrewarmBatch);
      for (std::size_t i = base; i < hi; ++i) chunk.add(master.edge(i));
      auto ids = dm.insert_edges(chunk);
      for (std::size_t i = base; i < hi; ++i) live_id[i] = ids[i - base];
    }

    // Oblivious churn script over master indices, fixed batch size k.
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 0xE11);
    std::vector<std::size_t> live(master.size());
    for (std::size_t i = 0; i < master.size(); ++i) live[i] = i;
    std::vector<std::size_t> available;
    std::size_t nbatches = batches_for(k);
    struct Step {
      bool is_insert;
      std::vector<std::size_t> edges;
    };
    std::vector<Step> steps(nbatches);
    for (Step& s : steps) {
      bool ins = rng.next_double() < 0.5;
      if (available.size() < k) ins = false;
      if (live.size() < k) ins = true;
      s.is_insert = ins;
      auto& from = ins ? available : live;
      auto& to = ins ? live : available;
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = rng.next_below(from.size());
        std::swap(from[j], from.back());
        s.edges.push_back(from.back());
        from.pop_back();
      }
      to.insert(to.end(), s.edges.begin(), s.edges.end());
    }

    // Timed loop: nothing but batch calls and one clock read per batch.
    std::size_t steal_rounds0 = dm.cumulative_stats().steal_rounds;
    std::size_t retries0 = dm.cumulative_stats().spec_retries;
    std::vector<double> lat_us(nbatches);
    graph::EdgeBatch chunk;
    std::vector<graph::EdgeId> del_ids;
    for (std::size_t b = 0; b < nbatches; ++b) {
      const Step& s = steps[b];
      if (s.is_insert) {
        chunk.clear();
        for (std::size_t i : s.edges) chunk.add(master.edge(i));
        Timer t;
        auto ids = dm.insert_edges(chunk);
        lat_us[b] = t.elapsed() * 1e6;
        for (std::size_t i = 0; i < s.edges.size(); ++i)
          live_id[s.edges[i]] = ids[i];
      } else {
        del_ids.clear();
        for (std::size_t i : s.edges) del_ids.push_back(live_id[i]);
        Timer t;
        dm.delete_edges(del_ids);
        lat_us[b] = t.elapsed() * 1e6;
      }
    }

    // Percentiles via the shared log-bucketed histogram
    // (util/latency_hist.h, +-4.5% documented error) -- the same quantile
    // path the serving stats use, so E11's and E12/E13's percentile
    // semantics match; the mean is exact (tracked outside the buckets).
    util::LatencyHistogram hist;
    for (double v : lat_us) hist.record(v);
    double p50 = hist.quantile(0.50);
    double p99 = hist.quantile(0.99);
    double mean = hist.mean();
    table.row({Table::num(k), Table::num(nbatches), Table::num(p50),
               Table::num(p99), Table::num(p50 / static_cast<double>(k)),
               Table::num(mean),
               Table::num(dm.cumulative_stats().steal_rounds - steal_rounds0),
               Table::num(dm.cumulative_stats().spec_retries - retries0)});
  }
  return 0;
}
