// Micro-benchmarks of the phase-concurrent dictionaries (DESIGN.md S5):
// batch insert/erase/lookup throughput, matching the costs assumed in the
// paper's Section 2.
#include <benchmark/benchmark.h>

#include <vector>

#include "containers/flat_hash_map.h"
#include "containers/flat_hash_set.h"
#include "util/rng.h"

using namespace parmatch;

namespace {

std::vector<std::uint64_t> make_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

void BM_BatchInsert(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = make_keys(n, 1);
  for (auto _ : state) {
    ct::flat_hash_set<std::uint64_t> s;
    s.batch_insert(keys);
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchInsert)->Range(1 << 12, 1 << 20);

void BM_BatchErase(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = make_keys(n, 2);
  ct::flat_hash_set<std::uint64_t> base;
  base.batch_insert(keys);
  for (auto _ : state) {
    auto s = base;
    s.batch_erase(keys);
    benchmark::DoNotOptimize(s.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchErase)->Range(1 << 12, 1 << 18);

void BM_SequentialFind(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = make_keys(n, 3);
  ct::flat_hash_map<std::uint64_t, std::uint64_t> m;
  for (std::size_t i = 0; i < n; ++i) m.insert(keys[i], i);
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[idx % n]));
    ++idx;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialFind)->Range(1 << 12, 1 << 18);

void BM_Elements(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto keys = make_keys(n, 4);
  ct::flat_hash_set<std::uint64_t> s;
  s.batch_insert(keys);
  for (auto _ : state) {
    auto v = s.elements();
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Elements)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
