// E2 -- Theorem 1.1: O(r^3) amortized work per edge update on hypergraphs.
//
// Sweeps the rank r with everything else fixed and reports work per update
// alongside the normalized ratio against r=2 and the r^3 reference curve.
// The claim holds if the measured growth stays at or below the r^3 line
// (the bound is worst-case; random workloads typically sit near r..r^2).
#include <cstdio>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"

using namespace parmatch;
using namespace parmatch::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e2");
  std::printf(
      "E2: amortized cost per edge update vs hyperedge rank r\n"
      "    (n=16384, m=49152, batch=512, churn p=0.45 -- deletion heavy).\n"
      "    Claim: work/update grows no faster than r^3.\n\n");
  Table table({"r", "us/update", "work/update", "ratio_vs_r2", "r^3_ref",
               "settles"});
  double base_work = 0;
  for (std::size_t r : {2ul, 3ul, 4ul, 5ul, 6ul, 8ul}) {
    auto w = gen::churn(
        gen::random_hypergraph(16'384, 49'152, r, seed + 11 + r), 512, 0.45,
        seed + 200 + r);
    dyn::Config cfg;
    cfg.max_rank = r;
    cfg.seed = seed;
    dyn::DynamicMatcher dm(cfg);
    double secs = drive_workload(dm, w);
    const auto& st = dm.cumulative_stats();
    double updates = static_cast<double>(st.total_updates());
    double work = static_cast<double>(st.work_units) / updates;
    if (r == 2) base_work = work;
    double r3 = static_cast<double>(r * r * r) / 8.0;  // normalized to r=2
    table.row({Table::num(r), Table::num(secs * 1e6 / updates),
               Table::num(work, 2), Table::num(work / base_work, 2),
               Table::num(r3, 2), Table::num(st.settle_rounds)});
  }
  return 0;
}
