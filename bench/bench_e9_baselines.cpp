// E9 -- positioning against the practical alternatives (paper Section 1):
//
//  (a) targeted teardown: an oblivious adversary that precomputed the
//      deterministic folklore matcher's choices deletes exactly its matched
//      edges. Folklore pays Theta(degree) per update; parmatch stays flat.
//  (b) batch-size sweep against recompute-from-scratch: recompute does
//      Theta(m) work per batch, so it only wins when batches approach m.
#include <cstdio>

#include "baseline/naive_dynamic.h"
#include "baseline/recompute.h"
#include "baseline/targeted.h"
#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"

using namespace parmatch;
using namespace parmatch::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e9");
  std::printf(
      "E9a: targeted teardown of one star (adversary tuned to folklore).\n"
      "     Claim: folklore cost grows linearly with degree; ours is flat.\n\n");
  {
    Table table({"spokes", "folklore_us", "parmatch_us", "speedup",
                 "folklore_scans"});
    for (std::size_t spokes : {1'000ul, 2'000ul, 4'000ul, 8'000ul,
                               16'000ul}) {
      auto w = baseline::targeted_teardown(
          gen::hub_graph(1, static_cast<graph::VertexId>(spokes)));
      double updates = 2.0 * static_cast<double>(w.master.size());
      baseline::NaiveDynamicMatcher naive(2);
      double naive_secs = drive_workload(naive, w);
      dyn::Config cfg;
      cfg.seed = seed;
      dyn::DynamicMatcher ours(cfg);
      double ours_secs = drive_workload(ours, w);
      table.row({Table::num(spokes),
                 Table::num(naive_secs * 1e6 / updates),
                 Table::num(ours_secs * 1e6 / updates),
                 Table::num(naive_secs / ours_secs, 2),
                 Table::num(naive.edges_scanned())});
    }
  }

  std::printf(
      "\nE9b: batch-size sweep on churn (n=16384, m=49152): parmatch vs\n"
      "     recompute-from-scratch. Claim: recompute only competitive once\n"
      "     batches approach the live graph size (crossover visible).\n\n");
  {
    Table table({"batch", "parmatch_us", "recompute_us", "ratio"});
    for (std::size_t batch : {64ul, 512ul, 4'096ul, 16'384ul, 49'152ul}) {
      auto w = gen::churn(gen::erdos_renyi(16'384, 49'152, seed + 3), batch,
                          0.5, seed + 71);
      double updates = static_cast<double>(w.total_updates());
      dyn::Config cfg;
      cfg.seed = seed;
      dyn::DynamicMatcher ours(cfg);
      double ours_secs = drive_workload(ours, w);
      baseline::RecomputeMatcher recompute(2, seed + 5);
      double rec_secs = drive_workload(recompute, w);
      table.row({Table::num(batch),
                 Table::num(ours_secs * 1e6 / updates),
                 Table::num(rec_secs * 1e6 / updates),
                 Table::num(rec_secs / ours_secs, 2)});
    }
  }
  return 0;
}
