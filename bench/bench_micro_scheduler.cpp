// micro/scheduler -- substrate costs of the work-stealing fork/join pool
// (DESIGN.md S2): fork/join launch overhead across loop sizes, nested
// parallel_for (which the old shared-cursor pool flattened to sequential),
// and skewed per-iteration grains (stealing balance). Table bench with
// --seed/--json like E1-E10 so runs land in the BENCH_*.json trajectory.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "parallel/parallel_for.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

// A body heavy enough that the loop cannot be optimized out, cheap enough
// that launch overhead is visible at small n.
inline std::uint64_t spin(std::uint64_t x, int iters) {
  for (int i = 0; i < iters; ++i) x = hash64(x, i);
  return x;
}

double time_best_of(int reps, double (*fn)(std::size_t), std::size_t n) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    double t = fn(n);
    if (t < best) best = t;
  }
  return best;
}

std::atomic<std::uint64_t> g_sink{0};

double flat_parallel(std::size_t n) {
  std::vector<std::uint64_t> out(n);
  Timer t;
  parallel::parallel_for(0, n, [&](std::size_t i) { out[i] = spin(i, 8); });
  double s = t.elapsed();
  g_sink += out[n / 2];
  return s;
}

double flat_sequential(std::size_t n) {
  std::vector<std::uint64_t> out(n);
  Timer t;
  for (std::size_t i = 0; i < n; ++i) out[i] = spin(i, 8);
  double s = t.elapsed();
  g_sink += out[n / 2];
  return s;
}

double nested_parallel(std::size_t n) {  // n = inner size, 32 outer rows
  constexpr std::size_t kOuter = 32;
  std::vector<std::uint64_t> out(kOuter * n);
  Timer t;
  parallel::parallel_for(
      0, kOuter,
      [&](std::size_t i) {
        parallel::parallel_for(0, n, [&](std::size_t j) {
          out[i * n + j] = spin(i * n + j, 8);
        });
      },
      1);
  double s = t.elapsed();
  g_sink += out[n];
  return s;
}

double skewed_parallel(std::size_t n) {
  // Iteration i costs ~i units: the triangular profile that starves a
  // static partition and exercises range stealing.
  std::vector<std::uint64_t> out(n);
  Timer t;
  parallel::parallel_for(
      0, n,
      [&](std::size_t i) { out[i] = spin(i, static_cast<int>(i % 512)); },
      16);
  double s = t.elapsed();
  g_sink += out[n / 2];
  return s;
}

double skewed_sequential(std::size_t n) {
  std::vector<std::uint64_t> out(n);
  Timer t;
  for (std::size_t i = 0; i < n; ++i)
    out[i] = spin(i, static_cast<int>(i % 512));
  double s = t.elapsed();
  g_sink += out[n / 2];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench_init(argc, argv, "micro_scheduler");
  std::printf(
      "micro/scheduler: fork/join substrate costs at %d workers.\n"
      "  forkjoin: parallel_for vs plain loop (launch overhead + per-item)\n"
      "  nested:   32 outer x n inner forked loops (old pool: sequential)\n"
      "  skewed:   triangular per-iteration cost, grain 16\n\n",
      parallel::num_workers());

  Table table({"case", "n", "us/launch", "ns/item", "speedup_vs_seq"});
  for (std::size_t n : {1u << 10, 1u << 14, 1u << 18}) {
    double seq = time_best_of(5, flat_sequential, n);
    double par = time_best_of(5, flat_parallel, n);
    table.row({"forkjoin", Table::num(n), Table::num(par * 1e6, 2),
               Table::num(par * 1e9 / static_cast<double>(n), 2),
               Table::num(seq / par, 2)});
  }
  for (std::size_t n : {1u << 8, 1u << 12}) {
    double seq = time_best_of(5, flat_sequential, 32 * n);
    double par = time_best_of(5, nested_parallel, n);
    table.row({"nested", Table::num(n), Table::num(par * 1e6, 2),
               Table::num(par * 1e9 / static_cast<double>(32 * n), 2),
               Table::num(seq / par, 2)});
  }
  {
    std::size_t n = 1u << 14;
    double seq = time_best_of(5, skewed_sequential, n);
    double par = time_best_of(5, skewed_parallel, n);
    table.row({"skewed", Table::num(n), Table::num(par * 1e6, 2),
               Table::num(par * 1e9 / static_cast<double>(n), 2),
               Table::num(seq / par, 2)});
  }
  std::printf("\n(sink %llu)\n",
              static_cast<unsigned long long>(g_sink.load()));
  return 0;
}
