// E5 -- Lemma 1.3 / Theorem 3.2: static maximal hypergraph matching in
// O(m') expected work and O(log^2 m) depth whp.
//
// google-benchmark harness: per-row time should scale linearly in m' (the
// time/m' counter stays flat), greedy rounds grow ~log m, and the parallel
// algorithm tracks the sequential one within a constant factor while
// producing the identical matched set.
#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "matching/sequential_greedy.h"

using namespace parmatch;

namespace {

struct Instance {
  graph::EdgePool pool;
  std::vector<graph::EdgeId> ids;
  explicit Instance(std::size_t rank) : pool(rank) {}
};

Instance make_graph(std::size_t m) {
  Instance inst(2);
  inst.ids = inst.pool.add_edges(
      gen::erdos_renyi(static_cast<graph::VertexId>(m / 3), m, m));
  return inst;
}

Instance make_hypergraph(std::size_t m, std::size_t r) {
  Instance inst(r);
  inst.ids = inst.pool.add_edges(gen::random_hypergraph(
      static_cast<graph::VertexId>(m / 2), m, r, m + r));
  return inst;
}

void BM_ParallelGreedy_Graph(benchmark::State& state) {
  auto inst = make_graph(static_cast<std::size_t>(state.range(0)));
  std::size_t rounds = 0, matched = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = matching::parallel_greedy_match(inst.pool, inst.ids, seed++);
    rounds = r.rounds;
    matched = r.matched.size();
    benchmark::DoNotOptimize(r.samples.data());
  }
  double mprime = 2.0 * static_cast<double>(inst.ids.size());
  state.counters["ns_per_mprime"] = benchmark::Counter(
      mprime * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["matched"] = static_cast<double>(matched);
}
BENCHMARK(BM_ParallelGreedy_Graph)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_SequentialGreedy_Graph(benchmark::State& state) {
  auto inst = make_graph(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = matching::sequential_greedy_match(inst.pool, inst.ids, seed++);
    benchmark::DoNotOptimize(r.samples.data());
  }
  state.counters["m"] = static_cast<double>(inst.ids.size());
}
BENCHMARK(BM_SequentialGreedy_Graph)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18)
    ->Unit(benchmark::kMillisecond);

// Hypergraph ranks: work is O(m') = O(r m), so ns/m' should stay flat
// across ranks -- the work-efficiency claim that GT's O(m r log m) and
// the O(m r^2) translations fail.
void BM_ParallelGreedy_Hypergraph(benchmark::State& state) {
  std::size_t r = static_cast<std::size_t>(state.range(0));
  auto inst = make_hypergraph(1 << 16, r);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    auto res = matching::parallel_greedy_match(inst.pool, inst.ids, seed++);
    benchmark::DoNotOptimize(res.samples.data());
  }
  double mprime = static_cast<double>(r) * static_cast<double>(inst.ids.size());
  state.counters["ns_per_mprime"] = benchmark::Counter(
      mprime * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ParallelGreedy_Hypergraph)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
