// E13 -- overload and graceful degradation (DESIGN.md S13). E12 measures
// the serving front-end at offered rates it can absorb; this harness asks
// the production question: what happens past saturation? With a shed
// policy active (default here: reject-new) the answer must be a CHOICE,
// not an accident -- bounded admitted-request latency, an exact account of
// every shed request, and per-priority-class degradation (the low lane
// sheds first, the high lane keeps its p99).
//
// Method: first an unpaced run measures the front-end's saturation
// throughput on this machine. Then the sweep drives the same stream at
// {0.5, 1, 2, 4}x that rate under four arrival shapes -- poisson, bursty,
// flash-crowd (one sustained 8x mid-stream spike), and the targeted
// teardown adversary of E9a/E10 (unpaced insert warmup, then a paced
// delete storm aimed at matched edges: deletes are never shed, so
// overload shows up as backlog and latency, not shed fraction). Updates
// are routed to 2 priority lanes (~1/8 of traffic in the high lane; an
// edge's insert and delete share a lane). Warmup is submitted in chunks
// with a drain between chunks so nothing sheds before measurement starts.
//
// Every run self-checks exact shed conservation --
//   offered == committed + shed_reject + shed_evict + shed_stale (per
//   lane and in total), and committed == applied + absorbed + dropped --
// and exits nonzero on any mismatch; CI runs the pinned 2x-saturation
// poisson row and additionally gates the admitted p99 against
// BENCH_baseline.json (check_latency_regression.py).
//
// Flags: --arrival=poisson|bursty|flash|teardown and --load=N (percent of
// saturation, e.g. --load=200) restrict the sweep; --json records the
// table with the measured saturation rate, policy, lanes, and budget
// noted at the top level.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/targeted.h"
#include "bench_common.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "serve/service.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

constexpr graph::VertexId kN = 16384;
constexpr std::size_t kM = 3u * kN;
// Much smaller per-lane rings than E12: lane depth is exactly the admitted
// queue-wait bound under reject-new, and the bench wants that bound to be
// visibly tight at 2x saturation. (Deep rings also hide overload entirely
// on a stream that is half deletes: deletes are never shed, so a blocked
// delete serializes the producer to the drain's pace and a 4096-deep ring
// simply absorbs every burst in between.)
constexpr std::size_t kLaneCapacity = 512;
constexpr std::size_t kWarmChunk = 256;  // < lane share: warmup never sheds

struct LaneRow {
  std::uint64_t offered = 0, committed = 0, shed = 0;
  double p50_us = 0, p99_us = 0;
};

struct RunResult {
  LaneRow lane[serve::kMaxLanes];
  LaneRow all;
  std::size_t queue_hwm = 0;
  std::size_t mem_bytes = 0;
  const char* peak_state = "healthy";  // state sampled at submit-loop end
  std::uint64_t hist_overflow = 0;  // top-bucket latency clamps (clipped!)
  std::uint64_t fi_fired = 0;       // fault injections that actually fired
};

std::uint8_t lane_of(std::size_t edge_index, std::size_t lanes) {
  if (lanes < 2) return 0;
  return edge_index % 8 == 0 ? 0 : 1;  // ~12.5% high-priority traffic
}

serve::ServiceConfig make_config(std::uint64_t seed) {
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = seed;
  cfg.max_vertices = kN;
  cfg.queue_capacity = kLaneCapacity;
  // Bench defaults (env still wins): shedding on, two priority lanes --
  // an overload bench under the never-shed default would only measure
  // producer blocking.
  if (!std::getenv("PARMATCH_SHED"))
    cfg.admission.policy = serve::ShedPolicy::kRejectNew;
  if (!std::getenv("PARMATCH_LANES")) cfg.admission.lanes = 2;
  return cfg;
}

// Drives warmup (chunked, shed-free) + the paced measured phase, then
// folds the per-lane accounting and verifies exact conservation.
RunResult run_stream(const gen::Workload& w,
                     const std::vector<gen::Update>& stream,
                     const std::vector<std::uint64_t>& arrivals,
                     std::size_t warm, std::uint64_t seed,
                     double* achieved_commit = nullptr,
                     bool saturation_probe = false) {
  serve::ServiceConfig cfg = make_config(seed);
  // The saturation probe must be CLOSED-loop. An unpaced free-running
  // producer is the wrong probe on both ends: with shedding active it
  // mostly measures how fast the door says no, and with blocking
  // admission it ping-pongs yields with the drain on a time-shared core
  // (each blocked push burns the backoff ladder against a runnable drain
  // thread) -- both wildly underestimate commit capacity, and then the
  // "2x/4x" sweep never actually exceeds the real saturation point. So
  // the probe submits in sub-capacity chunks with a drain-to-idle between
  // chunks: nothing sheds, nothing blocks, and the measured rate is the
  // serial producer+drain cost -- exactly the closed-loop saturation of
  // this machine.
  if (saturation_probe) cfg.admission.policy = serve::ShedPolicy::kNone;
  serve::MatchService svc(cfg);
  svc.start();
  std::size_t lanes = cfg.admission.lanes;

  std::vector<std::uint64_t> ticket(w.master.size(), 0);
  auto submit = [&](const gen::Update& u) {
    std::uint8_t l = lane_of(u.edge, lanes);
    if (u.is_insert) {
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge), l);
    } else {
      // An insert shed at the door returned kShedTicket: there is nothing
      // to revoke, so the delete is skipped at the producer (stale or
      // evicted inserts still get their delete -- it lands on a dead
      // ticket and counts as dropped).
      if (ticket[u.edge] == serve::MatchService::kShedTicket) return;
      svc.submit_delete(ticket[u.edge], l);
    }
  };

  for (std::size_t i = 0; i < warm; ++i) {
    submit(stream[i]);
    if ((i + 1) % kWarmChunk == 0) svc.drain_until_idle();
  }
  svc.drain_until_idle();
  svc.reset_stats();

  std::size_t n = stream.size() - warm;
  std::uint64_t t0 = serve::now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    if (!arrivals.empty()) {
      std::uint64_t due = t0 + arrivals[i];
      for (;;) {
        std::uint64_t now = serve::now_ns();
        if (now >= due) break;
        if (due - now > 2'000) std::this_thread::yield();
      }
    } else if (saturation_probe && (i + 1) % kWarmChunk == 0) {
      svc.drain_until_idle();
    }
    submit(stream[warm + i]);
  }
  RunResult r;
  // Degradation state while the load is still applied -- after the drain
  // it has decayed back toward healthy, which is its own (tested)
  // property, not the overload answer.
  r.peak_state = serve::overload_state_name(svc.overload_state());
  svc.drain_until_idle();
  if (achieved_commit) {
    const serve::ServiceStats& st0 = svc.stats();
    double secs = static_cast<double>(st0.last_commit_ns - t0) * 1e-9;
    *achieved_commit =
        secs > 0 ? static_cast<double>(st0.batch_updates_sum) / secs : 0;
  }
  svc.stop();

  const serve::ServiceStats& st = svc.stats();
  for (std::size_t l = 0; l < lanes; ++l) {
    auto lr = svc.lane_report(l);
    std::uint64_t shed = lr.shed_reject + lr.shed_evict + lr.shed_stale;
    r.lane[l] = {lr.offered, lr.committed, shed, lr.latency->quantile(0.50),
                 lr.latency->quantile(0.99)};
    r.all.offered += lr.offered;
    r.all.committed += lr.committed;
    r.all.shed += shed;
    if (lr.offered != lr.committed + shed) {
      std::fprintf(stderr,
                   "E13: shed conservation violated on lane %zu: offered "
                   "%llu != committed %llu + shed %llu\n",
                   l, static_cast<unsigned long long>(lr.offered),
                   static_cast<unsigned long long>(lr.committed),
                   static_cast<unsigned long long>(shed));
      std::exit(1);
    }
  }
  r.all.p50_us = st.latency.quantile(0.50);
  r.all.p99_us = st.latency.quantile(0.99);
  // committed == applied + absorbed + dropped: nothing admitted vanished.
  std::uint64_t applied_total = st.applied_inserts + st.applied_deletes +
                                st.dropped_deletes + 2 * st.annihilated +
                                st.deduped_deletes;
  if (r.all.committed != applied_total) {
    std::fprintf(stderr,
                 "E13: commit accounting violated: committed %llu != "
                 "applied+absorbed+dropped %llu\n",
                 static_cast<unsigned long long>(r.all.committed),
                 static_cast<unsigned long long>(applied_total));
    std::exit(1);
  }
  r.queue_hwm = st.queue_hwm;
  r.mem_bytes = svc.matcher().memory_bytes();
  r.hist_overflow = st.latency.overflow_count();
  r.fi_fired = svc.fault_injector().report().total();
  return r;
}

struct Scenario {
  const char* name;
  gen::ArrivalModel model;
  bool teardown;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e13");
  const char* only_arrival = nullptr;
  std::size_t only_load_pct = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--arrival=", 10) == 0)
      only_arrival = argv[i] + 10;
    else if (std::strcmp(argv[i], "--arrival") == 0 && i + 1 < argc)
      only_arrival = argv[i + 1];
    else if (std::strncmp(argv[i], "--load=", 7) == 0)
      only_load_pct = std::strtoull(argv[i] + 7, nullptr, 10);
    else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc)
      only_load_pct = std::strtoull(argv[i + 1], nullptr, 10);
  }

  serve::ServiceConfig cfg = make_config(seed);
  std::printf(
      "E13: overload and graceful degradation. n=%u, m=%zu, policy=%s,\n"
      "    lanes=%zu (lane 0 = high priority, ~1/8 of traffic), lane\n"
      "    capacity=%zu, admit budget=%llu us. Rows: arrival shape x\n"
      "    offered load (fraction of measured saturation) x lane.\n\n",
      kN, kM, serve::shed_policy_name(cfg.admission.policy),
      cfg.admission.lanes, kLaneCapacity,
      static_cast<unsigned long long>(cfg.former.admit_budget_us));

  // Streams: mixed churn for the rate-shaped arrivals; the targeted
  // teardown adversary for the revocation storm.
  gen::Workload churn_w =
      gen::churn(gen::erdos_renyi(kN, kM, seed + 7), 1, 0.5, seed + 11);
  std::vector<gen::Update> churn_stream = gen::flatten(churn_w);
  std::size_t churn_warm = churn_stream.size() / 3;

  gen::Workload teardown_w =
      baseline::targeted_teardown(gen::erdos_renyi(kN, kM, seed + 7));
  std::vector<gen::Update> teardown_stream = gen::flatten(teardown_w);
  std::size_t teardown_warm = kM;  // the insert-everything prefix

  // Saturation anchor: a chunked closed-loop probe (submit a sub-capacity
  // chunk, drain to idle, repeat) measures the serial producer+drain cost
  // per update. It is deliberately thrash-free -- no ring-full backoff, no
  // producer/drain context-switch storm -- so it is reproducible, and it
  // is a mild UNDER-estimate of paced capacity (pacing overlaps producer
  // waits with drain work), which makes the sweep's "2x" a conservative
  // label: true overload at 2x is at least as bad as what this shows.
  double sat_rate = 0;
  run_stream(churn_w, churn_stream, {}, churn_warm, seed, &sat_rate, true);
  if (sat_rate <= 0) sat_rate = 1e6;
  std::printf("measured saturation: %.0f committed updates/s\n\n", sat_rate);

  JsonSink::instance().note("harness", "overload");
  JsonSink::instance().note("saturation_per_s", Table::num(sat_rate, 0));
  JsonSink::instance().note("policy",
                            serve::shed_policy_name(cfg.admission.policy));
  JsonSink::instance().note("lanes", std::to_string(cfg.admission.lanes));
  JsonSink::instance().note("lane_capacity", std::to_string(kLaneCapacity));
  JsonSink::instance().note("admit_budget_us",
                            std::to_string(cfg.former.admit_budget_us));
  JsonSink::instance().note("latency_quantile_rel_err", "0.045");

  Table table({"arrival", "loadx", "lane", "offered", "accepted", "shed",
               "shed_frac", "p50_us", "p99_us", "q_hwm", "state",
               "mem_bytes", "bytes_per_upd"});

  const Scenario scenarios[] = {
      {"poisson", gen::ArrivalModel::kPoisson, false},
      {"bursty", gen::ArrivalModel::kBursty, false},
      {"flash", gen::ArrivalModel::kFlashCrowd, false},
      {"teardown", gen::ArrivalModel::kPoisson, true},
  };
  const double loads[] = {0.5, 1.0, 2.0, 4.0};

  // Run-wide fault-injection / histogram-clipping accounting (json note +
  // printed line): the CI FI smoke asserts fi_fired_total > 0 under its
  // knobs, so a mis-spelled knob injecting nothing fails loudly.
  std::uint64_t fi_fired_total = 0, overflow_total = 0;

  for (const Scenario& sc : scenarios) {
    if (only_arrival && std::strcmp(only_arrival, sc.name) != 0) continue;
    const gen::Workload& w = sc.teardown ? teardown_w : churn_w;
    const std::vector<gen::Update>& stream =
        sc.teardown ? teardown_stream : churn_stream;
    std::size_t warm = sc.teardown ? teardown_warm : churn_warm;
    for (double loadx : loads) {
      if (only_load_pct != 0 &&
          static_cast<std::size_t>(loadx * 100.0 + 0.5) != only_load_pct)
        continue;
      auto arrivals =
          gen::arrival_times_ns(stream.size() - warm, sat_rate * loadx,
                                sc.model, seed + 13);
      RunResult r = run_stream(w, stream, arrivals, warm, seed);
      fi_fired_total += r.fi_fired;
      overflow_total += r.hist_overflow;
      auto frac = [](const LaneRow& lr) {
        return lr.offered == 0 ? 0.0
                               : static_cast<double>(lr.shed) /
                                     static_cast<double>(lr.offered);
      };
      for (std::size_t l = 0; l < cfg.admission.lanes; ++l) {
        const LaneRow& lr = r.lane[l];
        table.row({sc.name, Table::num(loadx, 1), Table::num(l),
                   Table::num(lr.offered), Table::num(lr.committed),
                   Table::num(lr.shed), Table::num(frac(lr), 4),
                   Table::num(lr.p50_us), Table::num(lr.p99_us), "-", "-",
                   "-", "-"});
      }
      double bytes_per_upd =
          r.all.committed == 0 ? 0.0
                               : static_cast<double>(r.mem_bytes) /
                                     static_cast<double>(r.all.committed);
      table.row({sc.name, Table::num(loadx, 1), "all",
                 Table::num(r.all.offered), Table::num(r.all.committed),
                 Table::num(r.all.shed), Table::num(frac(r.all), 4),
                 Table::num(r.all.p50_us), Table::num(r.all.p99_us),
                 Table::num(r.queue_hwm), r.peak_state,
                 Table::num(r.mem_bytes), Table::num(bytes_per_upd, 1)});
    }
  }
  JsonSink::instance().note("fi_fired_total", std::to_string(fi_fired_total));
  JsonSink::instance().note("latency_overflow_total",
                            std::to_string(overflow_total));
  std::printf("\nfi_fired_total=%llu latency_overflow_total=%llu\n",
              static_cast<unsigned long long>(fi_fired_total),
              static_cast<unsigned long long>(overflow_total));
  return 0;
}
