// E10 -- ablations over the design choices called out in Section 5:
//
//  * level gap alpha = 2 (paper) vs 4 vs 8: wider gaps make matches heavy
//    later, shifting work from settles to light rematch floods;
//  * heavy threshold factor 4 (paper) vs 1 vs 16: when to give up on a
//    match's neighborhood and resample;
//  * light-only (footnote 8): correct but abandons the lazy machinery --
//    the work blowup shows why random settling exists;
//  * steal fixed point (ISSUE 7): the deterministic-reservations steal
//    resolves displaced chains in-batch (steal_1round keeps the legacy
//    single claim round, PARMATCH_STEAL_FIXPOINT=0) -- the steal_rds /
//    retries columns show the engine iterating where the legacy path
//    stopped after one round.
//
// Workloads: the adversarial targeted teardown (settle-heavy) and a neutral
// churn (balanced), both rank 2.
#include <cstdio>

#include "baseline/targeted.h"
#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "gen/workloads.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

struct Variant {
  const char* name;
  dyn::Config cfg;
  bool steal_fixpoint = true;
};

std::vector<Variant> variants(std::uint64_t seed) {
  std::vector<Variant> out;
  dyn::Config base;
  base.seed = seed;
  {
    Variant v{"paper(a2,h4)", base};
    out.push_back(v);
  }
  {
    Variant v{"gap_a4", base};
    v.cfg.level_gap = 4;
    out.push_back(v);
  }
  {
    Variant v{"gap_a8", base};
    v.cfg.level_gap = 8;
    out.push_back(v);
  }
  {
    Variant v{"heavy_f1", base};
    v.cfg.heavy_factor = 1;
    out.push_back(v);
  }
  {
    Variant v{"heavy_f16", base};
    v.cfg.heavy_factor = 16;
    out.push_back(v);
  }
  {
    Variant v{"light_only", base};
    v.cfg.light_only = true;
    out.push_back(v);
  }
  {
    Variant v{"steal_1round", base};
    v.steal_fixpoint = false;
    out.push_back(v);
  }
  return out;
}

void run_table(const char* title, std::uint64_t seed,
               const gen::Workload& w) {
  std::printf("%s\n\n", title);
  Table table({"variant", "us/update", "work/update", "samples/upd",
               "settles", "steal_rds", "retries", "stolen", "bloated"});
  for (const auto& v : variants(seed)) {
    dyn::set_steal_fixpoint(v.steal_fixpoint);
    dyn::DynamicMatcher dm(v.cfg);
    double secs = drive_workload(dm, w);
    const auto& st = dm.cumulative_stats();
    double updates = static_cast<double>(st.total_updates());
    table.row({v.name, Table::num(secs * 1e6 / updates),
               Table::num(static_cast<double>(st.work_units) / updates, 2),
               Table::num(static_cast<double>(st.samples_created) / updates,
                          2),
               Table::num(st.settle_rounds), Table::num(st.steal_rounds),
               Table::num(st.spec_retries), Table::num(st.stolen),
               Table::num(st.bloated)});
  }
  dyn::set_steal_fixpoint(true);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e10");
  std::printf(
      "E10: ablations of Section 5's design choices (gap, heavy factor,\n"
      "     light-only). Claim: the paper's configuration is on the\n"
      "     efficient frontier for adversarial deletions.\n\n");
  // Adversarial with mixed degrees: the oblivious sequence precomputed
  // against the folklore matcher, on a skewed RMAT graph, hits hubs of many
  // different sizes -- levels, settles and steals all engage.
  auto adversarial =
      baseline::targeted_teardown(gen::rmat(13, 24'576, seed + 3));
  run_table("-- adversarial: targeted teardown of an RMAT graph (m=24576)",
            seed, adversarial);
  // Sustained hub churn: spokes of eight degree-2048 hubs stream through a
  // sliding window, so matched spokes keep getting deleted while the hub
  // degree stays high -- the heavy/settle path fires continuously.
  auto sliding = gen::sliding_window(gen::hub_graph(8, 2'048), 512, 4);
  run_table("-- sustained: sliding window over 8 hubs of degree 2048",
            seed, sliding);
  return 0;
}
