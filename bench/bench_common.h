// Shared helpers for the experiment benches (DESIGN.md Section 4).
//
// The experiment harnesses E1-E4 and E6-E10 are standalone table printers:
// they measure amortized quantities across whole update sequences (multiple
// batches, warm structures), which does not fit the google-benchmark
// iteration model; micro benches and the static-matching experiment (E5)
// use google-benchmark directly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gen/workloads.h"
#include "graph/edge_batch.h"
#include "util/timer.h"

namespace parmatch::bench {

// Parses `--seed N` / `--seed=N` from argv (default `def`). Every table
// bench derives all of its generator and matcher seeds from this one value,
// so a recorded table can be reproduced exactly with the same flag.
inline std::uint64_t seed_from_args(int argc, char** argv,
                                    std::uint64_t def = 42) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strncmp(argv[i], "--seed=", 7) == 0)
      return std::strtoull(argv[i] + 7, nullptr, 10);
  }
  return def;
}

// Drives a workload through any matcher with insert_edges/delete_edges;
// returns elapsed seconds. `live` is pre-sized once from the master batch
// (step indices are master indices), and empty steps are skipped so
// degenerate scripts cost nothing.
template <typename M>
double drive_workload(M& m, const gen::Workload& w) {
  std::vector<graph::EdgeId> live(w.master.size());
  Timer t;
  for (const auto& step : w.steps) {
    if (step.edges.empty()) continue;
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = m.insert_edges(chunk);
      for (std::size_t j = 0; j < step.edges.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      ids.reserve(step.edges.size());
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      m.delete_edges(ids);
    }
  }
  return t.elapsed();
}

// Fixed-width table printing, one row per parameter point.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) std::printf("%16s", h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) std::printf("%16s",
        "---------------");
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%16s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

  static std::string num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string num(std::size_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
};

}  // namespace parmatch::bench
