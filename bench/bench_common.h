// Shared helpers for the experiment benches (DESIGN.md Section 4).
//
// The experiment harnesses E1-E4 and E6-E10 are standalone table printers:
// they measure amortized quantities across whole update sequences (multiple
// batches, warm structures), which does not fit the google-benchmark
// iteration model; micro benches and the static-matching experiment (E5)
// use google-benchmark directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "gen/workloads.h"
#include "graph/edge_batch.h"
#include "util/timer.h"

namespace parmatch::bench {

// Drives a workload through any matcher with insert_edges/delete_edges;
// returns elapsed seconds.
template <typename M>
double drive_workload(M& m, const gen::Workload& w) {
  std::vector<graph::EdgeId> live(w.master.size());
  Timer t;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = m.insert_edges(chunk);
      for (std::size_t j = 0; j < step.edges.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      ids.reserve(step.edges.size());
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      m.delete_edges(ids);
    }
  }
  return t.elapsed();
}

// Fixed-width table printing, one row per parameter point.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) std::printf("%16s", h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) std::printf("%16s",
        "---------------");
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%16s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

  static std::string num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string num(std::size_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
};

}  // namespace parmatch::bench
