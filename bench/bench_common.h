// Shared helpers for the experiment benches (DESIGN.md Section 4).
//
// The experiment harnesses E1-E4, E6-E12, and the scheduler micro bench
// are standalone table printers: they measure amortized or percentile
// quantities across whole update sequences (multiple batches, warm
// structures, open-loop streams), which does not fit the google-benchmark
// iteration model; the other micro benches and the static-matching
// experiment (E5) use google-benchmark directly.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "gen/workloads.h"
#include "graph/edge_batch.h"
#include "parallel/cost_model.h"
#include "parallel/parallel_for.h"
#include "util/mem_stats.h"
#include "util/timer.h"

namespace parmatch::bench {

// Parses `--seed N` / `--seed=N` from argv (default `def`). Every table
// bench derives all of its generator and matcher seeds from this one value,
// so a recorded table can be reproduced exactly with the same flag.
inline std::uint64_t seed_from_args(int argc, char** argv,
                                    std::uint64_t def = 42) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
    if (std::strncmp(argv[i], "--seed=", 7) == 0)
      return std::strtoull(argv[i] + 7, nullptr, 10);
  }
  return def;
}

// Machine-readable recording of the table benches (`--json[=path]`). When
// enabled, every Table mirrors its headers and rows into a sink that is
// written as one JSON document at process exit -- default path
// BENCH_<NAME>.json -- so E1/E3/E4 runs can accumulate a perf trajectory
// next to the human-readable tables. Cells are emitted as JSON numbers when
// they parse as one, else as strings.
//
// Every record carries the run configuration -- worker count, seed, build
// type, sanitizer, and execution mode -- so records from different
// machines, thread counts, or build flavors can be compared without
// guessing what produced them.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink s;
    return s;
  }

  // Parses --json / --json=path; `name` is the bench tag (e.g. "e3").
  void configure(int argc, char** argv, const std::string& name,
                 std::uint64_t seed) {
    name_ = name;
    seed_ = seed;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        path_ = default_path();
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      }
    }
  }

  bool enabled() const { return !path_.empty(); }

  // Extra run-configuration fields emitted at the top level of the json
  // document (numbers stay numbers). Open-loop benches MUST note their
  // arrival model and target rate here, so recorded BENCH_*.json A/Bs stay
  // self-describing: a latency figure without the offered-load model that
  // produced it is not comparable across runs.
  void note(const std::string& key, const std::string& value) {
    for (auto& kv : notes_)
      if (kv.first == key) {
        kv.second = value;
        return;
      }
    notes_.emplace_back(key, value);
  }

  void begin_table(const std::vector<std::string>& headers) {
    if (!enabled()) return;
    tables_.push_back(TableRec{headers, {}});
  }

  void add_row(const std::vector<std::string>& cells) {
    if (!enabled() || tables_.empty()) return;
    tables_.back().rows.push_back(cells);
  }

  ~JsonSink() { flush(); }

 private:
  struct TableRec {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string default_path() const {
    std::string up = name_;
    for (char& c : up) c = static_cast<char>(std::toupper(c));
    return "BENCH_" + up + ".json";
  }

  static bool is_number(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
  }

  static void emit_cell(FILE* f, const std::string& c) {
    if (is_number(c)) {
      std::fprintf(f, "%s", c.c_str());
      return;
    }
    std::fputc('"', f);
    for (char ch : c) {
      if (ch == '"' || ch == '\\') std::fputc('\\', f);
      std::fputc(ch, f);
    }
    std::fputc('"', f);
  }

  static const char* build_type() {
#ifdef NDEBUG
    return "Release";
#else
    return "Debug";
#endif
  }

  static const char* sanitizer() {
#if defined(__SANITIZE_ADDRESS__)
    return "asan";
#elif defined(__SANITIZE_THREAD__)
    return "tsan";
#else
    return "none";
#endif
  }

  static const char* exec_mode_name() {
    switch (parmatch::parallel::exec_mode()) {
      case parmatch::parallel::ExecMode::kSequential:
        return "sequential";
      case parmatch::parallel::ExecMode::kParallel:
        return "parallel";
      default:
        return "adaptive";
    }
  }

  void flush() {
    if (!enabled()) return;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    // rss_peak_kb: the process's high-water resident set at flush (exit)
    // time -- the whole-run memory envelope next to the latency numbers
    // (0 where /proc is unavailable).
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"seed\":%llu,\"threads\":%d,"
                 "\"build\":\"%s\",\"sanitizer\":\"%s\",\"exec_mode\":\"%s\","
                 "\"rss_peak_kb\":%llu",
                 name_.c_str(), static_cast<unsigned long long>(seed_),
                 parmatch::parallel::num_workers(), build_type(), sanitizer(),
                 exec_mode_name(),
                 static_cast<unsigned long long>(
                     parmatch::util::peak_rss_bytes() / 1024));
    for (const auto& [key, value] : notes_) {
      std::fprintf(f, ",\"");
      for (char ch : key) {
        if (ch == '"' || ch == '\\') std::fputc('\\', f);
        std::fputc(ch, f);
      }
      std::fprintf(f, "\":");
      emit_cell(f, value);
    }
    std::fprintf(f, ",\"tables\":[");
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const TableRec& tr = tables_[t];
      std::fprintf(f, "%s{\"headers\":[", t ? "," : "");
      for (std::size_t i = 0; i < tr.headers.size(); ++i) {
        if (i) std::fputc(',', f);
        emit_cell(f, tr.headers[i]);
      }
      std::fprintf(f, "],\"rows\":[");
      for (std::size_t r = 0; r < tr.rows.size(); ++r) {
        std::fprintf(f, "%s[", r ? "," : "");
        for (std::size_t i = 0; i < tr.rows[r].size(); ++i) {
          if (i) std::fputc(',', f);
          emit_cell(f, tr.rows[r][i]);
        }
        std::fputc(']', f);
      }
      std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("(json written to %s)\n", path_.c_str());
    path_.clear();
  }

  std::string name_;
  std::string path_;
  std::uint64_t seed_ = 0;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<TableRec> tables_;
};

// One call at the top of every table bench: parses --seed and --json and
// returns the seed. Touching JsonSink::instance() here also guarantees the
// sink outlives every Table.
inline std::uint64_t bench_init(int argc, char** argv, const char* name,
                                std::uint64_t default_seed = 42) {
  std::uint64_t seed = seed_from_args(argc, argv, default_seed);
  JsonSink::instance().configure(argc, argv, name, seed);
  return seed;
}

// Drives a workload through any matcher with insert_edges/delete_edges;
// returns elapsed seconds. `live` is pre-sized once from the master batch
// (step indices are master indices), and empty steps are skipped so
// degenerate scripts cost nothing.
template <typename M>
double drive_workload(M& m, const gen::Workload& w) {
  std::vector<graph::EdgeId> live(w.master.size());
  Timer t;
  for (const auto& step : w.steps) {
    if (step.edges.empty()) continue;
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = m.insert_edges(chunk);
      for (std::size_t j = 0; j < step.edges.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      ids.reserve(step.edges.size());
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      m.delete_edges(ids);
    }
  }
  return t.elapsed();
}

// Fixed-width table printing, one row per parameter point. Rows are also
// mirrored into the JsonSink when --json is active.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) std::printf("%16s", h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) std::printf("%16s",
        "---------------");
    std::printf("\n");
    JsonSink::instance().begin_table(headers_);
  }

  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%16s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
    JsonSink::instance().add_row(cells);
  }

  static std::string num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string num(std::size_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
};

}  // namespace parmatch::bench
