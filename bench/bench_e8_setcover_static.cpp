// E8 -- Corollary 1.5: static parallel r-approximate set cover in O(m')
// expected work.
//
// Sweeps the total cardinality m'; the us/m' column should stay flat, and
// the realized ratio (cover / matching lower bound) stays below r.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "setcover/set_cover.h"
#include "util/rng.h"

using namespace parmatch;
using namespace parmatch::bench;
using setcover::SetId;

namespace {

setcover::ElementBatch random_system(SetId sets, std::size_t elements,
                                     std::size_t r, std::uint64_t seed) {
  Rng rng(seed);
  setcover::ElementBatch batch;
  std::vector<SetId> picks;
  for (std::size_t i = 0; i < elements; ++i) {
    std::size_t k = 1 + rng.next_below(r);
    picks.clear();
    while (picks.size() < k) {
      auto s = static_cast<SetId>(rng.next_below(sets));
      bool dup = false;
      for (SetId p : picks) dup = dup || p == s;
      if (!dup) picks.push_back(s);
    }
    batch.add(std::span<const SetId>(picks));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e8");
  std::printf(
      "E8: static set cover, r=4. Claim: time linear in total cardinality\n"
      "    m' (us/m' flat), ratio <= r.\n\n");
  Table table({"elements", "m'", "ms", "ns/m'", "cover", "lower_bound",
               "ratio"});
  const std::size_t r = 4;
  for (std::size_t m : {1ul << 14, 1ul << 16, 1ul << 18, 1ul << 20}) {
    auto system =
        random_system(static_cast<SetId>(m / 8), m, r, seed + m);
    std::size_t mprime = system.total_cardinality();
    Timer timer;
    auto res = setcover::static_set_cover(system, r, seed + 13);
    double secs = timer.elapsed();
    double ratio = res.matching_size == 0
                       ? 1.0
                       : static_cast<double>(res.cover.size()) /
                             static_cast<double>(res.matching_size);
    table.row({Table::num(m), Table::num(mprime), Table::num(secs * 1e3),
               Table::num(secs * 1e9 / static_cast<double>(mprime)),
               Table::num(res.cover.size()), Table::num(res.matching_size),
               Table::num(ratio, 2)});
  }
  return 0;
}
