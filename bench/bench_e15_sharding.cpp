// E15 -- sharded scale-out: shard count x cross-shard traffic fraction
// (DESIGN.md S15). One table, one row per (cross_frac, shards) point of a
// mixed churn workload whose edge endpoints are drawn to hit a target
// cross-shard fraction under the S=4 reference partition:
//
//   * throughput (upd/s and us/upd) -- the --compare-scaling CI gate reads
//     the upd_per_s column (shards=4 row vs shards=1 row of the SAME run;
//     on this 1-hardware-thread container the protocol's extra rounds are
//     pure overhead, so the gate is a lenient floor, not a speedup claim),
//   * measured cross-edge fraction and per-shard mesh traffic (claims,
//     verdicts, cross messages, ring spills),
//   * settle/steal/greedy round counts -- the bounded-round story.
//
// Self-checks are the exit code, not prose: every row audits
// check_consistent(), exact mesh conservation (messages sent == received,
// cross-sent == cross-received, summed over shards), and the level-3
// determinism contract -- the S=2 and S=4 matchings must be bit-identical
// to the S=1 matching of the same workload. Any violation fails the bench
// (nonzero exit), so the bench-smoke CI job is also a correctness gate.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "shard/shard_map.h"
#include "shard/sharded_matcher.h"
#include "util/timer.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

constexpr graph::VertexId kN = 16384;
constexpr std::size_t kM = 3u * kN;
constexpr std::uint32_t kRefShards = 4;  // partition the fractions target

// Edge endpoints drawn to cross the S=4 reference partition with
// probability `frac`: same-bucket endpoints otherwise. The buckets come
// from shard_of itself, so "cross" here is exactly what the S=4 run will
// see; at S=2 a subset of those pairs still crosses (reported per row as
// the MEASURED fraction, not the target).
graph::EdgeBatch fraction_graph(double frac, std::uint64_t seed) {
  std::vector<std::vector<graph::VertexId>> bucket(kRefShards);
  for (graph::VertexId v = 0; v < kN; ++v)
    bucket[shard::shard_of(v, kRefShards)].push_back(v);
  graph::EdgeBatch b;
  Rng rng(seed);
  for (std::size_t i = 0; i < kM; ++i) {
    std::uint32_t s0 =
        static_cast<std::uint32_t>(rng.next_below(kRefShards));
    std::uint32_t s1 = s0;
    bool cross = rng.next_below(1'000'000) <
                 static_cast<std::uint64_t>(frac * 1'000'000);
    if (cross)
      s1 = (s0 + 1 + static_cast<std::uint32_t>(
                         rng.next_below(kRefShards - 1))) %
           kRefShards;
    graph::VertexId u =
        bucket[s0][rng.next_below(bucket[s0].size())];
    graph::VertexId v =
        bucket[s1][rng.next_below(bucket[s1].size())];
    if (u == v) v = bucket[s1][(rng.next_below(bucket[s1].size()))];
    if (u == v) continue;
    graph::VertexId vs[2] = {u, v};
    b.add(std::span<const graph::VertexId>(vs, 2));
  }
  return b;
}

struct RunResult {
  double secs = 0;
  std::size_t updates = 0;
  std::size_t matched = 0;
  double cross_frac = 0;  // measured over final live edges
  std::uint64_t cross_msgs = 0;
  std::uint64_t spills = 0;
  std::uint64_t settle_rounds = 0, steal_rounds = 0, greedy_rounds = 0;
  std::size_t mem_bytes = 0;
  std::vector<graph::EdgeId> matching;
  bool consistent = false, conserved = false;
};

RunResult run_point(const gen::Workload& w, std::uint32_t shards,
                    std::uint64_t seed) {
  shard::Config cfg;
  cfg.base.seed = seed;
  cfg.shards = shards;
  shard::ShardedMatcher sm(cfg);

  std::vector<graph::EdgeId> live(w.master.size(), graph::kInvalidEdge);
  RunResult r;
  Timer t;
  for (const auto& step : w.steps) {
    if (step.is_insert) {
      graph::EdgeBatch chunk;
      for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
      auto ids = sm.insert_edges(chunk);
      for (std::size_t j = 0; j < ids.size(); ++j)
        live[step.edges[j]] = ids[j];
    } else {
      std::vector<graph::EdgeId> ids;
      for (std::size_t i : step.edges) ids.push_back(live[i]);
      sm.delete_edges(ids);
    }
    r.updates += step.edges.size();
  }
  r.secs = t.elapsed();

  r.matched = sm.matched_count();
  r.matching = sm.matching();
  r.consistent = sm.check_consistent();
  std::uint64_t sent = 0, recv = 0, cs = 0, cr = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto& c = sm.counters(s);
    sent += c.msgs_sent;
    recv += c.msgs_recv;
    cs += c.cross_sent;
    cr += c.cross_recv;
  }
  r.conserved = sent == recv && cs == cr;
  r.cross_msgs = cs;
  r.spills = sm.ring_spills();
  r.settle_rounds = sm.protocol_stats().settle_rounds;
  r.steal_rounds = sm.protocol_stats().steal_rounds;
  r.greedy_rounds = sm.protocol_stats().greedy_rounds;
  r.mem_bytes = sm.memory_bytes();

  std::size_t live_n = 0, live_cross = 0;
  for (graph::EdgeId e : live)
    if (e != graph::kInvalidEdge) {
      ++live_n;
      if (shard::crosses_shards(sm.pool().vertices(e), shards)) ++live_cross;
    }
  r.cross_frac = live_n ? static_cast<double>(live_cross) / live_n : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e15");

  const double fracs[] = {0.0, 0.5, 1.0};
  const std::uint32_t shard_counts[] = {1, 2, 4};

  Table table({"cross_frac", "shards", "updates", "wall_ms", "upd_per_s",
               "us_per_upd", "matched", "live_cross", "cross_msgs",
               "spills", "settle_rds", "steal_rds", "mem_mb"});

  int failures = 0;
  for (double frac : fracs) {
    gen::Workload w =
        gen::churn(fraction_graph(frac, seed + 17), 256, 0.5, seed + 29);
    std::vector<graph::EdgeId> reference;
    for (std::uint32_t shards : shard_counts) {
      RunResult r = run_point(w, shards, seed);
      if (!r.consistent) {
        std::fprintf(stderr,
                     "FAIL: check_consistent() at frac=%.2f shards=%u\n",
                     frac, shards);
        ++failures;
      }
      if (!r.conserved) {
        std::fprintf(stderr,
                     "FAIL: mesh conservation at frac=%.2f shards=%u\n",
                     frac, shards);
        ++failures;
      }
      if (shards == shard_counts[0]) {
        reference = r.matching;
      } else if (r.matching != reference) {
        std::fprintf(stderr,
                     "FAIL: matching at shards=%u diverges from shards=%u "
                     "(frac=%.2f) -- level-3 determinism broken\n",
                     shards, shard_counts[0], frac);
        ++failures;
      }
      double upd_per_s = r.secs > 0 ? r.updates / r.secs : 0;
      table.row({Table::num(frac, 2), Table::num(std::size_t{shards}),
                 Table::num(r.updates), Table::num(r.secs * 1e3, 2),
                 Table::num(upd_per_s, 0),
                 Table::num(r.updates ? r.secs * 1e6 / r.updates : 0, 3),
                 Table::num(r.matched), Table::num(r.cross_frac, 3),
                 Table::num(std::size_t{r.cross_msgs}),
                 Table::num(std::size_t{r.spills}),
                 Table::num(std::size_t{r.settle_rounds}),
                 Table::num(std::size_t{r.steal_rounds}),
                 Table::num(static_cast<double>(r.mem_bytes) / (1u << 20),
                            2)});
    }
  }

  JsonSink::instance().note("self_checks",
                            failures == 0 ? "pass" : "FAIL");
  std::printf("\nself_checks=%s (consistency, mesh conservation, "
              "S-invariant matchings)\n",
              failures == 0 ? "pass" : "FAIL");
  return failures == 0 ? 0 : 1;
}
