// E4 -- Corollary 1.2: the algorithm is work-optimal, so parallelism comes
// without work blowup. This bench reports self-relative scaling of the
// library against a measured *hardware ceiling*, because virtualized or
// SMT-shared "cores" often cannot give 2x even to embarrassingly parallel
// register-only code. Rows:
//   alu_ceiling   raw std::thread scaling of pure compute (the ceiling)
//   pfor_fill     parallel_for over a large array (scheduler overhead view)
//   static_match  parallelGreedyMatch on a large graph (Lemma 1.3 workload)
//   dynamic       large-batch churn through the full dynamic structure
// Speedups close to the ceiling mean the scheduler adds little; memory-
// bandwidth-bound phases (radix scatter) may fall below it.
//
// The worker count is fixed at scheduler startup (PARMATCH_NUM_THREADS), so
// the binary re-executes itself once per thread count.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

unsigned long spin(long iters) {
  unsigned long acc = 1;
  for (long i = 0; i < iters; ++i)
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  return acc;
}

// Raw two-thread compute ceiling, measured without the scheduler.
double alu_seconds(int threads) {
  const long kIters = 400'000'000;
  Timer t;
  std::vector<std::thread> ts;
  for (int i = 1; i < threads; ++i)
    ts.emplace_back([&] { volatile auto x = spin(kIters); (void)x; });
  volatile auto x = spin(kIters);
  (void)x;
  for (auto& th : ts) th.join();
  return t.elapsed();
}

int run_worker(std::uint64_t seed) {
  double pfor;
  {
    std::vector<double> v(1 << 24);
    Timer t;
    for (int rep = 0; rep < 4; ++rep)
      parallel::parallel_for(0, v.size(), [&](std::size_t i) {
        v[i] = static_cast<double>(i) * 1.5 + v[i];
      });
    pfor = t.elapsed();
  }
  double stat;
  {
    graph::EdgePool pool(2);
    auto ids = pool.add_edges(gen::erdos_renyi(1u << 17, 1u << 19, seed + 3));
    Timer t;
    auto result = matching::parallel_greedy_match(pool, ids, seed + 9);
    stat = t.elapsed();
    if (result.matched.empty()) return 1;
  }
  double dyn_secs;
  {
    auto w = gen::churn(gen::erdos_renyi(1u << 17, 3u << 17, seed + 5),
                        65'536, 0.5, seed + 7);
    dyn::Config cfg;
    cfg.seed = seed;
    dyn::DynamicMatcher dm(cfg);
    dyn_secs = drive_workload(dm, w);
  }
  std::printf("RESULT %d %.6f %.6f %.6f\n", parallel::num_workers(), pfor,
              stat, dyn_secs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = seed_from_args(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0)
    return run_worker(seed);
  // JSON recording belongs to the parent only; the re-exec'd workers print
  // RESULT lines that the parent folds into its Table.
  JsonSink::instance().configure(argc, argv, "e4", seed);

  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  std::printf(
      "E4: self-relative scaling vs the measured hardware ceiling.\n\n");
  double alu1 = alu_seconds(1);

  Table table({"threads", "alu_ceiling", "pfor_fill", "static_match",
               "dynamic"});
  double pfor1 = 0, stat1 = 0, dyn1 = 0;
  for (int p = 1; p <= hw; p *= 2) {
    char cmd[512];
    std::snprintf(cmd, sizeof(cmd),
                  "PARMATCH_NUM_THREADS=%d %s --worker --seed %llu "
                  "> /tmp/parmatch_e4.out",
                  p, argv[0], static_cast<unsigned long long>(seed));
    if (std::system(cmd) != 0) {
      std::fprintf(stderr, "worker failed for p=%d\n", p);
      return 1;
    }
    FILE* f = std::fopen("/tmp/parmatch_e4.out", "r");
    int threads = 0;
    double pf = 0, st = 0, dy = 0;
    if (std::fscanf(f, "RESULT %d %lf %lf %lf", &threads, &pf, &st, &dy) !=
        4) {
      std::fclose(f);
      std::fprintf(stderr, "bad worker output for p=%d\n", p);
      return 1;
    }
    std::fclose(f);
    if (p == 1) {
      pfor1 = pf;
      stat1 = st;
      dyn1 = dy;
    }
    // Ceiling: p threads each doing the 1-thread workload; perfect sharing
    // would take alu1 (speedup p); the measured ratio is the achievable cap.
    double ceiling = p == 1 ? 1.0 : p * alu1 / alu_seconds(p);
    table.row({Table::num(static_cast<std::size_t>(threads)),
               Table::num(ceiling, 2), Table::num(pfor1 / pf, 2),
               Table::num(stat1 / st, 2), Table::num(dyn1 / dy, 2)});
  }
  std::printf(
      "\n(speedups are relative to 1 thread; alu_ceiling is what raw\n"
      " std::thread compute achieves on this machine -- virtualized cores\n"
      " often share execution resources and cannot reach the nominal 2x)\n");
  return 0;
}
