// E14 -- durability overhead and crash recovery (DESIGN.md S14). Two
// questions a serving operator asks before turning the journal on:
//
//   1. What does durability cost? Table 1 re-runs the E12 poisson row at a
//      pinned rate with the journal off / async / commit and reports the
//      ingest-to-commit p50/p99 plus the overhead factor vs off (CI's
//      bench-smoke gates async p50 at <= 1.5x off via --gate-overhead).
//      The journal byte/sync counters, the latency-histogram overflow
//      count, and the fault-injection fired counters ride along in the
//      table, so a recorded BENCH_E14.json is self-describing about
//      clipping and injection.
//
//   2. How long is recovery? Table 2 builds a journal of fixed length
//      under several checkpoint intervals (0 = no checkpoints: replay the
//      whole log), then measures the construction-time recovery of a
//      fresh service on the same directory and asserts the recovered
//      fingerprint equals the stopped service's -- the bit-identity
//      acceptance check, run as part of the bench, not only the tests.
//
// CI crash-matrix helpers (used by the crash-recovery workflow job):
//
//   --crash-run --dir=D [--updates=N] [--max-batch=B]
//       Insert-only deterministic stream, pinned window partition (flushes
//       on max_batch only), journal policy commit on D. With
//       PARMATCH_FI_CRASH_AT / _TORN_TAIL / _FLIP_BYTE set in a
//       -DPARMATCH_FAULT_INJECT=ON build the process SIGKILLs itself at
//       the injected journal append; CI asserts the 137 exit.
//   --recover-check --dir=D [--updates=N] [--max-batch=B]
//       Recovers from D, then proves bit-identity two independent ways:
//       (a) against an UNCRASHED run of the journaled prefix -- the pinned
//       partition makes "the first S windows" reproducible as "the first
//       S*B submits" -- and (b) against a pure-replay recovery of the same
//       wal.log with no checkpoint, which pits checkpoint import against
//       batch replay. Exits nonzero on any mismatch.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "serve/service.h"
#include "util/timer.h"

using namespace parmatch;
using namespace parmatch::bench;

namespace {

constexpr graph::VertexId kN = 32768;
constexpr std::size_t kM = 3u * kN;

std::string scratch_dir(const char* tag) {
  return "e14_scratch_" + std::string(tag);
}

void reset_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
}

// ---- Table 1: journal overhead on the E12 poisson row ---------------------

struct OverheadRow {
  double ach_commit = 0, p50_us = 0, p99_us = 0;
  std::uint64_t wal_bytes = 0, syncs = 0, ckpts = 0;
  std::uint64_t hist_overflow = 0, fi_fired = 0;
};

OverheadRow run_overhead(const gen::Workload& w,
                         const std::vector<gen::Update>& stream,
                         const std::vector<std::uint64_t>& arrivals,
                         std::size_t warm, std::uint64_t seed,
                         serve::JournalPolicy policy) {
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = seed;
  cfg.max_vertices = kN;
  cfg.journal.policy = policy;
  if (policy != serve::JournalPolicy::kOff) {
    cfg.journal.dir = scratch_dir("overhead");
    reset_dir(cfg.journal.dir);
  }
  serve::MatchService svc(cfg);
  svc.start();

  std::vector<std::uint64_t> ticket(w.master.size(), 0);
  auto submit = [&](const gen::Update& u) {
    if (u.is_insert)
      ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
    else
      svc.submit_delete(ticket[u.edge]);
  };

  for (std::size_t i = 0; i < warm; ++i) submit(stream[i]);
  svc.drain_until_idle();
  svc.reset_stats();

  std::size_t n = stream.size() - warm;
  std::uint64_t t0 = serve::now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t due = t0 + arrivals[i];
    for (;;) {
      std::uint64_t now = serve::now_ns();
      if (now >= due) break;
      if (due - now > 2'000) std::this_thread::yield();
    }
    submit(stream[warm + i]);
  }
  svc.drain_until_idle();
  svc.stop();

  const serve::ServiceStats& st = svc.stats();
  OverheadRow r;
  double secs = static_cast<double>(st.last_commit_ns - t0) * 1e-9;
  r.ach_commit = secs > 0 ? static_cast<double>(n) / secs : 0;
  r.p50_us = st.latency.quantile(0.50);
  r.p99_us = st.latency.quantile(0.99);
  r.wal_bytes = svc.journal().bytes();
  r.syncs = svc.journal().syncs();
  r.ckpts = svc.checkpoints_written();
  r.hist_overflow = st.latency.overflow_count();
  r.fi_fired = svc.fault_injector().report().total();
  return r;
}

// ---- Table 2: recovery time vs journal length x checkpoint interval ------

struct RecoveryRow {
  std::uint64_t records = 0, ckpt_seqno = 0, replayed = 0;
  double recover_ms = 0;
  bool fp_match = false;
};

RecoveryRow run_recovery(const gen::Workload& w,
                         const std::vector<gen::Update>& stream,
                         std::size_t n, std::uint64_t seed,
                         std::uint64_t ckpt_every) {
  serve::ServiceConfig cfg = serve::ServiceConfig::from_env();
  cfg.matcher.seed = seed;
  cfg.max_vertices = kN;
  // Small windows on purpose: the sweep is about journal length x
  // checkpoint interval, so the stream must journal enough windows for
  // every ckpt_every in the sweep to actually trip (with the default
  // batch sizing 60k updates form fewer than 16 windows and the
  // checkpoint axis degenerates to "never fired").
  cfg.former.max_batch = 512;
  cfg.journal.policy = serve::JournalPolicy::kAsync;
  cfg.journal.dir = scratch_dir("recovery");
  cfg.journal.ckpt_every = ckpt_every;
  reset_dir(cfg.journal.dir);

  std::uint64_t fp_before = 0;
  {
    serve::MatchService svc(cfg);
    svc.start();
    std::vector<std::uint64_t> ticket(w.master.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const gen::Update& u = stream[i];
      if (u.is_insert)
        ticket[u.edge] = svc.submit_insert(w.master.edge(u.edge));
      else
        svc.submit_delete(ticket[u.edge]);
    }
    svc.drain_until_idle();
    svc.stop();
    fp_before = svc.recovery_fingerprint();
  }

  RecoveryRow r;
  Timer t;
  serve::MatchService recovered(cfg);
  r.recover_ms = t.elapsed() * 1e3;
  r.records = recovered.journal().records();
  r.ckpt_seqno = recovered.recovery_info().checkpoint_seqno;
  r.replayed = recovered.recovery_info().replayed_windows;
  r.fp_match = recovered.recovery_fingerprint() == fp_before &&
               recovered.recovery_info().epoch_mismatches == 0 &&
               !recovered.recovery_info().import_failed;
  return r;
}

// ---- CI crash-matrix helpers ---------------------------------------------

// Deterministic insert-only stream with a pinned window partition: flushes
// happen on max_batch only (deadline and cost-model flushes disabled), the
// single producer submits in a fixed order, so window k is exactly submits
// [k*B, (k+1)*B) and journal seqno S covers the first S*B submits.
serve::ServiceConfig pinned_config(std::uint64_t seed, std::size_t max_batch,
                                   const std::string& dir,
                                   serve::JournalPolicy policy) {
  serve::ServiceConfig cfg;
  cfg.matcher.seed = seed;
  cfg.max_vertices = kN;
  cfg.former.max_batch = max_batch;
  cfg.former.max_delay_us = 1u << 30;
  cfg.former.cost_flush = 1u << 20;
  cfg.journal.policy = policy;
  cfg.journal.dir = dir;
  cfg.journal.ckpt_every = 16;  // exercise checkpoints in the matrix too
  return cfg;
}

int crash_run(const std::string& dir, std::size_t updates,
              std::size_t max_batch, std::uint64_t seed) {
  reset_dir(dir);
  graph::EdgeBatch edges = gen::erdos_renyi(kN, kM, seed + 7);
  serve::ServiceConfig cfg = pinned_config(seed, max_batch, dir,
                                           serve::JournalPolicy::kCommit);
  serve::MatchService svc(cfg);
  svc.start();
  for (std::size_t i = 0; i < updates; ++i)
    svc.submit_insert(edges.edge(i % edges.size()));
  // With a crash knob armed the process never reaches this line; without
  // one this is a clean journaled run (the matrix's control arm). stop()
  // rather than drain_until_idle(): the pinned partition's trailing
  // partial window only flushes via stop()'s kDrain.
  svc.stop();
  std::printf("e14 crash-run: completed without crash (%zu updates)\n",
              updates);
  return 0;
}

int recover_check(const std::string& dir, std::size_t updates,
                  std::size_t max_batch, std::uint64_t seed) {
  graph::EdgeBatch edges = gen::erdos_renyi(kN, kM, seed + 7);

  // Recover from the (possibly crashed, possibly torn) directory.
  serve::ServiceConfig cfg = pinned_config(seed, max_batch, dir,
                                           serve::JournalPolicy::kCommit);
  serve::MatchService recovered(cfg);
  const auto& info = recovered.recovery_info();
  if (info.import_failed || info.epoch_mismatches != 0) {
    std::fprintf(stderr,
                 "e14 recover-check: FAILED (import_failed=%d "
                 "epoch_mismatches=%" PRIu64 ")\n",
                 info.import_failed ? 1 : 0, info.epoch_mismatches);
    return 1;
  }
  std::uint64_t last_seq = info.checkpoint_seqno + info.replayed_windows;
  std::uint64_t fp_recovered = recovered.recovery_fingerprint();

  // (a) Bit-identity against an UNCRASHED run of the journaled prefix:
  // the pinned partition makes seqno S mean "the first S*B submits".
  std::size_t prefix = static_cast<std::size_t>(last_seq) * max_batch;
  if (prefix > updates) prefix = updates;
  serve::ServiceConfig ref_cfg = pinned_config(seed, max_batch, "",
                                               serve::JournalPolicy::kOff);
  serve::MatchService reference(ref_cfg);
  reference.start();
  for (std::size_t i = 0; i < prefix; ++i)
    reference.submit_insert(edges.edge(i % edges.size()));
  reference.stop();  // kDrain flush covers a trailing partial window
  std::uint64_t fp_reference = reference.recovery_fingerprint();
  bool ok_uncrashed = fp_recovered == fp_reference;

  // (b) Checkpoint-vs-replay equivalence: the same wal.log alone, no
  // checkpoint, must recover to the same state.
  std::string replay_dir = scratch_dir("replay_only");
  reset_dir(replay_dir);
  std::error_code ec;
  std::filesystem::copy_file(serve::journal_path(dir),
                             serve::journal_path(replay_dir),
                             std::filesystem::copy_options::overwrite_existing,
                             ec);
  bool ok_replay = true;
  if (!ec) {
    serve::ServiceConfig rp_cfg = pinned_config(
        seed, max_batch, replay_dir, serve::JournalPolicy::kCommit);
    serve::MatchService replay_only(rp_cfg);
    ok_replay = replay_only.recovery_fingerprint() == fp_recovered;
  }

  std::printf("e14 recover-check: ckpt_seqno=%" PRIu64 " replayed=%" PRIu64
              " truncated_bytes=%" PRIu64
              " uncrashed_match=%d replay_match=%d\n",
              info.checkpoint_seqno, info.replayed_windows,
              recovered.journal().truncated_bytes(), ok_uncrashed ? 1 : 0,
              ok_replay ? 1 : 0);
  if (!ok_uncrashed || !ok_replay) {
    std::fprintf(stderr, "e14 recover-check: FAILED (fingerprints)\n");
    return 1;
  }
  std::printf("e14 recover-check: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e14");
  std::size_t rate = 1'000'000;
  double gate_overhead = 0;  // 0 = no gate
  bool crash_mode = false, recover_mode = false;
  std::string dir;
  std::size_t updates = 4096, max_batch = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rate=", 7) == 0)
      rate = std::strtoull(argv[i] + 7, nullptr, 10);
    else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc)
      rate = std::strtoull(argv[i + 1], nullptr, 10);
    else if (std::strncmp(argv[i], "--gate-overhead=", 16) == 0)
      gate_overhead = std::strtod(argv[i] + 16, nullptr);
    else if (std::strcmp(argv[i], "--crash-run") == 0)
      crash_mode = true;
    else if (std::strcmp(argv[i], "--recover-check") == 0)
      recover_mode = true;
    else if (std::strncmp(argv[i], "--dir=", 6) == 0)
      dir = argv[i] + 6;
    else if (std::strncmp(argv[i], "--updates=", 10) == 0)
      updates = std::strtoull(argv[i] + 10, nullptr, 10);
    else if (std::strncmp(argv[i], "--max-batch=", 12) == 0)
      max_batch = std::strtoull(argv[i] + 12, nullptr, 10);
  }
  if (crash_mode || recover_mode) {
    if (dir.empty()) {
      std::fprintf(stderr, "e14: --crash-run/--recover-check need --dir\n");
      return 2;
    }
    return crash_mode ? crash_run(dir, updates, max_batch, seed)
                      : recover_check(dir, updates, max_batch, seed);
  }

  std::printf(
      "E14: durability overhead and crash recovery. n=%u, m=%zu.\n"
      "    Table 1: E12 poisson row at %zu/s, journal off/async/commit.\n"
      "    Table 2: recovery time vs checkpoint interval (fp_match=1 is\n"
      "    the bit-identity check).\n\n",
      kN, kM, rate);

  JsonSink::instance().note("harness", "durability");
  JsonSink::instance().note("pinned_rate_per_s", std::to_string(rate));
  JsonSink::instance().note("latency_quantile_rel_err", "0.045");

  gen::Workload w =
      gen::churn(gen::erdos_renyi(kN, kM, seed + 7), 1, 0.5, seed + 11);
  std::vector<gen::Update> stream = gen::flatten(w);
  std::size_t warm = stream.size() / 3;
  auto arrivals =
      gen::arrival_times_ns(stream.size() - warm, static_cast<double>(rate),
                            gen::ArrivalModel::kPoisson, seed + 13);

  Table t1({"journal", "ach_commit", "p50_us", "p99_us", "overhead_x",
            "wal_mb", "syncs", "ckpts", "ovfl", "fi_fired"});
  double p50_off = 0, overhead_async = 0;
  std::uint64_t fi_total = 0, ovfl_total = 0;
  for (auto [policy, name] :
       {std::pair{serve::JournalPolicy::kOff, "off"},
        std::pair{serve::JournalPolicy::kAsync, "async"},
        std::pair{serve::JournalPolicy::kCommit, "commit"}}) {
    OverheadRow r = run_overhead(w, stream, arrivals, warm, seed, policy);
    if (policy == serve::JournalPolicy::kOff) p50_off = r.p50_us;
    double ox = p50_off > 0 ? r.p50_us / p50_off : 0;
    if (policy == serve::JournalPolicy::kAsync) overhead_async = ox;
    fi_total += r.fi_fired;
    ovfl_total += r.hist_overflow;
    t1.row({name, Table::num(r.ach_commit, 0), Table::num(r.p50_us),
            Table::num(r.p99_us), Table::num(ox, 3),
            Table::num(static_cast<double>(r.wal_bytes) / (1 << 20), 2),
            Table::num(static_cast<std::size_t>(r.syncs)),
            Table::num(static_cast<std::size_t>(r.ckpts)),
            Table::num(static_cast<std::size_t>(r.hist_overflow)),
            Table::num(static_cast<std::size_t>(r.fi_fired))});
  }
  JsonSink::instance().note("fi_fired_total", std::to_string(fi_total));
  JsonSink::instance().note("latency_overflow_total",
                            std::to_string(ovfl_total));

  std::printf("\n");
  Table t2({"ckpt_every", "wal_records", "ckpt_seqno", "replayed",
            "recover_ms", "fp_match"});
  std::size_t rec_n = stream.size() < 60'000 ? stream.size() : 60'000;
  bool all_match = true;
  for (std::uint64_t ck : {std::uint64_t{0}, std::uint64_t{64},
                           std::uint64_t{16}}) {
    RecoveryRow r = run_recovery(w, stream, rec_n, seed, ck);
    all_match = all_match && r.fp_match;
    t2.row({Table::num(static_cast<std::size_t>(ck)),
            Table::num(static_cast<std::size_t>(r.records)),
            Table::num(static_cast<std::size_t>(r.ckpt_seqno)),
            Table::num(static_cast<std::size_t>(r.replayed)),
            Table::num(r.recover_ms), r.fp_match ? "1" : "0"});
  }
  if (!all_match) {
    std::fprintf(stderr, "E14: recovery fingerprint mismatch\n");
    return 1;
  }
  if (gate_overhead > 0 && overhead_async > gate_overhead) {
    std::fprintf(stderr,
                 "E14: async journal p50 overhead %.3fx exceeds the %.2fx "
                 "gate\n",
                 overhead_async, gate_overhead);
    return 1;
  }
  return 0;
}
