// E3 -- Theorem 1.1 / Lemma 5.11: O(log^3 m) depth per batch whp.
//
// Depth is measured through its observable proxies, one table per factor:
//  (a) randomSettle rounds per deletion batch (bounded O(log m)): hubs of
//      growing degree force the heavy path, and the settle loop must stay
//      logarithmic (in practice 1-2 rounds -- far inside the bound);
//  (b) parallelGreedyMatch rounds (O(log m) whp by Fischer-Noever): the
//      greedy-round count on batch insertions of growing size.
// Each greedy round is O(log m) primitive depth, giving the third factor.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"

using namespace parmatch;
using namespace parmatch::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = seed_from_args(argc, argv);
  std::printf(
      "E3a: settle rounds per deletion batch on hub graphs (the heavy\n"
      "     path). Claim: rounds stay O(log m) -- observed far below.\n\n");
  {
    Table table({"spokes", "log2(m)", "settle_rounds", "max_greedy",
                 "depth_proxy"});
    for (std::size_t spokes : {1ul << 10, 1ul << 12, 1ul << 14, 1ul << 16}) {
      dyn::Config cfg;
      cfg.seed = seed + 5;
      dyn::DynamicMatcher dm(cfg);
      dm.insert_edges(
          gen::hub_graph(4, static_cast<graph::VertexId>(spokes)));
      std::size_t max_settles = 0, max_greedy = 0;
      for (int round = 0; round < 4; ++round) {
        auto victims = dm.matching();
        if (victims.empty()) break;
        dm.delete_edges(victims);
        max_settles =
            std::max(max_settles, dm.last_batch_stats().settle_rounds);
        max_greedy =
            std::max(max_greedy, dm.last_batch_stats().max_greedy_rounds);
      }
      table.row({Table::num(spokes),
                 Table::num(std::log2(4.0 * (double)spokes), 1),
                 Table::num(max_settles), Table::num(max_greedy),
                 Table::num(max_settles * max_greedy)});
    }
  }

  std::printf(
      "\nE3b: parallelGreedyMatch rounds vs batch size m (Fischer-Noever:\n"
      "     O(log m) whp). Claim: the rounds column tracks log2(m).\n\n");
  {
    Table table({"m", "log2(m)", "greedy_rounds", "rounds/log2(m)"});
    for (int logm = 12; logm <= 19; ++logm) {
      std::size_t m = 1ull << logm;
      graph::EdgePool pool(2);
      auto ids = pool.add_edges(gen::erdos_renyi(
          static_cast<graph::VertexId>(m / 3), m, seed + logm));
      auto result = matching::parallel_greedy_match(pool, ids, seed + 17);
      table.row({Table::num(m), Table::num((double)logm, 1),
                 Table::num(result.rounds),
                 Table::num((double)result.rounds / (double)logm, 2)});
    }
  }
  return 0;
}
