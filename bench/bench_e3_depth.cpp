// E3 -- Theorem 1.1 / Lemma 5.11: O(log^3 m) depth per batch whp.
//
// Since the batch pipeline became phased-parallel, depth is *instrumented*,
// not proxied: BatchStats::measured_depth sums parallel::model_depth(n)
// (the binary-forking fork-tree span) over every data-parallel phase a
// batch launches, i.e. (phase rounds) x (primitive depth). Three views:
//  (a) settle rounds + measured depth per deletion batch (bounded
//      O(log m) rounds): hubs of growing degree force the heavy path;
//  (b) parallelGreedyMatch reserve/commit rounds (~grain prefix rounds +
//      O(log m) whp conflict rounds) on batch insertions of growing size;
//  (c) measured per-batch depth as the *batch size* grows 64x over a fixed
//      graph: the claim is polylog in m -- flat-ish in k -- while the
//      per-edge sequential loop it replaced was Theta(k).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "dyn/dynamic_matcher.h"
#include "gen/generators.h"
#include "graph/edge_pool.h"
#include "matching/parallel_greedy.h"

using namespace parmatch;
using namespace parmatch::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = bench_init(argc, argv, "e3");
  std::printf(
      "E3a: settle rounds and measured depth per deletion batch on hub\n"
      "     graphs (the heavy path). Claim: rounds stay O(log m) and\n"
      "     measured depth stays polylog -- observed far below.\n\n");
  {
    Table table({"spokes", "log2(m)", "settle_rounds", "spec_retries",
                 "max_greedy", "measured_depth", "depth/log3(m)"});
    for (std::size_t spokes : {1ul << 10, 1ul << 12, 1ul << 14, 1ul << 16}) {
      dyn::Config cfg;
      cfg.seed = seed + 5;
      dyn::DynamicMatcher dm(cfg);
      dm.insert_edges(
          gen::hub_graph(4, static_cast<graph::VertexId>(spokes)));
      std::size_t max_settles = 0, max_retries = 0, max_greedy = 0,
                  max_depth = 0;
      for (int round = 0; round < 4; ++round) {
        auto victims = dm.matching();
        if (victims.empty()) break;
        dm.delete_edges(victims);
        max_settles =
            std::max(max_settles, dm.last_batch_stats().settle_rounds);
        max_retries =
            std::max(max_retries, dm.last_batch_stats().spec_retries);
        max_greedy =
            std::max(max_greedy, dm.last_batch_stats().max_greedy_rounds);
        max_depth =
            std::max(max_depth, dm.last_batch_stats().measured_depth);
      }
      double log_m = std::log2(4.0 * (double)spokes);
      table.row({Table::num(spokes), Table::num(log_m, 1),
                 Table::num(max_settles), Table::num(max_retries),
                 Table::num(max_greedy), Table::num(max_depth),
                 Table::num((double)max_depth / (log_m * log_m * log_m), 2)});
    }
  }

  std::printf(
      "\nE3b: parallelGreedyMatch reserve/commit rounds vs batch size m.\n"
      "     The deterministic-reservations engine takes ~PARMATCH_SPEC_GRAIN\n"
      "     rounds to slide its prefix over a conflict-free input, plus\n"
      "     O(log m) whp conflict rounds (Fischer-Noever). Claim: rounds\n"
      "     stay grain + O(log m) -- near-flat in m.\n\n");
  {
    Table table({"m", "log2(m)", "greedy_rounds", "rounds/log2(m)"});
    for (int logm = 12; logm <= 19; ++logm) {
      std::size_t m = 1ull << logm;
      graph::EdgePool pool(2);
      auto ids = pool.add_edges(gen::erdos_renyi(
          static_cast<graph::VertexId>(m / 3), m, seed + logm));
      auto result = matching::parallel_greedy_match(pool, ids, seed + 17);
      table.row({Table::num(m), Table::num((double)logm, 1),
                 Table::num(result.rounds),
                 Table::num((double)result.rounds / (double)logm, 2)});
    }
  }

  std::printf(
      "\nE3c: measured per-batch depth vs batch size k on mixed churn over\n"
      "     a fixed graph. Claim: depth stays polylog in m while k grows\n"
      "     64x (the retired sequential pipeline was Theta(k)).\n\n");
  {
    Table table({"batch_k", "max_depth", "avg_depth", "depth/log3(m)"});
    const std::size_t n = 1u << 15, m = 3u << 15;
    double log_m = std::log2((double)m);
    double log3 = log_m * log_m * log_m;
    for (std::size_t k = 64; k <= 4096; k *= 4) {
      auto w = gen::churn(
          gen::erdos_renyi(static_cast<graph::VertexId>(n), m, seed + 23), k,
          0.5, seed + 29);
      dyn::Config cfg;
      cfg.seed = seed + 31;
      dyn::DynamicMatcher dm(cfg);
      std::vector<graph::EdgeId> live(w.master.size());
      std::size_t max_depth = 0, sum_depth = 0, batches = 0;
      for (const auto& step : w.steps) {
        if (step.edges.empty()) continue;
        if (step.is_insert) {
          graph::EdgeBatch chunk;
          for (std::size_t i : step.edges) chunk.add(w.master.edge(i));
          auto ids = dm.insert_edges(chunk);
          for (std::size_t j = 0; j < step.edges.size(); ++j)
            live[step.edges[j]] = ids[j];
        } else {
          std::vector<graph::EdgeId> ids;
          ids.reserve(step.edges.size());
          for (std::size_t i : step.edges) ids.push_back(live[i]);
          dm.delete_edges(ids);
        }
        std::size_t d = dm.last_batch_stats().measured_depth;
        max_depth = std::max(max_depth, d);
        sum_depth += d;
        ++batches;
      }
      table.row({Table::num(k), Table::num(max_depth),
                 Table::num((double)sum_depth / (double)batches, 1),
                 Table::num((double)max_depth / log3, 2)});
    }
  }
  return 0;
}
