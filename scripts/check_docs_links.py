#!/usr/bin/env python3
"""Fails on dead intra-repo links in the markdown docs (CI docs job).

Checks every [text](target) link in the given markdown files (default:
README.md, DESIGN.md, ARCHITECTURE.md):
  * external schemes (http/https/mailto) are skipped;
  * a relative target must exist on disk (resolved against the linking
    file's directory);
  * a #fragment pointing into a markdown file must match a heading's
    GitHub-style anchor in that file (bare #fragment = same file).

Usage:  check_docs_links.py [FILE.md ...]
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, drop punctuation,
    spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    in_code = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_anchor(m.group(1)))
    return anchors


def links_of(path: Path):
    in_code = False
    for ln, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in LINK_RE.finditer(line):
            yield ln, m.group(1)


def main() -> None:
    files = [Path(a) for a in sys.argv[1:]] or [
        Path("README.md"), Path("DESIGN.md"), Path("ARCHITECTURE.md")]
    errors = []
    for f in files:
        if not f.is_file():
            errors.append(f"{f}: file to check does not exist")
            continue
        for ln, target in links_of(f):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # external scheme
            path_part, _, frag = target.partition("#")
            dest = f if not path_part else (f.parent / path_part)
            if not dest.exists():
                errors.append(f"{f}:{ln}: dead link -> {target}")
                continue
            if frag and dest.suffix == ".md":
                if github_anchor(frag) not in anchors_of(dest):
                    errors.append(
                        f"{f}:{ln}: dead anchor -> {target}")
    if errors:
        print("\n".join(errors))
        sys.exit(f"FAIL: {len(errors)} dead intra-repo link(s)")
    print(f"OK: {len(files)} file(s), all intra-repo links resolve")


if __name__ == "__main__":
    main()
