#!/usr/bin/env python3
"""CI latency-regression gate for the serving regimes (E11 small-batch,
E12 open-loop ingest-to-commit).

Compares a fresh `--json` bench run against the committed
`BENCH_baseline.json` entry for the same bench and fails when the gated
metric regressed by more than the allowed factor. The factor absorbs
machine variance between the recording container and CI runners; the
cliffs these gates exist for (a reintroduced per-batch scheduler tax, a
serving front-end that stops keeping up with its offered rate) clear any
reasonable factor easily.

The row is selected with repeatable --where column=value constraints and
the gated column with --metric, so one script gates any table bench:

  check_latency_regression.py NEW.json BENCH_baseline.json \
      --bench e11 --metric p50_us --where k=16 --factor 1.5
  check_latency_regression.py NEW.json BENCH_baseline.json \
      --bench e12 --metric p50_us --where arrival=poisson \
      --where rate=1000000 --factor 3.0

--k N is shorthand for the historical E11 call (--bench e11 --where k=N).

--compare-scaling flips the script into a WITHIN-RUN scaling gate (used
by the E15 sharding smoke): instead of fresh-vs-baseline it compares two
rows of the SAME fresh json -- the row selected by --where against the
row selected by --where-base -- and fails unless

    metric(where) >= factor * metric(where-base)

e.g. throughput at shards=4 must stay within factor of shards=1:

  check_latency_regression.py NEW.json BENCH_baseline.json \
      --compare-scaling --metric upd_per_s \
      --where shards=4 --where-base shards=1 --factor 0.2

(The baseline file argument is still required -- positional compatibility
with the CI invocations -- but is not read in this mode.)

Exit codes: 0 pass, 1 regression past the factor, 3 selection error (no
table row matches the --where constraints / --metric column) -- so CI can
tell "the code got slower" apart from "the gate is pointing at a row that
no longer exists" (e.g. a renamed column or a retired sweep point).
"""
import argparse
import json
import sys

EXIT_NO_ROW = 3


def cell_matches(cell, want: str) -> bool:
    """String-compare, with numeric fallback so 16 == "16" == "16.0"."""
    if str(cell) == want:
        return True
    try:
        return float(cell) == float(want)
    except (TypeError, ValueError):
        return False


def metric_at(doc: dict, metric: str, where: list, source: str) -> float:
    seen_headers = []
    for table in doc["tables"]:
        headers = table["headers"]
        seen_headers.append(headers)
        if metric not in headers:
            continue
        if any(col not in headers for col, _ in where):
            continue
        mi = headers.index(metric)
        for row in table["rows"]:
            if all(cell_matches(row[headers.index(c)], v) for c, v in where):
                return float(row[mi])
    cond = ", ".join(f"{c}={v}" for c, v in where) or "(any row)"
    cols = "; ".join(",".join(h) for h in seen_headers) or "(no tables)"
    print(
        f"error: {source}: no row matching {cond} with column {metric}.\n"
        f"  available columns: {cols}\n"
        f"  (a --where value or --metric name no longer matches the bench's "
        f"table -- fix the gate or re-record the baseline; this is NOT a "
        f"latency regression)",
        file=sys.stderr,
    )
    sys.exit(EXIT_NO_ROW)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--bench", default="e11",
                    help="entry under 'benches' in the baseline document")
    ap.add_argument("--metric", default="p50_us", help="gated column")
    ap.add_argument("--where", action="append", default=[],
                    metavar="COL=VAL", help="row constraint (repeatable)")
    ap.add_argument("--k", type=int, default=None,
                    help="shorthand for --bench e11 --where k=N")
    ap.add_argument("--factor", type=float, default=1.5)
    ap.add_argument("--compare-scaling", action="store_true",
                    help="gate --where row against --where-base row of the "
                         "same fresh json: metric(where) >= factor * "
                         "metric(where-base)")
    ap.add_argument("--where-base", action="append", default=[],
                    metavar="COL=VAL",
                    help="reference-row constraint for --compare-scaling "
                         "(repeatable)")
    args = ap.parse_args()

    where = [tuple(w.split("=", 1)) for w in args.where]
    if args.k is not None:
        where.append(("k", str(args.k)))

    with open(args.new_json) as f:
        new_doc = json.load(f)

    if args.compare_scaling:
        if not where or not args.where_base:
            sys.exit("--compare-scaling needs both --where and --where-base")
        where_base = [tuple(w.split("=", 1)) for w in args.where_base]
        val = metric_at(new_doc, args.metric, where, args.new_json)
        base = metric_at(new_doc, args.metric, where_base, args.new_json)
        cond = ", ".join(f"{c}={v}" for c, v in where)
        cond_base = ", ".join(f"{c}={v}" for c, v in where_base)
        ratio = val / base if base else float("inf")
        print(
            f"scaling [{cond}] vs [{cond_base}]: {args.metric} {val:.3f} vs "
            f"{base:.3f} -> x{ratio:.2f} (floor x{args.factor})"
        )
        if val < args.factor * base:
            sys.exit(
                f"FAIL: {args.metric} at [{cond}] is x{ratio:.2f} of "
                f"[{cond_base}], below the x{args.factor} scaling floor"
            )
        print("OK")
        return

    if not where:
        where = [("k", "16")]
    with open(args.baseline_json) as f:
        benches = json.load(f)["benches"]
    if args.bench not in benches:
        print(
            f"error: {args.baseline_json}: no bench entry '{args.bench}' "
            f"(have: {', '.join(sorted(benches))})",
            file=sys.stderr,
        )
        sys.exit(EXIT_NO_ROW)
    baseline = benches[args.bench]

    new_val = metric_at(new_doc, args.metric, where, args.new_json)
    base_val = metric_at(
        baseline, args.metric, where,
        f"{args.baseline_json}[benches.{args.bench}]")
    cond = ", ".join(f"{c}={v}" for c, v in where)
    ratio = new_val / base_val
    print(
        f"{args.bench} [{cond}]: fresh {args.metric} {new_val:.3f} vs "
        f"committed baseline {base_val:.3f} -> x{ratio:.2f} "
        f"(limit x{args.factor})"
    )
    if ratio > args.factor:
        sys.exit(
            f"FAIL: {args.bench} {args.metric} regressed x{ratio:.2f} > "
            f"x{args.factor} against BENCH_baseline.json"
        )
    print("OK")


if __name__ == "__main__":
    main()
