#!/usr/bin/env python3
"""CI latency-regression gate for the small-batch serving regime (E11).

Compares a fresh `bench_e11_latency --json` run against the committed
`BENCH_baseline.json` e11 entry and fails when the median (p50) per-batch
latency at the probed batch size regressed by more than the allowed factor.
The factor (default 1.5x) absorbs machine variance between the recording
container and CI runners; a genuine reintroduction of the per-batch
scheduler tax (the >2x cliff this gate exists for) clears it easily.

Usage:
  check_latency_regression.py NEW_JSON BASELINE_JSON [--k 16] [--factor 1.5]
"""
import argparse
import json
import sys


def p50_at_k(doc: dict, k: int) -> float:
    for table in doc["tables"]:
        headers = table["headers"]
        if "k" not in headers or "p50_us" not in headers:
            continue
        ki, pi = headers.index("k"), headers.index("p50_us")
        for row in table["rows"]:
            if int(row[ki]) == k:
                return float(row[pi])
    raise SystemExit(f"error: no k={k} row in the e11 table")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--k", type=int, default=16)
    ap.add_argument("--factor", type=float, default=1.5)
    args = ap.parse_args()

    with open(args.new_json) as f:
        new_doc = json.load(f)
    with open(args.baseline_json) as f:
        baseline = json.load(f)["benches"]["e11"]

    new_p50 = p50_at_k(new_doc, args.k)
    base_p50 = p50_at_k(baseline, args.k)
    ratio = new_p50 / base_p50
    print(
        f"e11 k={args.k}: fresh p50 {new_p50:.3f} us vs committed baseline "
        f"{base_p50:.3f} us -> x{ratio:.2f} (limit x{args.factor})"
    )
    if ratio > args.factor:
        sys.exit(
            f"FAIL: small-batch latency regressed x{ratio:.2f} > "
            f"x{args.factor} against BENCH_baseline.json"
        )
    print("OK")


if __name__ == "__main__":
    main()
